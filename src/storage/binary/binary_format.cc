#include "storage/binary/binary_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "core/dbm.h"
#include "core/lrp.h"
#include "core/tuple.h"
#include "core/value.h"
#include "obs/metrics.h"
#include "util/errno_message.h"

namespace itdb {
namespace storage {

namespace {

constexpr std::uint32_t kFileMagic = 0x42445449;  // "ITDB" little-endian.
constexpr std::uint32_t kFormatVersion = 1;

// Row flag bits: the exact Dbm state captured at encode time.
constexpr std::uint8_t kFlagClosed = 1;
constexpr std::uint8_t kFlagFeasible = 2;

// Slicing-by-8 CRC tables: kCrcTables[0] is the classic byte-at-a-time
// table; kCrcTables[t][b] advances a CRC whose low byte is b by t+1 zero
// bytes, letting the hot loop fold 8 input bytes per iteration.  The CRC
// guards every snapshot load, so its throughput is on the cold-start path
// the bench floor pins.
std::array<std::array<std::uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (int t = 1; t < 8; ++t) {
      tables[t][i] = (tables[t - 1][i] >> 8) ^ tables[0][tables[t - 1][i] & 0xFF];
    }
  }
  return tables;
}

// ---- Little-endian primitives -------------------------------------------

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI64(std::string* out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Sequential bounds-checked reader over an encoded buffer.  Every Read*
/// validates the remaining length first, so a truncated or corrupted file
/// fails with a Status instead of reading out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes, std::size_t pos = 0)
      : bytes_(bytes), pos_(pos) {}

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  Result<std::uint8_t> ReadU8() {
    if (remaining() < 1) return Truncated("u8");
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  Result<std::uint32_t> ReadU32() {
    if (remaining() < 4) return Truncated("u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<std::uint64_t> ReadU64() {
    if (remaining() < 8) return Truncated("u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::int64_t> ReadI64() {
    ITDB_ASSIGN_OR_RETURN(std::uint64_t v, ReadU64());
    return static_cast<std::int64_t>(v);
  }

  Result<std::string> ReadString() {
    ITDB_ASSIGN_OR_RETURN(std::uint32_t len, ReadU32());
    if (remaining() < len) return Truncated("string body");
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  /// Bulk-reads `count` little-endian int64s.  One memcpy on LE hosts.
  Status ReadI64Array(std::size_t count, std::vector<std::int64_t>* out) {
    if (remaining() / 8 < count) return Truncated("i64 array");
    out->resize(count);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out->data(), bytes_.data() + pos_, count * 8);
      pos_ += count * 8;
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        ITDB_ASSIGN_OR_RETURN((*out)[i], ReadI64());
      }
    }
    return Status::Ok();
  }

  Status ReadU64Array(std::size_t count, std::vector<std::uint64_t>* out) {
    if (remaining() / 8 < count) return Truncated("u64 array");
    out->resize(count);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out->data(), bytes_.data() + pos_, count * 8);
      pos_ += count * 8;
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        ITDB_ASSIGN_OR_RETURN((*out)[i], ReadU64());
      }
    }
    return Status::Ok();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::ParseError(std::string("binary file truncated reading ") +
                              what);
  }

  std::string_view bytes_;
  std::size_t pos_;
};

void PutI64Array(std::string* out, const std::int64_t* data,
                 std::size_t count) {
  if (count == 0) return;
  if constexpr (std::endian::native == std::endian::little) {
    out->append(reinterpret_cast<const char*>(data), count * 8);
  } else {
    for (std::size_t i = 0; i < count; ++i) PutI64(out, data[i]);
  }
}

void PutU64Array(std::string* out, const std::uint64_t* data,
                 std::size_t count) {
  if (count == 0) return;
  if constexpr (std::endian::native == std::endian::little) {
    out->append(reinterpret_cast<const char*>(data), count * 8);
  } else {
    for (std::size_t i = 0; i < count; ++i) PutU64(out, data[i]);
  }
}

// ---- mmap helper --------------------------------------------------------

/// Read-only view of a whole file, mmap'd when possible.  Holding the
/// object keeps the mapping alive; empty files map to an empty view.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    std::swap(base_, other.base_);
    std::swap(size_, other.size_);
    std::swap(fallback_, other.fallback_);
    return *this;
  }
  ~MappedFile() {
    if (base_ != nullptr) ::munmap(base_, size_);
  }

  static Result<MappedFile> Open(const std::string& path) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::NotFound("cannot open \"" + path + "\": " +
                              ErrnoMessage(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::InvalidArgument("cannot stat \"" + path + "\"");
    }
    MappedFile out;
    out.size_ = static_cast<std::size_t>(st.st_size);
    if (out.size_ > 0) {
      void* base = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        out.base_ = base;
      } else {
        // Unmappable (e.g. a pipe-backed test fixture): fall back to read().
        out.fallback_.resize(out.size_);
        std::size_t got = 0;
        while (got < out.size_) {
          ssize_t n = ::read(fd, out.fallback_.data() + got, out.size_ - got);
          if (n <= 0) {
            ::close(fd);
            return Status::InvalidArgument("short read on \"" + path + "\"");
          }
          got += static_cast<std::size_t>(n);
        }
      }
    }
    ::close(fd);
    return out;
  }

  std::string_view view() const {
    if (base_ != nullptr) {
      return {static_cast<const char*>(base_), size_};
    }
    return {fallback_.data(), fallback_.size()};
  }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
  std::string fallback_;
};

}  // namespace

namespace wire {

void PutU32(std::string* out, std::uint32_t v) { ::itdb::storage::PutU32(out, v); }
void PutU64(std::string* out, std::uint64_t v) { ::itdb::storage::PutU64(out, v); }
void PutString(std::string* out, std::string_view s) {
  ::itdb::storage::PutString(out, s);
}

Result<std::uint32_t> ReadU32(std::string_view bytes, std::size_t* pos) {
  ByteReader in(bytes, *pos);
  ITDB_ASSIGN_OR_RETURN(std::uint32_t v, in.ReadU32());
  *pos = in.pos();
  return v;
}

Result<std::uint64_t> ReadU64(std::string_view bytes, std::size_t* pos) {
  ByteReader in(bytes, *pos);
  ITDB_ASSIGN_OR_RETURN(std::uint64_t v, in.ReadU64());
  *pos = in.pos();
  return v;
}

Result<std::string> ReadString(std::string_view bytes, std::size_t* pos) {
  ByteReader in(bytes, *pos);
  ITDB_ASSIGN_OR_RETURN(std::string s, in.ReadString());
  *pos = in.pos();
  return s;
}

}  // namespace wire

std::uint32_t Crc32(std::string_view bytes) {
  static const std::array<std::array<std::uint32_t, 256>, 8> kTables =
      MakeCrcTables();
  const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  std::size_t len = bytes.size();
  std::uint32_t crc = 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    while (len >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^
            kTables[5][(lo >> 16) & 0xFF] ^ kTables[4][lo >> 24] ^
            kTables[3][hi & 0xFF] ^ kTables[2][(hi >> 8) & 0xFF] ^
            kTables[1][(hi >> 16) & 0xFF] ^ kTables[0][hi >> 24];
      p += 8;
      len -= 8;
    }
  }
  for (; len > 0; --len, ++p) {
    crc = kTables[0][(crc ^ *p) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status AppendSegment(const RelationSegment& segment, std::string* out) {
  const Schema& schema = segment.schema;
  const int k = schema.temporal_arity();
  const int l = schema.data_arity();
  const std::size_t n = segment.rows.size();

  PutString(out, segment.name);
  PutU64(out, segment.epoch_from);
  PutU64(out, segment.epoch_to);
  PutU32(out, static_cast<std::uint32_t>(k));
  PutU32(out, static_cast<std::uint32_t>(l));
  for (int i = 0; i < k; ++i) PutString(out, schema.temporal_name(i));
  for (int j = 0; j < l; ++j) {
    PutString(out, schema.data_name(j));
    PutU8(out, schema.data_type(j) == DataType::kString ? 1 : 0);
  }
  PutU64(out, n);

  for (const SegmentRow& row : segment.rows) {
    if (row.tuple.temporal_arity() != k || row.tuple.data_arity() != l) {
      return Status::InvalidArgument(
          "segment \"" + segment.name +
          "\": tuple arity does not match the schema");
    }
  }

  // System-period columns.
  {
    std::vector<std::uint64_t> column(n);
    for (std::size_t t = 0; t < n; ++t) column[t] = segment.rows[t].sys_from;
    PutU64Array(out, column.data(), n);
    for (std::size_t t = 0; t < n; ++t) column[t] = segment.rows[t].sys_to;
    PutU64Array(out, column.data(), n);
  }

  // Lrp columns, attribute-major: all offsets of attribute i, then all
  // periods.
  {
    std::vector<std::int64_t> column(n);
    for (int i = 0; i < k; ++i) {
      for (std::size_t t = 0; t < n; ++t) {
        column[t] = segment.rows[t].tuple.lrp(i).offset();
      }
      PutI64Array(out, column.data(), n);
      for (std::size_t t = 0; t < n; ++t) {
        column[t] = segment.rows[t].tuple.lrp(i).period();
      }
      PutI64Array(out, column.data(), n);
    }
  }

  // Data columns: raw int64s, or dictionary + per-row ids for strings.
  for (int j = 0; j < l; ++j) {
    if (schema.data_type(j) == DataType::kInt) {
      std::vector<std::int64_t> column(n);
      for (std::size_t t = 0; t < n; ++t) {
        const Value& v = segment.rows[t].tuple.value(j);
        if (!v.IsInt()) {
          return Status::InvalidArgument(
              "segment \"" + segment.name + "\": string value in int column " +
              schema.data_name(j));
        }
        column[t] = v.AsInt();
      }
      PutI64Array(out, column.data(), n);
    } else {
      // First-occurrence dictionary order keeps the encoding deterministic
      // for a given row sequence.
      std::map<std::string_view, std::uint32_t> ids;
      std::vector<std::string_view> dictionary;
      std::vector<std::uint32_t> column(n);
      for (std::size_t t = 0; t < n; ++t) {
        const Value& v = segment.rows[t].tuple.value(j);
        if (!v.IsString()) {
          return Status::InvalidArgument(
              "segment \"" + segment.name + "\": int value in string column " +
              schema.data_name(j));
        }
        auto [it, inserted] = ids.try_emplace(
            v.AsString(), static_cast<std::uint32_t>(dictionary.size()));
        if (inserted) dictionary.push_back(v.AsString());
        column[t] = it->second;
      }
      PutU32(out, static_cast<std::uint32_t>(dictionary.size()));
      for (std::string_view entry : dictionary) PutString(out, entry);
      for (std::uint32_t id : column) PutU32(out, id);
    }
  }

  // Constraint matrices: per-row exact state flags, then the bound entries
  // as one entry-major slab (DbmSlab layout: entry (p, q) of row t lives at
  // slab[(p * nodes + q) * n + t]).
  const std::size_t nodes = static_cast<std::size_t>(k) + 1;
  for (const SegmentRow& row : segment.rows) {
    const Dbm& dbm = row.tuple.constraints();
    std::uint8_t flags = 0;
    if (dbm.closed()) flags |= kFlagClosed;
    if (dbm.feasible()) flags |= kFlagFeasible;
    PutU8(out, flags);
  }
  {
    std::vector<std::int64_t> lane(n);
    for (std::size_t p = 0; p < nodes; ++p) {
      for (std::size_t q = 0; q < nodes; ++q) {
        for (std::size_t t = 0; t < n; ++t) {
          lane[t] = segment.rows[t].tuple.constraints().bound_node(
              static_cast<int>(p), static_cast<int>(q));
        }
        PutI64Array(out, lane.data(), n);
      }
    }
  }
  return Status::Ok();
}

Result<RelationSegment> ReadSegment(std::string_view bytes,
                                    std::size_t* offset) {
  ByteReader in(bytes, *offset);
  RelationSegment segment;
  ITDB_ASSIGN_OR_RETURN(segment.name, in.ReadString());
  ITDB_ASSIGN_OR_RETURN(segment.epoch_from, in.ReadU64());
  ITDB_ASSIGN_OR_RETURN(segment.epoch_to, in.ReadU64());
  ITDB_ASSIGN_OR_RETURN(std::uint32_t k32, in.ReadU32());
  ITDB_ASSIGN_OR_RETURN(std::uint32_t l32, in.ReadU32());
  // Arity sanity bound: each attribute costs >= 4 bytes of name length.
  if (k32 > in.remaining() || l32 > in.remaining()) {
    return Status::ParseError("binary segment: implausible arity");
  }
  const int k = static_cast<int>(k32);
  const int l = static_cast<int>(l32);
  std::vector<std::string> temporal_names;
  temporal_names.reserve(k32);
  for (int i = 0; i < k; ++i) {
    ITDB_ASSIGN_OR_RETURN(std::string name, in.ReadString());
    temporal_names.push_back(std::move(name));
  }
  std::vector<std::string> data_names;
  std::vector<DataType> data_types;
  data_names.reserve(l32);
  data_types.reserve(l32);
  for (int j = 0; j < l; ++j) {
    ITDB_ASSIGN_OR_RETURN(std::string name, in.ReadString());
    ITDB_ASSIGN_OR_RETURN(std::uint8_t type, in.ReadU8());
    if (type > 1) return Status::ParseError("binary segment: bad data type");
    data_names.push_back(std::move(name));
    data_types.push_back(type == 1 ? DataType::kString : DataType::kInt);
  }
  segment.schema = Schema(std::move(temporal_names), std::move(data_names),
                          std::move(data_types));

  ITDB_ASSIGN_OR_RETURN(std::uint64_t n64, in.ReadU64());
  // Every row costs at least one flag byte plus one slab entry; reject
  // counts the remaining bytes cannot possibly hold before allocating.
  if (n64 > in.remaining()) {
    return Status::ParseError("binary segment: implausible row count");
  }
  const std::size_t n = static_cast<std::size_t>(n64);

  std::vector<std::uint64_t> sys_from;
  std::vector<std::uint64_t> sys_to;
  ITDB_RETURN_IF_ERROR(in.ReadU64Array(n, &sys_from));
  ITDB_RETURN_IF_ERROR(in.ReadU64Array(n, &sys_to));

  std::vector<std::vector<Lrp>> temporal(n, std::vector<Lrp>());
  for (std::size_t t = 0; t < n; ++t) {
    temporal[t].reserve(static_cast<std::size_t>(k));
  }
  {
    std::vector<std::int64_t> offsets;
    std::vector<std::int64_t> periods;
    for (int i = 0; i < k; ++i) {
      ITDB_RETURN_IF_ERROR(in.ReadI64Array(n, &offsets));
      ITDB_RETURN_IF_ERROR(in.ReadI64Array(n, &periods));
      for (std::size_t t = 0; t < n; ++t) {
        temporal[t].push_back(Lrp::Make(offsets[t], periods[t]));
      }
    }
  }

  std::vector<std::vector<Value>> data(n, std::vector<Value>());
  for (std::size_t t = 0; t < n; ++t) {
    data[t].reserve(static_cast<std::size_t>(l));
  }
  for (int j = 0; j < l; ++j) {
    if (segment.schema.data_type(j) == DataType::kInt) {
      std::vector<std::int64_t> column;
      ITDB_RETURN_IF_ERROR(in.ReadI64Array(n, &column));
      for (std::size_t t = 0; t < n; ++t) data[t].emplace_back(column[t]);
    } else {
      ITDB_ASSIGN_OR_RETURN(std::uint32_t dict_size, in.ReadU32());
      if (dict_size > in.remaining()) {
        return Status::ParseError("binary segment: implausible dictionary");
      }
      std::vector<std::string> dictionary;
      dictionary.reserve(dict_size);
      for (std::uint32_t d = 0; d < dict_size; ++d) {
        ITDB_ASSIGN_OR_RETURN(std::string entry, in.ReadString());
        dictionary.push_back(std::move(entry));
      }
      for (std::size_t t = 0; t < n; ++t) {
        ITDB_ASSIGN_OR_RETURN(std::uint32_t id, in.ReadU32());
        if (id >= dictionary.size()) {
          return Status::ParseError("binary segment: dictionary id range");
        }
        data[t].emplace_back(dictionary[id]);
      }
    }
  }

  std::vector<std::uint8_t> flags(n);
  for (std::size_t t = 0; t < n; ++t) {
    ITDB_ASSIGN_OR_RETURN(flags[t], in.ReadU8());
  }
  const std::size_t nodes = static_cast<std::size_t>(k) + 1;
  std::vector<std::int64_t> slab;
  ITDB_RETURN_IF_ERROR(in.ReadI64Array(nodes * nodes * n, &slab));

  segment.rows.reserve(n);
  std::vector<std::int64_t> entries(nodes * nodes);
  for (std::size_t t = 0; t < n; ++t) {
    SegmentRow row;
    row.sys_from = sys_from[t];
    row.sys_to = sys_to[t];
    // Gather this row's matrix out of the entry-major slab.
    for (std::size_t p = 0; p < nodes; ++p) {
      for (std::size_t q = 0; q < nodes; ++q) {
        entries[p * nodes + q] = slab[(p * nodes + q) * n + t];
      }
    }
    GeneralizedTuple tuple(std::move(temporal[t]), std::move(data[t]));
    tuple.set_constraints(Dbm::FromEntries(k, entries.data(),
                                           (flags[t] & kFlagClosed) != 0,
                                           (flags[t] & kFlagFeasible) != 0));
    row.tuple = std::move(tuple);
    segment.rows.push_back(std::move(row));
  }
  *offset = in.pos();
  return segment;
}

Result<std::string> EncodeSnapshot(const SnapshotFile& file) {
  std::string out;
  PutU32(&out, kFileMagic);
  PutU32(&out, kFormatVersion);
  PutU64(&out, file.commit_version);
  PutU32(&out, static_cast<std::uint32_t>(file.segments.size()));
  PutU32(&out, static_cast<std::uint32_t>(file.header_comments.size()));
  for (const std::string& comment : file.header_comments) {
    PutString(&out, comment);
  }
  for (const RelationSegment& segment : file.segments) {
    ITDB_RETURN_IF_ERROR(AppendSegment(segment, &out));
  }
  PutU32(&out, Crc32(out));
  obs::AddGlobalCounter("storage.snapshot_bytes",
                        static_cast<std::int64_t>(out.size()));
  return out;
}

Result<SnapshotFile> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < 28) {
    return Status::ParseError("binary file: too short for a header");
  }
  const std::uint32_t stored_crc = Crc32(bytes.substr(0, bytes.size() - 4));
  ByteReader crc_in(bytes, bytes.size() - 4);
  ITDB_ASSIGN_OR_RETURN(std::uint32_t file_crc, crc_in.ReadU32());
  if (stored_crc != file_crc) {
    return Status::ParseError("binary file: CRC mismatch (torn or corrupt)");
  }
  ByteReader in(bytes);
  ITDB_ASSIGN_OR_RETURN(std::uint32_t magic, in.ReadU32());
  if (magic != kFileMagic) {
    return Status::ParseError("binary file: bad magic (not an itdb file)");
  }
  ITDB_ASSIGN_OR_RETURN(std::uint32_t version, in.ReadU32());
  if (version != kFormatVersion) {
    return Status::ParseError("binary file: unsupported format version " +
                              std::to_string(version));
  }
  SnapshotFile file;
  ITDB_ASSIGN_OR_RETURN(file.commit_version, in.ReadU64());
  ITDB_ASSIGN_OR_RETURN(std::uint32_t segment_count, in.ReadU32());
  ITDB_ASSIGN_OR_RETURN(std::uint32_t comment_count, in.ReadU32());
  if (comment_count > in.remaining()) {
    return Status::ParseError("binary file: implausible comment count");
  }
  file.header_comments.reserve(comment_count);
  for (std::uint32_t c = 0; c < comment_count; ++c) {
    ITDB_ASSIGN_OR_RETURN(std::string comment, in.ReadString());
    file.header_comments.push_back(std::move(comment));
  }
  std::size_t offset = in.pos();
  const std::size_t body_end = bytes.size() - 4;
  file.segments.reserve(segment_count);
  for (std::uint32_t s = 0; s < segment_count; ++s) {
    ITDB_ASSIGN_OR_RETURN(RelationSegment segment,
                          ReadSegment(bytes.substr(0, body_end), &offset));
    file.segments.push_back(std::move(segment));
  }
  if (offset != body_end) {
    return Status::ParseError("binary file: trailing bytes after segments");
  }
  return file;
}

Result<std::string> EncodeDatabase(const Database& db) {
  SnapshotFile file;
  file.header_comments = db.header_comments();
  for (const std::string& name : db.Names()) {
    RelationSegment segment;
    segment.name = name;
    const GeneralizedRelation relation = db.Get(name).value();
    segment.schema = relation.schema();
    segment.rows.reserve(static_cast<std::size_t>(relation.size()));
    for (const GeneralizedTuple& tuple : relation.tuples()) {
      segment.rows.push_back(SegmentRow{tuple, 0, kOpenVersion});
    }
    file.segments.push_back(std::move(segment));
  }
  return EncodeSnapshot(file);
}

Result<Database> DecodeDatabase(std::string_view bytes) {
  ITDB_ASSIGN_OR_RETURN(SnapshotFile file, DecodeSnapshot(bytes));
  Database db;
  for (RelationSegment& segment : file.segments) {
    GeneralizedRelation relation(segment.schema);
    relation.ReserveTuples(segment.rows.size());
    for (SegmentRow& row : segment.rows) {
      if (row.sys_to != kOpenVersion) continue;  // Historical row.
      ITDB_RETURN_IF_ERROR(relation.AddTuple(std::move(row.tuple)));
    }
    ITDB_RETURN_IF_ERROR(db.Add(segment.name, std::move(relation)));
  }
  db.set_header_comments(std::move(file.header_comments));
  return db;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  ITDB_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  return std::string(file.view());
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes,
                       bool fsync) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot write \"" + tmp + "\": " +
                                   ErrnoMessage(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::InvalidArgument("short write on \"" + tmp + "\"");
    }
    written += static_cast<std::size_t>(n);
  }
  if (fsync && ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::InvalidArgument("fsync failed on \"" + tmp + "\"");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::InvalidArgument("cannot rename \"" + tmp + "\" to \"" +
                                   path + "\"");
  }
  return Status::Ok();
}

Status SaveDatabaseFile(const Database& db, const std::string& path) {
  ITDB_ASSIGN_OR_RETURN(std::string bytes, EncodeDatabase(db));
  return WriteFileAtomic(path, bytes, /*fsync=*/false);
}

Result<Database> LoadDatabaseFile(const std::string& path) {
  ITDB_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  return DecodeDatabase(file.view());
}

}  // namespace storage
}  // namespace itdb
