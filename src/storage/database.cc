#include "storage/database.h"

#include <utility>

#include "storage/lexer.h"
#include "storage/text_format.h"

namespace itdb {

Status Database::Add(const std::string& name, GeneralizedRelation relation) {
  if (relations_.contains(name)) {
    return Status::InvalidArgument("relation \"" + name + "\" already exists");
  }
  relations_.emplace(name, std::move(relation));
  ++version_;
  return Status::Ok();
}

void Database::Put(const std::string& name, GeneralizedRelation relation) {
  relations_.insert_or_assign(name, std::move(relation));
  ++version_;
}

Status Database::Remove(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation \"" + name + "\" does not exist");
  }
  ++version_;
  return Status::Ok();
}

Result<GeneralizedRelation> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation \"" + name + "\" does not exist");
  }
  return it->second;
}

bool Database::Has(const std::string& name) const {
  return relations_.contains(name);
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) out.push_back(name);
  return out;
}

namespace {

/// The leading block of `#`-comment lines, stripped of "# " / "#" prefixes.
/// Capture stops at the first line with non-comment content; blank lines
/// inside the block are skipped (they separate the header from the body).
std::vector<std::string> ParseHeaderComments(std::string_view text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) {
      pos = eol + 1;  // Blank line: may still precede more header comments.
      continue;
    }
    if (line[first] != '#') break;
    std::string_view body = line.substr(first + 1);
    if (body.starts_with(" ")) body.remove_prefix(1);
    if (body.ends_with("\r")) body.remove_suffix(1);
    out.emplace_back(body);
    pos = eol + 1;
  }
  return out;
}

void AppendHeaderComments(const std::vector<std::string>& header_comments,
                          std::string* out) {
  for (const std::string& h : header_comments) {
    *out += "# ";
    *out += h;
    *out += "\n";
  }
  if (!header_comments.empty()) *out += "\n";
}

}  // namespace

Result<Database> Database::FromText(std::string_view text) {
  ITDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  Database out;
  while (!ts.AtEnd()) {
    ITDB_ASSIGN_OR_RETURN(NamedRelation named,
                          internal_text_format::ParseRelationBlock(ts));
    ITDB_RETURN_IF_ERROR(out.Add(named.name, std::move(named.relation)));
  }
  out.header_comments_ = ParseHeaderComments(text);
  return out;
}

std::string Database::ToText() const {
  std::string out;
  AppendHeaderComments(header_comments_, &out);
  for (const auto& [name, relation] : relations_) {
    out += PrintRelation(name, relation);
    out += "\n";
  }
  return out;
}

std::string Database::ToText(
    const std::vector<std::string>& header_comments) const {
  std::string out;
  AppendHeaderComments(header_comments, &out);
  for (const auto& [name, relation] : relations_) {
    out += PrintRelation(name, relation);
    out += "\n";
  }
  return out;
}

}  // namespace itdb
