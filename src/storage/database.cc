#include "storage/database.h"

#include <utility>

#include "storage/lexer.h"
#include "storage/text_format.h"

namespace itdb {

Status Database::Add(const std::string& name, GeneralizedRelation relation) {
  if (relations_.contains(name)) {
    return Status::InvalidArgument("relation \"" + name + "\" already exists");
  }
  relations_.emplace(name, std::move(relation));
  ++version_;
  return Status::Ok();
}

void Database::Put(const std::string& name, GeneralizedRelation relation) {
  relations_.insert_or_assign(name, std::move(relation));
  ++version_;
}

Status Database::Remove(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation \"" + name + "\" does not exist");
  }
  ++version_;
  return Status::Ok();
}

Result<GeneralizedRelation> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation \"" + name + "\" does not exist");
  }
  return it->second;
}

bool Database::Has(const std::string& name) const {
  return relations_.contains(name);
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) out.push_back(name);
  return out;
}

Result<Database> Database::FromText(std::string_view text) {
  ITDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  Database out;
  while (!ts.AtEnd()) {
    ITDB_ASSIGN_OR_RETURN(NamedRelation named,
                          internal_text_format::ParseRelationBlock(ts));
    ITDB_RETURN_IF_ERROR(out.Add(named.name, std::move(named.relation)));
  }
  return out;
}

std::string Database::ToText() const {
  std::string out;
  for (const auto& [name, relation] : relations_) {
    out += PrintRelation(name, relation);
    out += "\n";
  }
  return out;
}

std::string Database::ToText(
    const std::vector<std::string>& header_comments) const {
  std::string out;
  for (const std::string& h : header_comments) {
    out += "# ";
    out += h;
    out += "\n";
  }
  if (!header_comments.empty()) out += "\n";
  out += ToText();
  return out;
}

}  // namespace itdb
