// Write-ahead log for incremental catalog mutations.
//
// The log is a flat file of CRC-framed records, one per applied mutation:
//
//   u32 magic "WREC"
//   u32 body length
//   body:  u64 lsn, u32 type (1 = put, 2 = remove), name,
//          encoded RelationSegment (put only; binary_format.h)
//   u32 CRC32 of the body
//
// A record is durable iff its frame is complete and its CRC matches.
// DecodeWal returns the longest valid prefix: the first torn or corrupt
// frame ends the log (everything after a torn write is unreachable anyway,
// because records are appended strictly in LSN order).  Recovery truncates
// the file to that prefix and replays records with lsn > the snapshot
// version -- replaying an already-applied lsn is skipped, which is what
// makes a crash between snapshot rename and WAL reset harmless.
//
// Fault injection: when the environment variable ITDB_CRASH_AT holds a
// byte count N, the process-cumulative WAL append stream is cut at byte N --
// the writer emits the partial frame prefix and calls _exit(42), simulating
// a torn write followed by a crash.  The crash-recovery CI harness
// (tools/crash_harness.py) sweeps N over the whole stream.

#ifndef ITDB_STORAGE_WAL_WAL_H_
#define ITDB_STORAGE_WAL_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/binary/binary_format.h"
#include "util/status.h"

namespace itdb {
namespace storage {

enum class WalRecordType : std::uint32_t {
  /// Replace (or create) a relation: the payload segment's open rows are
  /// the relation's new tuples, in order.
  kPut = 1,
  /// Drop a relation.
  kRemove = 2,
};

/// One logged mutation.
struct WalRecord {
  std::uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kPut;
  std::string name;
  /// The relation's full new state (kPut only).
  RelationSegment segment;
};

/// Serializes one framed record.
Result<std::string> EncodeWalRecord(const WalRecord& record);

/// The longest valid prefix of a WAL image.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Byte length of the valid prefix; the file should be truncated here
  /// when truncated_tail is set.
  std::uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes existed but did not form a valid frame (torn
  /// final write or corruption).
  bool truncated_tail = false;
};

/// Decodes every valid leading frame; never fails on a torn tail (that is
/// reported through the result), only on unreadable well-formed frames.
Result<WalReadResult> DecodeWal(std::string_view bytes);

/// ReadFileBytes + DecodeWal.  A missing file is an empty log.
Result<WalReadResult> ReadWalFile(const std::string& path);

/// Appends framed records to a log file.
class WalWriter {
 public:
  /// Opens (creating if needed) `path` for appending.  `truncate_to`
  /// trims the file first (pass a WalReadResult's valid_bytes to drop a
  /// torn tail); pass the current size or UINT64_MAX to keep everything.
  static Result<WalWriter> Open(const std::string& path, bool fsync,
                                std::uint64_t truncate_to = UINT64_MAX);

  WalWriter() = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }
  WalWriter& operator=(WalWriter&& other) noexcept;
  ~WalWriter();

  /// Encodes and appends one record (fsync'ing when configured).  This is
  /// the ITDB_CRASH_AT fault point: the injected crash tears the frame
  /// mid-write and exits the process.
  Status Append(const WalRecord& record);

  /// Truncates the log to empty (after a checkpoint made it redundant).
  Status Reset();

  /// Current file size in bytes.
  std::uint64_t file_bytes() const { return file_bytes_; }

 private:
  int fd_ = -1;
  bool fsync_ = false;
  std::uint64_t file_bytes_ = 0;
};

}  // namespace storage
}  // namespace itdb

#endif  // ITDB_STORAGE_WAL_WAL_H_
