#include "storage/wal/storage_engine.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace itdb {
namespace storage {

namespace {

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.itdbb";
}

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

}  // namespace

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& dir, Database* db, StorageEngineOptions options) {
  obs::Span span =
      obs::Span::Begin(obs::ResolveTracer(nullptr), "storage.open", "storage");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create data directory \"" + dir +
                                   "\": " + ec.message());
  }
  std::unique_ptr<StorageEngine> engine = std::make_unique<StorageEngine>();
  engine->dir_ = dir;
  engine->options_ = options;

  Result<std::string> snapshot_bytes = ReadFileBytes(SnapshotPath(dir));
  if (snapshot_bytes.ok()) {
    ITDB_ASSIGN_OR_RETURN(SnapshotFile snapshot,
                          DecodeSnapshot(snapshot_bytes.value()));
    ITDB_RETURN_IF_ERROR(engine->LoadSnapshot(snapshot, db));
  } else if (snapshot_bytes.status().code() != StatusCode::kNotFound) {
    return snapshot_bytes.status();
  }

  ITDB_ASSIGN_OR_RETURN(WalReadResult wal, ReadWalFile(WalPath(dir)));
  if (wal.truncated_tail) {
    engine->recovered_torn_tail_ = true;
    obs::AddGlobalCounter("storage.torn_tails", 1);
  }
  for (WalRecord& record : wal.records) {
    // Records at or below the snapshot version are already reflected in it:
    // a crash between snapshot rename and WAL reset replays them as no-ops.
    if (record.lsn <= engine->version_) continue;
    const std::uint64_t lsn = record.lsn;
    ITDB_RETURN_IF_ERROR(engine->ApplyToState(*db, record));
    engine->version_ = lsn;
    ++engine->replayed_records_;
  }
  engine->wal_records_ = wal.records.size();
  ITDB_ASSIGN_OR_RETURN(
      engine->wal_,
      WalWriter::Open(WalPath(dir), options.fsync, wal.valid_bytes));
  obs::AddGlobalCounter("storage.recoveries", 1);
  obs::AddGlobalCounter(
      "storage.replayed_records",
      static_cast<std::int64_t>(engine->replayed_records_));
  span.AddArg("version", static_cast<std::int64_t>(engine->version_));
  span.AddArg("replayed",
              static_cast<std::int64_t>(engine->replayed_records_));
  return engine;
}

Status StorageEngine::ApplyAdd(Database& db, const std::string& name,
                               GeneralizedRelation relation) {
  if (db.Has(name)) {
    return Status::InvalidArgument("relation \"" + name + "\" already exists");
  }
  return ApplyPut(db, name, std::move(relation));
}

Status StorageEngine::ApplyPut(Database& db, const std::string& name,
                               GeneralizedRelation relation) {
  WalRecord record;
  record.type = WalRecordType::kPut;
  record.name = name;
  record.segment.name = name;
  record.segment.schema = relation.schema();
  record.segment.rows.reserve(static_cast<std::size_t>(relation.size()));
  for (const GeneralizedTuple& tuple : relation.tuples()) {
    record.segment.rows.push_back(SegmentRow{tuple, 0, kOpenVersion});
  }
  return Commit(db, std::move(record));
}

Status StorageEngine::ApplyRemove(Database& db, const std::string& name) {
  if (!db.Has(name)) {
    return Status::NotFound("relation \"" + name + "\" does not exist");
  }
  WalRecord record;
  record.type = WalRecordType::kRemove;
  record.name = name;
  return Commit(db, std::move(record));
}

Status StorageEngine::Commit(Database& db, WalRecord record) {
  record.lsn = version_ + 1;
  // WAL first: the record is durable (or torn, rolling the mutation back)
  // before any in-memory state moves.
  ITDB_RETURN_IF_ERROR(wal_.Append(record));
  ++wal_records_;
  ITDB_RETURN_IF_ERROR(ApplyToState(db, record));
  version_ = record.lsn;
  if (options_.auto_checkpoint_records > 0 &&
      wal_records_ >= options_.auto_checkpoint_records) {
    ITDB_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::Ok();
}

Status StorageEngine::ApplyToState(Database& db, const WalRecord& record) {
  const std::uint64_t lsn = record.lsn;
  if (record.type == WalRecordType::kRemove) {
    std::vector<Epoch>& epochs = history_[record.name];
    if (epochs.empty() || epochs.back().to != kOpenVersion) {
      return Status::ParseError("WAL remove of \"" + record.name +
                                "\" without an open epoch");
    }
    Epoch& epoch = epochs.back();
    for (SegmentRow& row : epoch.open) {
      row.sys_to = lsn;
      epoch.closed.push_back(std::move(row));
    }
    epoch.open.clear();
    epoch.to = lsn;
    return db.Remove(record.name);
  }

  // kPut: the segment's rows are the relation's new tuples, in order.
  GeneralizedRelation relation(record.segment.schema);
  for (const SegmentRow& row : record.segment.rows) {
    ITDB_RETURN_IF_ERROR(relation.AddTuple(row.tuple));
  }

  std::vector<Epoch>& epochs = history_[record.name];
  Epoch* epoch = nullptr;
  if (!epochs.empty() && epochs.back().to == kOpenVersion) {
    if (epochs.back().schema == record.segment.schema) {
      epoch = &epochs.back();
    } else {
      // Schema change: close the old epoch wholesale and open a fresh one.
      Epoch& old = epochs.back();
      for (SegmentRow& row : old.open) {
        row.sys_to = lsn;
        old.closed.push_back(std::move(row));
      }
      old.open.clear();
      old.to = lsn;
    }
  }
  if (epoch == nullptr) {
    epochs.push_back(Epoch{record.segment.schema, lsn, kOpenVersion, {}, {}});
    epoch = &epochs.back();
  }

  // Diff the old open rows against the new tuple sequence as multisets:
  // a new tuple equal to an unmatched survivor keeps that row's sys_from
  // (the row never logically left), everything else is born at this LSN,
  // and unmatched old rows retire at this LSN.  The new open list mirrors
  // the relation's tuple order so a recovered catalog prints identically.
  std::vector<bool> matched(epoch->open.size(), false);
  std::vector<SegmentRow> new_open;
  new_open.reserve(relation.tuples().size());
  for (const GeneralizedTuple& tuple : relation.tuples()) {
    std::uint64_t sys_from = lsn;
    for (std::size_t i = 0; i < epoch->open.size(); ++i) {
      if (!matched[i] && epoch->open[i].tuple == tuple) {
        matched[i] = true;
        sys_from = epoch->open[i].sys_from;
        break;
      }
    }
    new_open.push_back(SegmentRow{tuple, sys_from, kOpenVersion});
  }
  for (std::size_t i = 0; i < epoch->open.size(); ++i) {
    if (matched[i]) continue;
    epoch->open[i].sys_to = lsn;
    epoch->closed.push_back(std::move(epoch->open[i]));
  }
  epoch->open = std::move(new_open);

  db.Put(record.name, std::move(relation));
  return Status::Ok();
}

Result<SnapshotFile> StorageEngine::BuildSnapshot() const {
  SnapshotFile snapshot;
  snapshot.commit_version = version_;
  for (const auto& [name, epochs] : history_) {
    for (const Epoch& epoch : epochs) {
      RelationSegment segment;
      segment.name = name;
      segment.schema = epoch.schema;
      segment.epoch_from = epoch.from;
      segment.epoch_to = epoch.to;
      segment.rows.reserve(epoch.closed.size() + epoch.open.size());
      segment.rows.insert(segment.rows.end(), epoch.closed.begin(),
                          epoch.closed.end());
      segment.rows.insert(segment.rows.end(), epoch.open.begin(),
                          epoch.open.end());
      snapshot.segments.push_back(std::move(segment));
    }
  }
  return snapshot;
}

Status StorageEngine::LoadSnapshot(const SnapshotFile& snapshot,
                                   Database* db) {
  version_ = snapshot.commit_version;
  snapshot_version_ = snapshot.commit_version;
  for (const RelationSegment& segment : snapshot.segments) {
    Epoch epoch;
    epoch.schema = segment.schema;
    epoch.from = segment.epoch_from;
    epoch.to = segment.epoch_to;
    for (const SegmentRow& row : segment.rows) {
      // Closed rows precede open ones in the file (BuildSnapshot's order);
      // the open rows' order is the live relation's tuple order.
      (row.sys_to == kOpenVersion ? epoch.open : epoch.closed).push_back(row);
    }
    std::vector<Epoch>& epochs = history_[segment.name];
    if (!epochs.empty() && epochs.back().to == kOpenVersion) {
      return Status::ParseError("snapshot: epoch of \"" + segment.name +
                                "\" after an open epoch");
    }
    if (epoch.to == kOpenVersion) {
      GeneralizedRelation relation(epoch.schema);
      for (const SegmentRow& row : epoch.open) {
        ITDB_RETURN_IF_ERROR(relation.AddTuple(row.tuple));
      }
      ITDB_RETURN_IF_ERROR(db->Add(segment.name, std::move(relation)));
    }
    epochs.push_back(std::move(epoch));
  }
  return Status::Ok();
}

Status StorageEngine::Checkpoint() {
  obs::Span span = obs::Span::Begin(obs::ResolveTracer(nullptr),
                                    "storage.checkpoint", "storage");
  ITDB_ASSIGN_OR_RETURN(SnapshotFile snapshot, BuildSnapshot());
  ITDB_ASSIGN_OR_RETURN(std::string bytes, EncodeSnapshot(snapshot));
  ITDB_RETURN_IF_ERROR(
      WriteFileAtomic(SnapshotPath(dir_), bytes, options_.fsync));
  // The snapshot covers every logged record; a crash before this Reset
  // replays them against it as skipped no-ops (lsn <= snapshot version).
  ITDB_RETURN_IF_ERROR(wal_.Reset());
  snapshot_version_ = version_;
  wal_records_ = 0;
  obs::AddGlobalCounter("storage.checkpoints", 1);
  span.AddArg("version", static_cast<std::int64_t>(version_));
  span.AddArg("bytes", static_cast<std::int64_t>(bytes.size()));
  return Status::Ok();
}

Result<Database> StorageEngine::AsOf(std::uint64_t version) const {
  Database out;
  for (const auto& [name, epochs] : history_) {
    for (const Epoch& epoch : epochs) {
      if (!(epoch.from <= version && version < epoch.to)) continue;
      GeneralizedRelation relation(epoch.schema);
      for (const std::vector<SegmentRow>* rows : {&epoch.closed, &epoch.open}) {
        for (const SegmentRow& row : *rows) {
          if (row.sys_from <= version && version < row.sys_to) {
            ITDB_RETURN_IF_ERROR(relation.AddTuple(row.tuple));
          }
        }
      }
      relation.SortTuplesCanonical();
      ITDB_RETURN_IF_ERROR(out.Add(name, std::move(relation)));
      break;  // Epochs are disjoint in system time.
    }
  }
  return out;
}

Result<std::vector<HistoryEntry>> StorageEngine::History(
    const std::string& name) const {
  auto it = history_.find(name);
  if (it == history_.end()) {
    return Status::NotFound("relation \"" + name + "\" has no history");
  }
  std::vector<HistoryEntry> out;
  for (const Epoch& epoch : it->second) {
    for (const std::vector<SegmentRow>* rows : {&epoch.closed, &epoch.open}) {
      for (const SegmentRow& row : *rows) {
        out.push_back(HistoryEntry{row.tuple, row.sys_from, row.sys_to});
      }
    }
  }
  // Lifetimes read best in birth order; ties keep the closed-before-open
  // file order, which is itself deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const HistoryEntry& a, const HistoryEntry& b) {
                     return a.sys_from < b.sys_from;
                   });
  return out;
}

StorageStats StorageEngine::stats() const {
  StorageStats stats;
  stats.version = version_;
  stats.snapshot_version = snapshot_version_;
  stats.wal_records = wal_records_;
  stats.wal_bytes = wal_.file_bytes();
  stats.replayed_records = replayed_records_;
  stats.recovered_torn_tail = recovered_torn_tail_;
  return stats;
}

}  // namespace storage
}  // namespace itdb
