#include "storage/wal/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "util/errno_message.h"

namespace itdb {
namespace storage {

namespace {

constexpr std::uint32_t kRecordMagic = 0x43455257;  // "WREC" little-endian.

/// The ITDB_CRASH_AT byte threshold, or -1 when fault injection is off.
/// Read once; the harness sets it per process.
std::int64_t CrashAtThreshold() {
  static const std::int64_t threshold = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once under a static
    // initializer before any pool thread exists; nothing calls setenv.
    const char* env = std::getenv("ITDB_CRASH_AT");
    if (env == nullptr || *env == '\0') return std::int64_t{-1};
    return static_cast<std::int64_t>(std::strtoll(env, nullptr, 10));
  }();
  return threshold;
}

/// Cumulative bytes this process has appended to any WAL, across
/// checkpoint truncations -- the coordinate system of ITDB_CRASH_AT.
std::atomic<std::int64_t>& CumulativeAppended() {
  static std::atomic<std::int64_t> bytes{0};
  return bytes;
}

/// Writes `bytes` to `fd`, honoring the fault point: when the cumulative
/// append stream would cross the ITDB_CRASH_AT threshold, only the prefix
/// up to the threshold is written and the process exits with code 42 --
/// a torn write followed by a crash, as seen by the next process.
Status FaultInjectedWrite(int fd, std::string_view bytes) {
  std::size_t limit = bytes.size();
  bool crash = false;
  const std::int64_t threshold = CrashAtThreshold();
  if (threshold >= 0) {
    const std::int64_t before = CumulativeAppended().load();
    if (before + static_cast<std::int64_t>(bytes.size()) > threshold) {
      limit = static_cast<std::size_t>(
          std::max<std::int64_t>(0, threshold - before));
      crash = true;
    }
  }
  std::size_t written = 0;
  while (written < limit) {
    ssize_t n = ::write(fd, bytes.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::InvalidArgument(std::string("WAL write failed: ") +
                                     ErrnoMessage(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  CumulativeAppended().fetch_add(static_cast<std::int64_t>(written));
  if (crash) _exit(42);
  return Status::Ok();
}

}  // namespace

Result<std::string> EncodeWalRecord(const WalRecord& record) {
  std::string body;
  wire::PutU64(&body, record.lsn);
  wire::PutU32(&body, static_cast<std::uint32_t>(record.type));
  wire::PutString(&body, record.name);
  if (record.type == WalRecordType::kPut) {
    ITDB_RETURN_IF_ERROR(AppendSegment(record.segment, &body));
  }
  std::string frame;
  frame.reserve(body.size() + 12);
  wire::PutU32(&frame, kRecordMagic);
  wire::PutU32(&frame, static_cast<std::uint32_t>(body.size()));
  frame += body;
  wire::PutU32(&frame, Crc32(body));
  return frame;
}

Result<WalReadResult> DecodeWal(std::string_view bytes) {
  WalReadResult out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    // A frame that does not fully parse and check out is a torn tail, not
    // an error: stop at the last known-good boundary.
    std::size_t cursor = pos;
    Result<std::uint32_t> magic = wire::ReadU32(bytes, &cursor);
    if (!magic.ok() || magic.value() != kRecordMagic) break;
    Result<std::uint32_t> len = wire::ReadU32(bytes, &cursor);
    if (!len.ok() || bytes.size() - cursor < len.value() + std::size_t{4}) {
      break;
    }
    std::string_view body = bytes.substr(cursor, len.value());
    cursor += len.value();
    Result<std::uint32_t> crc = wire::ReadU32(bytes, &cursor);
    if (!crc.ok() || crc.value() != Crc32(body)) break;

    // The frame is intact; a malformed body now is real corruption.
    WalRecord record;
    std::size_t body_pos = 0;
    ITDB_ASSIGN_OR_RETURN(record.lsn, wire::ReadU64(body, &body_pos));
    ITDB_ASSIGN_OR_RETURN(std::uint32_t type, wire::ReadU32(body, &body_pos));
    if (type != static_cast<std::uint32_t>(WalRecordType::kPut) &&
        type != static_cast<std::uint32_t>(WalRecordType::kRemove)) {
      return Status::ParseError("WAL record: unknown type " +
                                std::to_string(type));
    }
    record.type = static_cast<WalRecordType>(type);
    ITDB_ASSIGN_OR_RETURN(record.name, wire::ReadString(body, &body_pos));
    if (record.type == WalRecordType::kPut) {
      ITDB_ASSIGN_OR_RETURN(record.segment, ReadSegment(body, &body_pos));
    }
    if (body_pos != body.size()) {
      return Status::ParseError("WAL record: trailing bytes in body");
    }
    out.records.push_back(std::move(record));
    pos = cursor;
  }
  out.valid_bytes = pos;
  out.truncated_tail = pos != bytes.size();
  return out;
}

Result<WalReadResult> ReadWalFile(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) return WalReadResult{};
    return bytes.status();
  }
  return DecodeWal(bytes.value());
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  std::swap(fd_, other.fd_);
  std::swap(fsync_, other.fsync_);
  std::swap(file_bytes_, other.file_bytes_);
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<WalWriter> WalWriter::Open(const std::string& path, bool fsync,
                                  std::uint64_t truncate_to) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open WAL \"" + path + "\": " +
                                   ErrnoMessage(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot stat WAL \"" + path + "\"");
  }
  std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (truncate_to < size) {
    if (::ftruncate(fd, static_cast<off_t>(truncate_to)) != 0) {
      ::close(fd);
      return Status::InvalidArgument("cannot truncate WAL \"" + path + "\"");
    }
    size = truncate_to;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot seek WAL \"" + path + "\"");
  }
  WalWriter out;
  out.fd_ = fd;
  out.fsync_ = fsync;
  out.file_bytes_ = size;
  return out;
}

Status WalWriter::Append(const WalRecord& record) {
  ITDB_ASSIGN_OR_RETURN(std::string frame, EncodeWalRecord(record));
  ITDB_RETURN_IF_ERROR(FaultInjectedWrite(fd_, frame));
  file_bytes_ += frame.size();
  if (fsync_ && ::fsync(fd_) != 0) {
    return Status::InvalidArgument("WAL fsync failed");
  }
  obs::AddGlobalCounter("storage.wal_records", 1);
  obs::AddGlobalCounter("storage.wal_appended_bytes",
                        static_cast<std::int64_t>(frame.size()));
  return Status::Ok();
}

Status WalWriter::Reset() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::InvalidArgument("cannot reset WAL");
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::InvalidArgument("cannot rewind WAL");
  }
  file_bytes_ = 0;
  return Status::Ok();
}

}  // namespace storage
}  // namespace itdb
