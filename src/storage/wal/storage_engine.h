// Durable, bitemporal storage for a Database catalog.
//
// The engine pairs the paper's valid-time dimension (lrps + constraints
// inside each generalized tuple) with a SYSTEM-TIME dimension in the style
// of SQL:2011 transaction-time tables: every stored row carries
// [sys_from, sys_to) in engine versions, where the engine version is the
// LSN of the last applied mutation.  A row inserted by LSN v has
// sys_from = v; retracting it at LSN w sets sys_to = w; current rows have
// sys_to = kOpenVersion.  `AsOf(v)` therefore reconstructs the exact
// catalog any reader saw at version v, and History exposes each row's
// lifetime.
//
// Durability protocol (WAL-first):
//   1. encode the mutation as a WalRecord with lsn = version + 1
//   2. append it to the log (the crash point -- see wal.h)
//   3. update the in-memory history and the live Database
//   4. version = lsn
// A crash before (2) completes leaves a torn tail that recovery truncates:
// the catalog rolls back to the acknowledged prefix.  A crash after (2)
// recovers the mutation by replay.  Checkpoint writes the whole history as
// one snapshot file (atomic rename), then resets the log; replay skips
// lsn <= snapshot version, so a crash anywhere inside Checkpoint is safe.
//
// Concurrency: the engine itself is NOT internally synchronized.  The
// server calls every mutating method under SharedDatabase::WithWrite and
// the read-only ones under WithRead, which is exactly the discipline the
// live Database already requires.

#ifndef ITDB_STORAGE_WAL_STORAGE_ENGINE_H_
#define ITDB_STORAGE_WAL_STORAGE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/binary/binary_format.h"
#include "storage/database.h"
#include "storage/wal/wal.h"
#include "util/status.h"

namespace itdb {
namespace storage {

struct StorageEngineOptions {
  /// fsync the WAL after every append (and the snapshot on checkpoint).
  /// Off by default: process-crash durability (the threat model of the
  /// crash harness) only needs the page cache; power-loss durability
  /// needs fsync and costs a disk flush per mutation.
  bool fsync = false;
  /// Checkpoint automatically once this many WAL records accumulate
  /// (0 = only on explicit request).
  std::uint64_t auto_checkpoint_records = 0;
};

struct StorageStats {
  std::uint64_t version = 0;           // Last applied LSN.
  std::uint64_t snapshot_version = 0;  // Version the snapshot file holds.
  std::uint64_t wal_records = 0;       // Records in the live WAL tail.
  std::uint64_t wal_bytes = 0;         // Live WAL file size.
  std::uint64_t replayed_records = 0;  // Records replayed by Open.
  bool recovered_torn_tail = false;    // Open truncated a torn tail.
};

/// One row's lifetime, for History().
struct HistoryEntry {
  GeneralizedTuple tuple{std::vector<Lrp>{}};
  std::uint64_t sys_from = 0;
  std::uint64_t sys_to = kOpenVersion;
};

class StorageEngine {
 public:
  /// Opens (creating if needed) the data directory, loads the snapshot,
  /// replays the WAL tail -- truncating a torn final record -- and
  /// materializes the recovered catalog into `*db` (which must be empty).
  /// After Open, `db` and the engine agree and stay in lockstep through
  /// the Apply* methods.
  static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& dir, Database* db, StorageEngineOptions options = {});

  /// Public only for std::make_unique; use Open().
  StorageEngine() = default;

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Durable Database::Add: fails if `name` exists, else logs and applies.
  Status ApplyAdd(Database& db, const std::string& name,
                  GeneralizedRelation relation);
  /// Durable Database::Put: logs the relation's new state and applies it.
  /// Rows equal to a surviving current row keep their sys_from; vanished
  /// rows are closed at this LSN.
  Status ApplyPut(Database& db, const std::string& name,
                  GeneralizedRelation relation);
  /// Durable Database::Remove: closes the relation's open epoch.
  Status ApplyRemove(Database& db, const std::string& name);

  /// Writes the full bitemporal history as a snapshot (atomic rename),
  /// then resets the WAL.
  Status Checkpoint();

  /// The catalog as it stood after LSN `version` was applied (0 = before
  /// any mutation).  Relations are sorted canonically: the historical
  /// record pins contents, not tuple order.
  Result<Database> AsOf(std::uint64_t version) const;

  /// Every recorded row of `name` across all epochs, oldest epoch first.
  Result<std::vector<HistoryEntry>> History(const std::string& name) const;

  std::uint64_t version() const { return version_; }
  StorageStats stats() const;

 private:
  /// Applies one decoded record to the history and to `db` (no logging);
  /// shared by live mutation and replay.
  Status ApplyToState(Database& db, const WalRecord& record);

  /// Logs and applies; the single mutation entry point.
  Status Commit(Database& db, WalRecord record);

  Result<SnapshotFile> BuildSnapshot() const;
  Status LoadSnapshot(const SnapshotFile& snapshot, Database* db);

  /// One maximal system-time interval of a relation under one schema.
  /// `closed` rows are kept in retirement order; `open` rows mirror the
  /// live relation's tuple order exactly, so a recovered catalog renders
  /// byte-identically to the one that crashed.
  struct Epoch {
    Schema schema;
    std::uint64_t from = 0;
    std::uint64_t to = kOpenVersion;
    std::vector<SegmentRow> closed;
    std::vector<SegmentRow> open;
  };

  std::string dir_;
  StorageEngineOptions options_;
  std::map<std::string, std::vector<Epoch>> history_;
  WalWriter wal_;
  std::uint64_t version_ = 0;
  std::uint64_t snapshot_version_ = 0;
  std::uint64_t wal_records_ = 0;
  std::uint64_t replayed_records_ = 0;
  bool recovered_torn_tail_ = false;
};

}  // namespace storage
}  // namespace itdb

#endif  // ITDB_STORAGE_WAL_STORAGE_ENGINE_H_
