// A temporal database: a catalog of named generalized relations
// (the "collections of generalized relations" of Section 2.1), with textual
// load/save built on text_format.h.

#ifndef ITDB_STORAGE_DATABASE_H_
#define ITDB_STORAGE_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/relation.h"
#include "util/status.h"

namespace itdb {

/// A catalog of named generalized relations.
class Database {
 public:
  Database() = default;

  /// Adds (or fails on duplicate name).
  Status Add(const std::string& name, GeneralizedRelation relation);
  /// Replaces or adds.
  void Put(const std::string& name, GeneralizedRelation relation);
  Status Remove(const std::string& name);

  /// Catalog version: bumped by every successful Add / Put / Remove.
  /// Consumers (the per-relation statistics cache, core/stats.h) key lazily
  /// computed state on (name, version) so a mutation invalidates it without
  /// any registration machinery.  Monotone within one Database instance;
  /// copies carry the version along, so one cache must not be shared across
  /// distinct Database objects.
  std::uint64_t version() const { return version_; }

  /// Fails with kNotFound for unknown names.
  Result<GeneralizedRelation> Get(const std::string& name) const;
  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;
  int size() const { return static_cast<int>(relations_.size()); }

  /// Parses a sequence of `relation ... { ... }` blocks.  A leading block of
  /// `#`-comment lines (before the first relation) is captured into
  /// header_comments(), so re-saving a loaded file keeps its header even
  /// after mutations; interior comments are still discarded by the lexer.
  static Result<Database> FromText(std::string_view text);
  /// Serializes header_comments() (one `# ` line each, then a blank line)
  /// followed by every relation; FromText round-trips.
  std::string ToText() const;
  /// Like ToText(), but with an explicit header overriding
  /// header_comments() (entries must be single lines) -- used by the
  /// fuzzer's repro dumps.
  std::string ToText(const std::vector<std::string>& header_comments) const;

  /// File-level comment lines (without the leading "# ").  Carried across
  /// mutations; not part of catalog equality or version().
  const std::vector<std::string>& header_comments() const {
    return header_comments_;
  }
  void set_header_comments(std::vector<std::string> comments) {
    header_comments_ = std::move(comments);
  }

 private:
  std::map<std::string, GeneralizedRelation> relations_;
  std::vector<std::string> header_comments_;
  std::uint64_t version_ = 0;
};

}  // namespace itdb

#endif  // ITDB_STORAGE_DATABASE_H_
