#include "storage/lexer.h"

#include <cctype>

namespace itdb {

namespace {

const std::string_view kSymbols[] = {
    // Multi-character symbols first: longest match wins.
    "&&", "||", "->", "!=", "<=", ">=", "(", ")", "{", "}", "[",
    "]",  ",",  ":",  ";",  ".",  "&",  "|", "!", "=", "<", ">", "+", "-",
};

std::string DescribePosition(std::string_view text, std::size_t offset) {
  LineCol lc = LineColAt(text, offset);
  return std::to_string(lc.line) + ":" + std::to_string(lc.col) +
         " (offset " + std::to_string(offset) + ")";
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // Line comment.
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      out.push_back(Token{TokenKind::kIdent,
                          std::string(text.substr(start, i - start)), 0,
                          start, i - start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      std::int64_t value = 0;
      bool overflow = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
        std::int64_t digit = text[i] - '0';
        if (value > (INT64_MAX - digit) / 10) overflow = true;
        if (!overflow) value = value * 10 + digit;
        ++i;
      }
      if (overflow) {
        return Status::ParseError("integer literal overflows int64 at " +
                                  DescribePosition(text, start));
      }
      // A digit run immediately followed by an identifier character is an
      // lrp like "10n": emit the int, the ident lexes next.
      out.push_back(Token{TokenKind::kInt, std::string(), value, start,
                          i - start});
      continue;
    }
    if (c == '"') {
      std::size_t start = i++;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n) {
          body += text[i + 1];
          i += 2;
          continue;
        }
        if (text[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        body += text[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string at " +
                                  DescribePosition(text, start));
      }
      out.push_back(Token{TokenKind::kString, std::move(body), 0, start,
                          i - start});
      continue;
    }
    bool matched = false;
    for (std::string_view symbol : kSymbols) {
      if (text.substr(i, symbol.size()) == symbol) {
        out.push_back(Token{TokenKind::kSymbol, std::string(symbol), 0, i,
                            symbol.size()});
        i += symbol.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at " + DescribePosition(text, i));
    }
  }
  out.push_back(Token{TokenKind::kEnd, "", 0, n, 0});
  // Fill in line:col in one pass: tokens are in increasing offset order.
  {
    int line = 1;
    int col = 1;
    std::size_t pos = 0;
    for (Token& t : out) {
      while (pos < t.offset && pos < n) {
        if (text[pos] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
        ++pos;
      }
      t.line = line;
      t.col = col;
    }
  }
  return out;
}

const Token& TokenStream::Peek(int lookahead) const {
  std::size_t idx = pos_ + static_cast<std::size_t>(lookahead);
  if (idx >= tokens_.size()) return tokens_.back();  // kEnd sentinel.
  return tokens_[idx];
}

Token TokenStream::Next() {
  Token t = Peek();
  if (pos_ < tokens_.size() - 1) ++pos_;
  return t;
}

const Token& TokenStream::LastConsumed() const {
  if (pos_ == 0) return tokens_.back();  // kEnd sentinel.
  return tokens_[pos_ - 1];
}

bool TokenStream::TrySymbol(std::string_view symbol) {
  if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
    Next();
    return true;
  }
  return false;
}

bool TokenStream::TryIdent(std::string_view ident) {
  if (Peek().kind == TokenKind::kIdent && Peek().text == ident) {
    Next();
    return true;
  }
  return false;
}

Status TokenStream::ExpectSymbol(std::string_view symbol) {
  if (!TrySymbol(symbol)) {
    return ErrorHere("expected '" + std::string(symbol) + "'");
  }
  return Status::Ok();
}

Result<std::string> TokenStream::ExpectIdent() {
  if (Peek().kind != TokenKind::kIdent) {
    return ErrorHere("expected identifier");
  }
  return Next().text;
}

Result<std::int64_t> TokenStream::ExpectInt() {
  bool negative = TrySymbol("-");
  if (Peek().kind != TokenKind::kInt) {
    return ErrorHere("expected integer");
  }
  std::int64_t v = Next().int_value;
  return negative ? -v : v;
}

Status TokenStream::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  std::string got = t.kind == TokenKind::kEnd ? "end of input"
                    : t.kind == TokenKind::kInt
                        ? std::to_string(t.int_value)
                        : "'" + t.text + "'";
  return Status::ParseError(message + ", got " + got + " at " +
                            std::to_string(t.line) + ":" +
                            std::to_string(t.col) + " (offset " +
                            std::to_string(t.offset) + ")");
}

}  // namespace itdb
