// Textual format for generalized relations, mirroring the paper's tables.
//
// Example (Table 1 of the paper):
//
//   relation Perform(From: time, To: time, Robot: string) {
//     [2+2n, 4+2n | "robot1"] : From = To - 2 && From >= -1;
//     [6+10n, 7+10n | "robot2"] : From = To - 1 && From >= 10;
//     [10n, 3+10n | "robot2"] : From = To - 3;
//   }
//
// Grammar (informal):
//   file       := relation*
//   relation   := "relation" NAME "(" attr ("," attr)* ")" "{" tuple* "}"
//   attr       := NAME ":" ("time" | "int" | "string")
//   tuple      := "[" lrp ("," lrp)* ("|" value ("," value)*)? "]"
//                 (":" conj)? ";"
//   lrp        := INT | INT VAR | INT ("+"|"-") INT VAR | VAR
//                 (VAR is any identifier starting with 'n'; "10n" = 0+10n,
//                  "n" = 0+1n)
//   conj       := atom ("&&" atom)*
//   atom       := operand OP operand        OP in { <=, >=, =, <, > }
//   operand    := INT | COL | COL ("+"|"-") INT
//   COL        := a temporal attribute name, or X1..Xk (1-based, paper
//                 style), or T1..Tk
//   value      := INT | STRING
//
// Constraints must be "restricted" in the paper's sense: at most one
// temporal attribute on each side, unit coefficients.

#ifndef ITDB_STORAGE_TEXT_FORMAT_H_
#define ITDB_STORAGE_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "core/relation.h"
#include "storage/lexer.h"
#include "util/status.h"

namespace itdb {

/// A parsed named relation.
struct NamedRelation {
  std::string name;
  GeneralizedRelation relation;
};

namespace internal_text_format {
/// Parses one `relation ... { ... }` block from an open token stream
/// (shared with the multi-relation database parser).
Result<NamedRelation> ParseRelationBlock(TokenStream& ts);
}  // namespace internal_text_format

/// Parses a single `relation ... { ... }` block.
Result<NamedRelation> ParseRelation(std::string_view text);

/// Serializes a relation in the same format (ParseRelation round-trips).
std::string PrintRelation(const std::string& name,
                          const GeneralizedRelation& relation);

}  // namespace itdb

#endif  // ITDB_STORAGE_TEXT_FORMAT_H_
