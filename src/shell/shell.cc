#include "shell/shell.h"

#include <istream>
#include <ostream>
#include <string>

#include "server/session.h"
#include "server/shared_database.h"
#include "storage/wal/storage_engine.h"

namespace itdb {

Status RunShell(std::istream& in, std::ostream& out, Database& db,
                const ShellOptions& options) {
  server::SharedDatabase shared(&db, options.session.engine != nullptr
                                         ? options.session.engine->version()
                                         : 0);
  server::Session session(&shared, options.session);
  using Disposition = server::Session::FeedResult::Disposition;
  std::string line;
  while (true) {
    // No prompt on continuation lines: the statement is still being typed.
    if (options.prompt && !session.has_pending()) {
      out << "itdb> " << std::flush;
    }
    if (!std::getline(in, line)) break;
    server::Session::FeedResult fed = session.Feed(line, out);
    if (fed.disposition == Disposition::kQuit) return Status::Ok();
    if (fed.disposition == Disposition::kDone && !fed.status.ok() &&
        options.stop_on_error) {
      return fed.status;
    }
  }
  // EOF (Ctrl-D, dropped pipe) mid-statement: abandon the half-assembled
  // define without touching the catalog, reporting it exactly as the old
  // inline CompleteBlock loop did.
  if (session.has_pending()) {
    session.AbortPending();
    Status status = Status::ParseError("unbalanced braces in definition");
    out << "error: " << status << "\n";
    if (options.stop_on_error) return status;
  }
  return Status::Ok();
}

}  // namespace itdb
