#include "shell/shell.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "core/algebra.h"
#include "core/coalesce.h"
#include "core/simplify.h"
#include "obs/metrics.h"
#include "util/diagnostic.h"
#include "query/eval.h"
#include "query/optimize.h"
#include "query/parser.h"
#include "storage/text_format.h"
#include "tl/ltl.h"
#include "tl/parser.h"

namespace itdb {

namespace {

constexpr const char* kHelp = R"(commands:
  help                          this text
  load <path>                   parse relation blocks from a file
  define relation N(...) {...}  inline definition (may span lines)
  list                          relation names
  show <name>                   print a relation
  enumerate <name> <lo> <hi>    concrete rows with coordinates in [lo, hi]
  ask <query>                   yes/no first-order query
  query <query>                 open query; prints the result relation
  explain <query>               print the (optimized) query-plan tree
  profile <query>               evaluate with tracing; prints per-plan-node
                                wall/CPU time, tuple counts, and kernel stats
  metrics                       dump the process-global metrics registry
  check <query>                 static analysis only: sort errors, unsafe
                                variables, provably empty subqueries, cost
                                warnings -- with source-span diagnostics
  tlcheck <tl-formula>          does the temporal-logic formula hold at
                                every instant?  (e.g. G(req -> F[0,5](ack)))
  sat <tl-formula>              instants satisfying the formula
  coalesce <name>               merge residue families in place
  simplify <name>               drop empty and subsumed tuples in place
  witness <name>                print one concrete row, if any
  save <path>                   write the catalog to a file
  drop <name>                   remove a relation
  quit | exit                   leave
)";

// First whitespace-delimited word; `rest` receives the remainder trimmed.
std::string SplitCommand(const std::string& line, std::string* rest) {
  std::size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos) {
    rest->clear();
    return "";
  }
  std::size_t end = line.find_first_of(" \t", start);
  std::string head = line.substr(start, end - start);
  if (end == std::string::npos) {
    rest->clear();
  } else {
    std::size_t rstart = line.find_first_not_of(" \t", end);
    *rest = rstart == std::string::npos ? "" : line.substr(rstart);
  }
  return head;
}

Status CmdLoad(Database& db, const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open \"" + path + "\"");
  std::stringstream buffer;
  buffer << file.rdbuf();
  ITDB_ASSIGN_OR_RETURN(Database loaded, Database::FromText(buffer.str()));
  for (const std::string& name : loaded.Names()) {
    ITDB_RETURN_IF_ERROR(db.Add(name, loaded.Get(name).value()));
  }
  return Status::Ok();
}

Status CmdSave(const Database& db, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::InvalidArgument("cannot write \"" + path + "\"");
  file << db.ToText();
  return Status::Ok();
}

Status CmdShow(std::ostream& out, const Database& db,
               const std::string& name) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
  out << PrintRelation(name, rel);
  return Status::Ok();
}

Status CmdEnumerate(std::ostream& out, const Database& db,
                    const std::string& args) {
  std::istringstream in(args);
  std::string name;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  if (!(in >> name >> lo >> hi)) {
    return Status::InvalidArgument("usage: enumerate <name> <lo> <hi>");
  }
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
  std::vector<ConcreteRow> rows = rel.Enumerate(lo, hi);
  for (const ConcreteRow& row : rows) {
    out << "  " << row.ToString() << "\n";
  }
  out << rows.size() << " row(s)\n";
  return Status::Ok();
}

Status CmdAsk(std::ostream& out, const Database& db, const std::string& text) {
  ITDB_ASSIGN_OR_RETURN(bool truth, query::EvalBooleanQueryString(db, text));
  out << (truth ? "true" : "false") << "\n";
  return Status::Ok();
}

Status CmdQuery(std::ostream& out, const Database& db,
                const std::string& text) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel,
                        query::EvalQueryString(db, text));
  out << PrintRelation("result", rel);
  out << rel.size() << " generalized tuple(s)\n";
  return Status::Ok();
}

// Static analysis of a first-order query: rustc-style caret diagnostics,
// then a one-line summary.  Findings go to `out` as ordinary output; the
// command itself only fails on I/O-level problems, so scripted `check`
// runs (tools/check_queries.py) can assert on the printed codes.
Status CmdCheckQuery(std::ostream& out, const Database& db,
                     const std::string& text) {
  Result<query::QueryPtr> q = query::ParseQuery(text);
  if (!q.ok()) {
    out << "error[parse]: " << q.status().message() << "\n";
    out << "check: 1 error(s), 0 warning(s)\n";
    return Status::Ok();
  }
  analysis::AnalysisResult result = analysis::Analyze(db, q.value());
  out << FormatDiagnostics(text, result.diagnostics);
  if (result.root_proven_empty) {
    out << "note: the query result is statically empty\n";
  }
  if (result.diagnostics.empty()) {
    out << "check: ok\n";
  } else {
    out << "check: " << result.errors() << " error(s), " << result.warnings()
        << " warning(s)\n";
  }
  return Status::Ok();
}

Status CmdCheckTl(std::ostream& out, const Database& db,
                  const std::string& text) {
  ITDB_ASSIGN_OR_RETURN(tl::TlPtr formula, tl::ParseTlFormula(text));
  ITDB_ASSIGN_OR_RETURN(bool holds, tl::HoldsEverywhere(db, formula));
  if (holds) {
    out << "PASS: holds at every instant\n";
    return Status::Ok();
  }
  ITDB_ASSIGN_OR_RETURN(
      GeneralizedRelation sat,
      tl::SatisfactionSet(db, tl::TlFormula::Not(formula)));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation packed, CoalesceResidues(sat));
  out << "FAIL: violated on\n" << PrintRelation("violations", packed);
  return Status::Ok();
}

Status CmdSat(std::ostream& out, const Database& db, const std::string& text) {
  ITDB_ASSIGN_OR_RETURN(tl::TlPtr formula, tl::ParseTlFormula(text));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation sat,
                        tl::SatisfactionSet(db, formula));
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation packed, CoalesceResidues(sat));
  out << PrintRelation("sat", packed);
  out << packed.size() << " generalized tuple(s)\n";
  return Status::Ok();
}

Status CmdCoalesce(std::ostream& out, Database& db, const std::string& name) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
  std::int64_t before = rel.size();
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation packed, CoalesceResidues(rel));
  out << before << " -> " << packed.size() << " tuple(s)\n";
  db.Put(name, std::move(packed));
  return Status::Ok();
}

Status CmdSimplify(std::ostream& out, Database& db, const std::string& name) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
  std::int64_t before = rel.size();
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation simplified, Simplify(rel));
  out << before << " -> " << simplified.size() << " tuple(s)\n";
  db.Put(name, std::move(simplified));
  return Status::Ok();
}

Status CmdWitness(std::ostream& out, const Database& db,
                  const std::string& name) {
  ITDB_ASSIGN_OR_RETURN(GeneralizedRelation rel, db.Get(name));
  ITDB_ASSIGN_OR_RETURN(std::optional<ConcreteRow> row, FindWitness(rel));
  if (row.has_value()) {
    out << row->ToString() << "\n";
  } else {
    out << "empty relation\n";
  }
  return Status::Ok();
}

Status CmdExplain(std::ostream& out, const Database& db,
                  const std::string& text) {
  (void)db;
  ITDB_ASSIGN_OR_RETURN(query::QueryPtr q, query::ParseQuery(text));
  out << "query:     " << q->ToString() << "\n";
  query::QueryPtr optimized = query::Optimize(q);
  out << "optimized: " << optimized->ToString() << "\n";
  out << "plan:\n" << query::FormatQueryPlan(optimized);
  return Status::Ok();
}

Status CmdProfile(std::ostream& out, const Database& db,
                  const std::string& text) {
  ITDB_ASSIGN_OR_RETURN(query::ProfiledResult profiled,
                        query::EvalQueryStringProfiled(db, text));
  out << profiled.profile.ToText();
  out << profiled.relation.size() << " generalized tuple(s)\n";
  return Status::Ok();
}

void CmdMetrics(std::ostream& out) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::PublishThreadPoolMetrics(registry);
  obs::PublishArenaMetrics(registry);
  out << registry.snapshot().ToText();
}

// Reads additional lines until braces balance (for multi-line `define`).
Status CompleteBlock(std::istream& in, std::string& text) {
  auto balance = [](const std::string& s) {
    int open = 0;
    for (char c : s) {
      if (c == '{') ++open;
      if (c == '}') --open;
    }
    return open;
  };
  int open = balance(text);
  std::string line;
  while (open > 0 && std::getline(in, line)) {
    text += "\n" + line;
    open = balance(text);
  }
  if (open != 0) {
    return Status::ParseError("unbalanced braces in definition");
  }
  return Status::Ok();
}

Status CmdDefine(std::istream& in, Database& db, std::string text) {
  ITDB_RETURN_IF_ERROR(CompleteBlock(in, text));
  ITDB_ASSIGN_OR_RETURN(NamedRelation named, ParseRelation(text));
  return db.Add(named.name, std::move(named.relation));
}

}  // namespace

Status RunShell(std::istream& in, std::ostream& out, Database& db,
                const ShellOptions& options) {
  std::string line;
  while (true) {
    if (options.prompt) out << "itdb> " << std::flush;
    if (!std::getline(in, line)) break;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::string rest;
    std::string cmd = SplitCommand(line, &rest);
    if (cmd.empty()) continue;
    Status status;
    if (cmd == "help") {
      out << kHelp;
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "load") {
      status = CmdLoad(db, rest);
    } else if (cmd == "save") {
      status = CmdSave(db, rest);
    } else if (cmd == "list") {
      for (const std::string& name : db.Names()) out << name << "\n";
    } else if (cmd == "show") {
      status = CmdShow(out, db, rest);
    } else if (cmd == "enumerate") {
      status = CmdEnumerate(out, db, rest);
    } else if (cmd == "ask") {
      status = CmdAsk(out, db, rest);
    } else if (cmd == "query") {
      status = CmdQuery(out, db, rest);
    } else if (cmd == "explain" || cmd == "EXPLAIN") {
      status = CmdExplain(out, db, rest);
    } else if (cmd == "profile" || cmd == "PROFILE") {
      status = CmdProfile(out, db, rest);
    } else if (cmd == "metrics") {
      CmdMetrics(out);
    } else if (cmd == "check") {
      status = CmdCheckQuery(out, db, rest);
    } else if (cmd == "tlcheck") {
      status = CmdCheckTl(out, db, rest);
    } else if (cmd == "sat") {
      status = CmdSat(out, db, rest);
    } else if (cmd == "coalesce") {
      status = CmdCoalesce(out, db, rest);
    } else if (cmd == "simplify") {
      status = CmdSimplify(out, db, rest);
    } else if (cmd == "witness") {
      status = CmdWitness(out, db, rest);
    } else if (cmd == "drop") {
      status = db.Remove(rest);
    } else if (cmd == "define") {
      status = CmdDefine(in, db, rest);
    } else {
      status = Status::InvalidArgument("unknown command \"" + cmd +
                                       "\" (try: help)");
    }
    if (!status.ok()) {
      out << "error: " << status << "\n";
      if (options.stop_on_error) return status;
    }
  }
  return Status::Ok();
}

}  // namespace itdb
