// The itdb shell: a small line-oriented interface over a Database.
//
// Commands (one per line; '#' starts a comment):
//   help                         list commands
//   load <path>                  parse relation blocks from a file
//   define relation N(...) {...} inline definition (may span lines)
//   list                         relation names
//   show <name>                  print a relation in the text format
//   enumerate <name> <lo> <hi>   concrete rows in a window
//   ask <query>                  yes/no first-order query
//   query <query>                open query; prints the result relation
//   save <path>                  write the whole catalog to a file
//   drop <name>                  remove a relation
//   quit / exit                  leave
//
// The command loop lives in a library (RunShell) so it can be unit tested;
// tools/itdb_shell.cc wraps it for interactive use.

#ifndef ITDB_SHELL_SHELL_H_
#define ITDB_SHELL_SHELL_H_

#include <iosfwd>

#include "storage/database.h"
#include "util/status.h"

namespace itdb {

struct ShellOptions {
  /// Print a prompt before each command (interactive sessions).
  bool prompt = false;
  /// Stop at the first failing command instead of reporting and continuing.
  bool stop_on_error = false;
};

/// Runs the command loop until EOF or quit.  Command output and error
/// reports go to `out`.  Returns non-OK only for stop_on_error failures.
Status RunShell(std::istream& in, std::ostream& out, Database& db,
                const ShellOptions& options = {});

}  // namespace itdb

#endif  // ITDB_SHELL_SHELL_H_
