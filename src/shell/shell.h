// The itdb shell: a small line-oriented interface over a Database.
//
// The shell is a thin client of server::Session -- the same object the
// socket server (src/server/server.h) creates per connection -- so the
// interactive grammar and the wire grammar are one code path: commands
// (help lists them), multi-line `define` assembly, '#' comments, and error
// reporting behave identically whether typed at the prompt or sent by
// tools/itdb_client.py.
//
// The command loop lives in a library (RunShell) so it can be unit tested;
// tools/itdb_shell.cc wraps it for interactive use.

#ifndef ITDB_SHELL_SHELL_H_
#define ITDB_SHELL_SHELL_H_

#include <iosfwd>

#include "server/session.h"
#include "storage/database.h"
#include "util/status.h"

namespace itdb {

struct ShellOptions {
  /// Print a prompt before each statement (interactive sessions).
  bool prompt = false;
  /// Stop at the first failing command instead of reporting and continuing.
  bool stop_on_error = false;
  /// Session configuration (evaluation options, deadline, read_only, ...).
  server::SessionOptions session;
};

/// Runs the command loop until EOF or quit.  Command output and error
/// reports go to `out`.  Returns non-OK only for stop_on_error failures;
/// EOF in the middle of a multi-line statement abandons it cleanly (the
/// database is untouched) and reports a parse error.
Status RunShell(std::istream& in, std::ostream& out, Database& db,
                const ShellOptions& options = {});

}  // namespace itdb

#endif  // ITDB_SHELL_SHELL_H_
