#include "util/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <string>

namespace itdb {

namespace {

/// True while the current thread is executing a ParallelFor range; nested
/// parallel regions then run inline instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

/// The innermost installed cancellation token (see CancellationScope).
thread_local const CancellationToken* t_cancellation_token = nullptr;

/// Shared state of one ParallelFor invocation.  Helpers and the caller pull
/// chunks off `next` until exhausted; the caller waits for `completed == n`,
/// so `body` outlives every invocation.
struct ParallelForState {
  std::atomic<std::int64_t> next{0};
  std::int64_t n = 0;
  std::int64_t chunk = 1;
  const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
  /// The submitting thread's token, forwarded to every helper so kernel
  /// bodies observe it through CurrentCancellationToken().
  const CancellationToken* token = nullptr;

  std::mutex mu;
  std::condition_variable done_cv;
  std::int64_t completed = 0;
};

void RunChunks(const std::shared_ptr<ParallelForState>& state) {
  bool saved = t_in_parallel_region;
  t_in_parallel_region = true;
  CancellationScope cancellation(state->token);
  while (true) {
    std::int64_t begin = state->next.fetch_add(state->chunk);
    if (begin >= state->n) break;
    std::int64_t end = begin + state->chunk;
    if (end > state->n) end = state->n;
    // Cooperative deadline check: once the token expires, remaining chunks
    // complete without running the body (the region's result is then
    // partial; ParallelAppend and friends turn that into a Status).
    if (state->token == nullptr || !state->token->Expired()) {
      (*state->body)(begin, end);
    }
    std::lock_guard<std::mutex> lock(state->mu);
    state->completed += end - begin;
    if (state->completed == state->n) state->done_cv.notify_all();
  }
  t_in_parallel_region = saved;
}

}  // namespace

CancellationScope::CancellationScope(const CancellationToken* token)
    : saved_(t_cancellation_token) {
  t_cancellation_token = token;
}

CancellationScope::~CancellationScope() { t_cancellation_token = saved_; }

const CancellationToken* CurrentCancellationToken() {
  return t_cancellation_token;
}

Status CheckCancellation() {
  const CancellationToken* token = t_cancellation_token;
  if (token == nullptr || !token->Expired()) return Status::Ok();
  return Status::ResourceExhausted(token->cancelled() ? "cancelled"
                                                      : "deadline exceeded");
}

ThreadPool::ThreadPool(int num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::EnsureWorkers(int count) {
  if (count > kMaxWorkers) count = kMaxWorkers;
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++tasks_submitted_;
    const auto depth = static_cast<std::int64_t>(queue_.size());
    if (depth > queue_depth_max_) queue_depth_max_ = depth;
  }
  cv_.notify_one();
}

ThreadPool::PoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats out;
  out.tasks_submitted = tasks_submitted_;
  out.queue_depth_max = queue_depth_max_;
  out.workers = static_cast<int>(workers_.size());
  return out;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("ITDB_THREADS")) {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 1) {
      return parsed > kMaxWorkers ? kMaxWorkers : static_cast<int>(parsed);
    }
  }
  // hardware_concurrency() re-reads /sys on every call (~2us); the machine's
  // core count cannot change mid-process, so resolve it once.  ITDB_THREADS
  // above stays dynamic (tests set it mid-process).
  static const int hw = [] {
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }();
  return hw;
}

int ResolveThreads(int threads) {
  if (threads <= 0) return ThreadPool::DefaultThreads();
  return threads > ThreadPool::kMaxWorkers ? ThreadPool::kMaxWorkers : threads;
}

void ParallelFor(std::int64_t n, const ParallelOptions& options,
                 const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (n <= 0) return;
  const int threads = ResolveThreads(options.threads);
  const std::int64_t grain = options.grain < 1 ? 1 : options.grain;
  if (threads <= 1 || n <= grain || t_in_parallel_region) {
    // Same contract as the parallel path: an expired token skips the body.
    if (t_cancellation_token == nullptr || !t_cancellation_token->Expired()) {
      body(0, n);
    }
    return;
  }
  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->body = &body;
  state->token = t_cancellation_token;
  // ~4 chunks per thread balances load without much contention on `next`.
  std::int64_t chunk = n / (static_cast<std::int64_t>(threads) * 4);
  state->chunk = chunk < grain ? grain : chunk;
  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(threads - 1);
  for (int h = 0; h < threads - 1; ++h) {
    pool.Submit([state] { RunChunks(state); });
  }
  RunChunks(state);  // The caller participates: progress is guaranteed.
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->completed == state->n; });
}

}  // namespace itdb
