// Thread-safe errno formatting.
//
// std::strerror returns a pointer into a static buffer, so two threads
// formatting I/O errors at once can interleave messages (clang-tidy's
// concurrency-mt-unsafe).  The server formats errors from pool threads and
// the storage layer is used under it, so both route through strerror_r
// here instead.

#ifndef ITDB_UTIL_ERRNO_MESSAGE_H_
#define ITDB_UTIL_ERRNO_MESSAGE_H_

#include <string>

namespace itdb {

/// The system's message for `err` (an errno value), e.g. "No such file or
/// directory".  Safe to call from any thread.
std::string ErrnoMessage(int err);

}  // namespace itdb

#endif  // ITDB_UTIL_ERRNO_MESSAGE_H_
