// Status / Result<T> error model for itdb.
//
// The library does not use exceptions (following the style of large C++
// database codebases such as RocksDB and Arrow).  Every fallible operation
// returns a Status, or a Result<T> when it also produces a value.  Statuses
// carry a code and a human-readable message.

#ifndef ITDB_UTIL_STATUS_H_
#define ITDB_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace itdb {

/// Machine-readable classification of a failure.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// A caller-supplied argument is malformed (e.g. a zero-period lrp split,
  /// mismatched schemas, an out-of-range column index).
  kInvalidArgument = 1,
  /// Integer arithmetic would overflow 64-bit intermediate values.
  kOverflow = 2,
  /// A configured resource budget was exceeded (normalization blow-up,
  /// complement universe size, ...).  The computation is well-defined but
  /// would be too large; callers may retry with a larger budget.
  kResourceExhausted = 3,
  /// A lookup failed (e.g. unknown relation or attribute name).
  kNotFound = 4,
  /// Input text could not be parsed.
  kParseError = 5,
  /// The operation is not supported for the given inputs (e.g. algebra on
  /// general -- non-restricted -- constraints).
  kUnimplemented = 6,
};

/// Returns a stable lower-case name for `code` ("ok", "overflow", ...).
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that can fail.  Cheap to copy when OK (no
/// allocation); failure states carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Overflow(std::string msg) {
    return Status(StatusCode::kOverflow, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value of type T or an error Status.  Analogous to absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Constructs a failed result.  `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument("Result constructed from OK status");
    }
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Pre: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace itdb

/// Propagates a non-OK Status from an expression to the caller.
#define ITDB_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::itdb::Status _itdb_status = (expr);     \
    if (!_itdb_status.ok()) return _itdb_status; \
  } while (false)

/// Evaluates a Result<T> expression; on failure returns its Status, on
/// success assigns the value to `lhs` (which may be a declaration).
#define ITDB_ASSIGN_OR_RETURN(lhs, expr)                      \
  ITDB_ASSIGN_OR_RETURN_IMPL_(                                \
      ITDB_STATUS_CONCAT_(_itdb_result, __LINE__), lhs, expr)

#define ITDB_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()

#define ITDB_STATUS_CONCAT_INNER_(a, b) a##b
#define ITDB_STATUS_CONCAT_(a, b) ITDB_STATUS_CONCAT_INNER_(a, b)

#endif  // ITDB_UTIL_STATUS_H_
