#include "util/status.h"

namespace itdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kOverflow:
      return "overflow";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kUnimplemented:
      return "unimplemented";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace itdb
