// Checked 64-bit integer arithmetic and elementary number theory.
//
// The lrp algorithms of the paper (Section 3.2.1) reduce to gcd / lcm /
// extended-Euclid computations; periods can be multiplied together during
// normalization (Appendix A.1), so all products and lcms are overflow-checked
// via 128-bit intermediates and surface failures as Status.

#ifndef ITDB_UTIL_NUMERIC_H_
#define ITDB_UTIL_NUMERIC_H_

#include <cstdint>

#include "util/status.h"

namespace itdb {

/// Floored division: the unique q with a = q*b + r and 0 <= r < |b|.
/// Pre: b != 0.  (C++ `/` truncates toward zero, which is wrong for the
/// residue computations on negative offsets used throughout the lrp code.)
std::int64_t FloorDiv(std::int64_t a, std::int64_t b);

/// Floored modulus: a - FloorDiv(a, b) * b.  The remainder has the sign of
/// the divisor, so for b > 0 (the only case the lrp code uses) it lies in
/// [0, b).  Pre: b != 0.
std::int64_t FloorMod(std::int64_t a, std::int64_t b);

/// Ceiling division.  Pre: b != 0.
std::int64_t CeilDiv(std::int64_t a, std::int64_t b);

/// Non-negative greatest common divisor; Gcd(0, 0) == 0.
std::int64_t Gcd(std::int64_t a, std::int64_t b);

/// Least common multiple of |a| and |b|; fails with kOverflow if it does not
/// fit in int64.  Lcm(0, x) == 0.
Result<std::int64_t> Lcm(std::int64_t a, std::int64_t b);

/// Extended Euclid: returns g = gcd(a, b) (non-negative) and Bezout
/// coefficients with a*x + b*y == g.
struct ExtendedGcd {
  std::int64_t g;
  std::int64_t x;
  std::int64_t y;
};
ExtendedGcd ExtGcd(std::int64_t a, std::int64_t b);

/// Modular inverse of a modulo m (m > 0): the x in [0, m) with
/// a*x === 1 (mod m).  Fails with kInvalidArgument when gcd(a, m) != 1.
Result<std::int64_t> ModInverse(std::int64_t a, std::int64_t m);

/// Checked arithmetic; fail with kOverflow when the result does not fit.
Result<std::int64_t> CheckedAdd(std::int64_t a, std::int64_t b);
Result<std::int64_t> CheckedSub(std::int64_t a, std::int64_t b);
Result<std::int64_t> CheckedMul(std::int64_t a, std::int64_t b);

}  // namespace itdb

#endif  // ITDB_UTIL_NUMERIC_H_
