#include "util/diagnostic.h"

#include <algorithm>

namespace itdb {

namespace {

/// The full source line containing `offset` (no trailing newline).
std::string_view LineContaining(std::string_view source, std::size_t offset) {
  if (offset > source.size()) offset = source.size();
  std::size_t begin = source.rfind('\n', offset == 0 ? 0 : offset - 1);
  begin = begin == std::string_view::npos ? 0 : begin + 1;
  if (offset < begin) begin = offset;  // offset == 0 on a later line.
  std::size_t end = source.find('\n', offset);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(begin, end - begin);
}

}  // namespace

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [](const Diagnostic& d) { return d.severity == Severity::kError; });
}

int CountSeverity(const std::vector<Diagnostic>& diagnostics,
                  Severity severity) {
  return static_cast<int>(std::count_if(
      diagnostics.begin(), diagnostics.end(),
      [severity](const Diagnostic& d) { return d.severity == severity; }));
}

std::string FormatDiagnostic(std::string_view source, const Diagnostic& d) {
  std::string out;
  out += SeverityName(d.severity);
  out += "[" + d.code + "]: " + d.message + "\n";
  if (d.span.known() && !source.empty()) {
    const std::string line_no = std::to_string(d.span.line);
    const std::string gutter(line_no.size(), ' ');
    std::string_view line = LineContaining(source, d.span.begin);
    out += gutter + " --> " + d.span.ToString() + "\n";
    out += gutter + " |\n";
    out += line_no + " | " + std::string(line) + "\n";
    // Caret run: the span clipped to its first line.
    std::size_t width = d.span.end > d.span.begin ? d.span.end - d.span.begin
                                                  : 1;
    std::size_t col = static_cast<std::size_t>(d.span.col);
    std::size_t room = line.size() >= col - 1 ? line.size() - (col - 1) : 1;
    width = std::max<std::size_t>(1, std::min(width, room));
    out += gutter + " | " + std::string(col - 1, ' ') +
           std::string(width, '^') + "\n";
  }
  if (!d.fixit.empty()) {
    out += "  = help: " + d.fixit + "\n";
  }
  return out;
}

std::string FormatDiagnostics(std::string_view source,
                              const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) out += FormatDiagnostic(source, d);
  return out;
}

std::string FormatDiagnosticList(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!out.empty()) out += "\n";
    out += SeverityName(d.severity);
    out += "[" + d.code + "]";
    if (d.span.known()) out += " at " + d.span.ToString();
    out += ": " + d.message;
  }
  return out;
}

}  // namespace itdb
