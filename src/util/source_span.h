// Source locations for diagnostics.
//
// A SourceSpan is a half-open byte range [begin, end) into some source text
// (a query string, a relation file) plus the 1-based line:column of its
// first byte.  Spans are threaded from the lexer through the parsers into
// AST nodes so that static analysis (src/analysis) can point diagnostics at
// the exact token that caused them.  A default-constructed span is
// "unknown" (line 0): programmatically built ASTs have no locations, and
// every consumer must degrade gracefully in that case.

#ifndef ITDB_UTIL_SOURCE_SPAN_H_
#define ITDB_UTIL_SOURCE_SPAN_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace itdb {

struct SourceSpan {
  std::size_t begin = 0;  // Byte offset of the first byte.
  std::size_t end = 0;    // Byte offset one past the last byte.
  int line = 0;           // 1-based; 0 = unknown location.
  int col = 0;            // 1-based column of `begin` on `line`.

  bool known() const { return line > 0; }

  /// Smallest span covering both operands; unknown operands are ignored.
  static SourceSpan Cover(const SourceSpan& a, const SourceSpan& b) {
    if (!a.known()) return b;
    if (!b.known()) return a;
    SourceSpan out = a.begin <= b.begin ? a : b;
    out.end = a.end > b.end ? a.end : b.end;
    return out;
  }

  /// "line:col" (or "?" when unknown), the form error messages print.
  std::string ToString() const {
    if (!known()) return "?";
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

struct LineCol {
  int line = 1;
  int col = 1;
};

/// Line:column (1-based) of byte `offset` in `text`.  Offsets past the end
/// report the position one past the last character.
inline LineCol LineColAt(std::string_view text, std::size_t offset) {
  LineCol lc;
  if (offset > text.size()) offset = text.size();
  for (std::size_t i = 0; i < offset; ++i) {
    if (text[i] == '\n') {
      ++lc.line;
      lc.col = 1;
    } else {
      ++lc.col;
    }
  }
  return lc;
}

}  // namespace itdb

#endif  // ITDB_UTIL_SOURCE_SPAN_H_
