#include "util/errno_message.h"

#include <cstring>

namespace itdb {
namespace {

// GNU strerror_r returns char* (possibly a static immutable string, not
// the buffer); the XSI variant returns int and always fills the buffer.
// Overloading on the actual return type picks the right handling without
// depending on feature-test macro state.
[[maybe_unused]] std::string TakeMessage(const char* result,
                                         const char* /*buffer*/, int err) {
  if (result == nullptr) return "unknown error " + std::to_string(err);
  return result;
}

[[maybe_unused]] std::string TakeMessage(int result, const char* buffer,
                                         int err) {
  if (result != 0) return "unknown error " + std::to_string(err);
  return buffer;
}

}  // namespace

std::string ErrnoMessage(int err) {
  char buffer[256] = {};
  return TakeMessage(strerror_r(err, buffer, sizeof(buffer)), buffer, err);
}

}  // namespace itdb
