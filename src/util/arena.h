// Bump-pointer arena allocation for kernel scratch memory.
//
// The batched algebra kernels (dbm_batch, columnar relations, the normalize
// feasibility sweep) work on short-lived slabs -- thousands of small
// matrices allocated together, used for one chunk of work, and discarded
// together.  malloc/free per slab is both slow and fragmenting; an arena
// turns the whole lifetime into two pointer bumps: Allocate is a pointer
// add, Reset rewinds to the start while KEEPING the chunks, so steady-state
// kernels allocate and free in O(1) with zero syscalls.
//
// Layering: util sits below obs, so the arena cannot push metrics.  It
// maintains process-wide relaxed atomics (Arena::GlobalStats) that the obs
// layer bridges into the MetricsRegistry, the same pull pattern as the
// thread pool's gauges.
//
// Arenas are NOT thread-safe.  Parallel kernels use one scratch arena per
// worker thread (Arena::ThreadLocalScratch) and reset it between morsels;
// scratch memory never escapes the chunk that allocated it, so determinism
// is untouched.

#ifndef ITDB_UTIL_ARENA_H_
#define ITDB_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace itdb {

/// A chunked bump allocator.  Memory is carved from geometrically growing
/// chunks; requests larger than half a chunk get their own dedicated block
/// (the "large allocation fallback") so one oversized slab cannot poison
/// the chunk size.  Reset() rewinds every chunk for reuse and frees the
/// dedicated blocks.
class Arena {
 public:
  /// Size of the first chunk; subsequent chunks double up to kMaxChunkBytes.
  static constexpr std::size_t kMinChunkBytes = std::size_t{16} << 10;
  static constexpr std::size_t kMaxChunkBytes = std::size_t{4} << 20;

  Arena() = default;
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `size` bytes aligned to `align` (a power of two <= alignof(max_align_t)
  /// for chunk allocations; larger alignments take the dedicated-block
  /// path).  size == 0 returns a valid unique pointer.  Never null.
  void* Allocate(std::size_t size,
                 std::size_t align = alignof(std::max_align_t));

  /// An uninitialized array of `count` Ts.  T must be trivially destructible
  /// (the arena never runs destructors).
  template <typename T>
  T* AllocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds every chunk (kept for reuse) and releases dedicated blocks.
  /// All previously returned pointers become invalid.
  void Reset();

  /// Per-arena accounting since construction / the last Reset().
  struct Stats {
    std::int64_t bytes_allocated = 0;  // Sum of Allocate() request sizes.
    std::int64_t allocations = 0;      // Number of Allocate() calls.
    std::int64_t bytes_reserved = 0;   // Chunk + dedicated block capacity.
    std::int64_t chunks = 0;           // Live chunks (kept across Reset).
    std::int64_t large_blocks = 0;     // Dedicated blocks (freed on Reset).
  };
  Stats stats() const { return stats_; }

  /// Process-wide totals across every arena, updated with relaxed atomics:
  /// cumulative allocated bytes / allocation count / chunk-reserve bytes and
  /// resets.  The obs layer publishes these into the metrics registry.
  struct GlobalStats {
    std::int64_t bytes_allocated = 0;
    std::int64_t allocations = 0;
    std::int64_t bytes_reserved = 0;
    std::int64_t resets = 0;
  };
  static GlobalStats TotalStats();

  /// A per-thread scratch arena for morsel-local slabs.  Callers must reset
  /// (via ArenaScope) around each use; memory must not escape the chunk of
  /// work that allocated it.
  static Arena& ThreadLocalScratch();

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
  };

  void* AllocateSlow(std::size_t size, std::size_t align);

  std::vector<Chunk> chunks_;
  std::vector<std::unique_ptr<std::byte[]>> large_blocks_;
  std::size_t current_ = 0;  // Chunk being bumped (chunks_ index).
  std::byte* ptr_ = nullptr;
  std::byte* end_ = nullptr;
  Stats stats_;
};

/// RAII reset-to-empty for a scratch arena: resets on construction so the
/// protected region starts from a clean slab, and again on destruction so
/// peak reserved memory is bounded by one region's worth.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena) { arena_.Reset(); }
  ~ArenaScope() { arena_.Reset(); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
};

}  // namespace itdb

#endif  // ITDB_UTIL_ARENA_H_
