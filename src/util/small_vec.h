// A fixed-capacity-inline vector for trivially copyable elements.
//
// The DBM of a typical generalized tuple is tiny -- temporal arity 2 or 3
// means a 3x3 or 4x4 bound matrix -- yet std::vector puts every one of them
// on the heap, so copying a tuple (the single most common operation in the
// algebra kernels) pays a malloc/free pair per matrix.  SmallVec keeps up
// to N elements inline and only falls back to the heap beyond that,
// turning small-matrix copies into plain memcpys.
//
// Deliberately minimal: exactly the operations Dbm's storage needs (sized
// assign, indexing, equality, copy/move).  Moving an inline SmallVec copies
// the elements and leaves the source intact; moving a heap-backed one
// steals the buffer and leaves the source empty.  Both end states are
// valid, which is strictly tamer than std::vector's moved-from contract.

#ifndef ITDB_UTIL_SMALL_VEC_H_
#define ITDB_UTIL_SMALL_VEC_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>

namespace itdb {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec supports trivially copyable elements only");

 public:
  SmallVec() = default;

  SmallVec(const SmallVec& other) { CopyFrom(other); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept { MoveFrom(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }

  /// Discards the contents and refills with `count` copies of `value`.
  void assign(std::size_t count, const T& value) {
    Reserve(count);
    size_ = count;
    T* d = data();
    for (std::size_t i = 0; i < count; ++i) d[i] = value;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* data() { return heap_ ? heap_.get() : inline_; }
  const T* data() const { return heap_ ? heap_.get() : inline_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    const T* pa = a.data();
    const T* pb = b.data();
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(pa[i] == pb[i])) return false;
    }
    return true;
  }

 private:
  void Reserve(std::size_t count) {
    if (count <= N) {
      heap_.reset();
    } else if (!heap_ || capacity_ < count) {
      heap_ = std::make_unique<T[]>(count);
      capacity_ = count;
    }
  }

  void CopyFrom(const SmallVec& other) {
    Reserve(other.size_);
    size_ = other.size_;
    std::memcpy(data(), other.data(), size_ * sizeof(T));
  }

  void MoveFrom(SmallVec& other) {
    if (other.heap_) {
      heap_ = std::move(other.heap_);
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.size_ = 0;
      other.capacity_ = 0;
    } else {
      heap_.reset();
      size_ = other.size_;
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    }
  }

  std::size_t size_ = 0;
  std::size_t capacity_ = 0;  // Heap capacity; inline storage is fixed at N.
  T inline_[N];
  std::unique_ptr<T[]> heap_;
};

}  // namespace itdb

#endif  // ITDB_UTIL_SMALL_VEC_H_
