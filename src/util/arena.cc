#include "util/arena.h"

#include <algorithm>
#include <atomic>

namespace itdb {

namespace {

// Process-wide accounting (relaxed: metrics never guard data).
std::atomic<std::int64_t> g_bytes_allocated{0};
std::atomic<std::int64_t> g_allocations{0};
std::atomic<std::int64_t> g_bytes_reserved{0};
std::atomic<std::int64_t> g_resets{0};

std::size_t AlignUp(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

void* Arena::Allocate(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;  // Keep returned pointers valid and distinct.
  stats_.bytes_allocated += static_cast<std::int64_t>(size);
  ++stats_.allocations;
  g_bytes_allocated.fetch_add(static_cast<std::int64_t>(size),
                              std::memory_order_relaxed);
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (ptr_ != nullptr) {
    std::byte* aligned = reinterpret_cast<std::byte*>(
        AlignUp(reinterpret_cast<std::uintptr_t>(ptr_), align));
    if (aligned + size <= end_) {
      ptr_ = aligned + size;
      return aligned;
    }
  }
  return AllocateSlow(size, align);
}

void* Arena::AllocateSlow(std::size_t size, std::size_t align) {
  // Oversized or over-aligned requests get a dedicated block so they cannot
  // blow up the chunk ladder; freed (not reused) on Reset.
  std::size_t next_capacity =
      chunks_.empty() ? kMinChunkBytes
                      : std::min(kMaxChunkBytes,
                                 chunks_.back().capacity * 2);
  if (size + align > next_capacity / 2 ||
      align > alignof(std::max_align_t)) {
    std::size_t block_size = size + align;
    large_blocks_.push_back(std::make_unique<std::byte[]>(block_size));
    ++stats_.large_blocks;
    stats_.bytes_reserved += static_cast<std::int64_t>(block_size);
    g_bytes_reserved.fetch_add(static_cast<std::int64_t>(block_size),
                               std::memory_order_relaxed);
    return reinterpret_cast<std::byte*>(
        AlignUp(reinterpret_cast<std::uintptr_t>(large_blocks_.back().get()),
                align));
  }
  // Advance through chunks kept by Reset() before growing a new one.
  while (current_ + 1 < chunks_.size()) {
    ++current_;
    Chunk& c = chunks_[current_];
    ptr_ = c.data.get();
    end_ = ptr_ + c.capacity;
    std::byte* aligned = reinterpret_cast<std::byte*>(
        AlignUp(reinterpret_cast<std::uintptr_t>(ptr_), align));
    if (aligned + size <= end_) {
      ptr_ = aligned + size;
      return aligned;
    }
  }
  Chunk chunk;
  chunk.capacity = next_capacity;
  chunk.data = std::make_unique<std::byte[]>(chunk.capacity);
  chunks_.push_back(std::move(chunk));
  ++stats_.chunks;
  stats_.bytes_reserved += static_cast<std::int64_t>(next_capacity);
  g_bytes_reserved.fetch_add(static_cast<std::int64_t>(next_capacity),
                             std::memory_order_relaxed);
  current_ = chunks_.size() - 1;
  ptr_ = chunks_.back().data.get();
  end_ = ptr_ + chunks_.back().capacity;
  std::byte* aligned = reinterpret_cast<std::byte*>(
      AlignUp(reinterpret_cast<std::uintptr_t>(ptr_), align));
  ptr_ = aligned + size;
  return aligned;
}

void Arena::Reset() {
  large_blocks_.clear();
  stats_.large_blocks = 0;
  stats_.bytes_allocated = 0;
  stats_.allocations = 0;
  std::int64_t kept = 0;
  for (const Chunk& c : chunks_) kept += static_cast<std::int64_t>(c.capacity);
  stats_.bytes_reserved = kept;
  current_ = 0;
  if (!chunks_.empty()) {
    ptr_ = chunks_[0].data.get();
    end_ = ptr_ + chunks_[0].capacity;
  } else {
    ptr_ = nullptr;
    end_ = nullptr;
  }
  g_resets.fetch_add(1, std::memory_order_relaxed);
}

Arena::GlobalStats Arena::TotalStats() {
  GlobalStats out;
  out.bytes_allocated = g_bytes_allocated.load(std::memory_order_relaxed);
  out.allocations = g_allocations.load(std::memory_order_relaxed);
  out.bytes_reserved = g_bytes_reserved.load(std::memory_order_relaxed);
  out.resets = g_resets.load(std::memory_order_relaxed);
  return out;
}

Arena& Arena::ThreadLocalScratch() {
  thread_local Arena scratch;
  return scratch;
}

}  // namespace itdb
