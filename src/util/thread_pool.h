// A reusable worker pool and deterministic data-parallel helpers.
//
// The algebra of Section 3 reduces, after normalization, to independent
// per-tuple or per-tuple-pair kernels (feasibility closures, lrp
// intersections, residue enumeration).  These helpers fan such kernels out
// over a process-wide pool while guaranteeing that RESULTS ARE BIT-IDENTICAL
// TO THE SEQUENTIAL LOOP at every thread count:
//
//   * work is partitioned into contiguous index ranges and each range
//     appends to its own output buffer;
//   * buffers are concatenated in range order, which equals input order;
//   * on failure, the error of the smallest failing index is reported
//     (later indices in the same range are skipped, which never hides a
//     smaller-index error).
//
// Thread count resolution: an explicit per-call count wins; 0 falls back to
// the ITDB_THREADS environment variable, then to the hardware concurrency.
// Nested parallel regions run inline on the calling worker (no
// oversubscription, no pool deadlock).

#ifndef ITDB_UTIL_THREAD_POOL_H_
#define ITDB_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.h"

namespace itdb {

/// Cooperative cancellation and deadlines for parallel work.
///
/// A token is armed with a wall-clock deadline (or cancelled outright) and
/// installed on the current thread with a CancellationScope; ParallelFor
/// forwards the submitting thread's token to every worker that helps with
/// the region.  Checks are cooperative: kernels call CheckCancellation() at
/// convenient boundaries, and ParallelFor itself stops fetching chunks once
/// the token has expired.  A region cut short this way has NOT produced its
/// full result -- callers that install a token must treat a non-OK
/// CheckCancellation() after the region as the region's failure.
/// ParallelAppend does exactly that and fails with kResourceExhausted, so
/// Status-propagating pipelines unwind cleanly.
///
/// All members are safe to call from any thread.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Arms the deadline: Expired() becomes true once the steady clock
  /// reaches `deadline`.  Re-arming moves the deadline.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_release);
  }
  /// Arms the deadline `budget` from now.  A non-positive budget expires
  /// immediately.
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }

  /// Expires the token immediately, regardless of any deadline.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Cancelled, or the armed deadline has passed.  The fast path (no
  /// deadline, not cancelled) is two relaxed loads -- no clock read.
  bool Expired() const {
    if (cancelled()) return true;
    if (!has_deadline_.load(std::memory_order_acquire)) return false;
    return std::chrono::steady_clock::now().time_since_epoch().count() >=
           deadline_ns_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<std::int64_t> deadline_ns_{0};
};

/// RAII: installs `token` (which may be null: no cancellation) as the
/// current thread's token for the scope's lifetime, restoring the previous
/// one on exit.  Scopes nest; the innermost wins.
class CancellationScope {
 public:
  explicit CancellationScope(const CancellationToken* token);
  ~CancellationScope();
  CancellationScope(const CancellationScope&) = delete;
  CancellationScope& operator=(const CancellationScope&) = delete;

 private:
  const CancellationToken* saved_;
};

/// The current thread's installed token, or null.
const CancellationToken* CurrentCancellationToken();

/// OK when no token is installed or the installed token has not expired;
/// kResourceExhausted("deadline exceeded" / "cancelled") otherwise.
Status CheckCancellation();

/// A lazily grown, process-wide pool of worker threads.  Tasks must not
/// block on other tasks; ParallelFor keeps the submitting thread working,
/// so progress never depends on a free worker.
class ThreadPool {
 public:
  /// Hard cap on workers (sanity bound for ITDB_THREADS).
  static constexpr int kMaxWorkers = 256;

  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const;

  /// Grows the pool to at least `count` workers (capped at kMaxWorkers).
  void EnsureWorkers(int count);

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Lifetime instrumentation, readable from any thread.  The obs layer
  /// publishes these into the central metrics registry; the pool itself
  /// stays free of higher-layer dependencies.
  struct PoolStats {
    std::int64_t tasks_submitted = 0;
    std::int64_t queue_depth_max = 0;  // High-water mark of pending tasks.
    int workers = 0;
  };
  PoolStats stats() const;

  /// The shared pool.  Created empty; ParallelFor grows it on demand.
  static ThreadPool& Global();

  /// The default parallelism: ITDB_THREADS when set (clamped to
  /// [1, kMaxWorkers]), else std::thread::hardware_concurrency(), at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::int64_t tasks_submitted_ = 0;   // Guarded by mu_.
  std::int64_t queue_depth_max_ = 0;   // Guarded by mu_.
};

/// Per-call parallelism knobs.
struct ParallelOptions {
  /// Worker count; 0 = ThreadPool::DefaultThreads(), 1 = run sequentially.
  int threads = 0;
  /// Minimum indices per range; inputs of at most `grain` run sequentially.
  std::int64_t grain = 1;
};

/// Resolves a requested thread count (0 = default) to a concrete one >= 1.
int ResolveThreads(int threads);

/// Runs body(begin, end) over a partition of [0, n), in parallel when
/// worthwhile.  Ranges are disjoint and cover [0, n); the calling thread
/// participates.  Blocks until every invocation returned.
///
/// Cancellation: the submitting thread's CancellationToken (if any) is
/// forwarded to every helping worker -- CurrentCancellationToken() resolves
/// to it inside `body` -- and once the token expires, remaining chunks are
/// skipped instead of run.  The call still returns normally; a caller that
/// installed a token MUST check CheckCancellation() afterwards and treat
/// failure as "the region did not complete".
void ParallelFor(std::int64_t n, const ParallelOptions& options,
                 const std::function<void(std::int64_t, std::int64_t)>& body);

/// Deterministic parallel map-append: calls fn(i, out) for every i in
/// [0, n) ascending within each range, where fn appends any number of
/// results to `out`; returns all results concatenated IN INPUT-INDEX ORDER,
/// so the output equals the sequential loop's byte for byte regardless of
/// thread count.  On failure returns the Status of the smallest failing
/// index.  When the calling thread has a CancellationToken installed and it
/// expires mid-sweep, the call fails with kResourceExhausted instead of
/// returning a partial result (checked every kCancellationStride indices,
/// and once more after the sweep to cover ParallelFor's skipped chunks).
inline constexpr std::int64_t kCancellationStride = 64;

template <typename T, typename Fn>
Result<std::vector<T>> ParallelAppend(std::int64_t n,
                                      const ParallelOptions& options,
                                      Fn&& fn) {
  std::vector<T> out;
  if (n <= 0) return out;
  const int threads = ResolveThreads(options.threads);
  const std::int64_t grain = options.grain < 1 ? 1 : options.grain;
  if (threads <= 1 || n <= grain) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (i % kCancellationStride == 0) {
        ITDB_RETURN_IF_ERROR(CheckCancellation());
      }
      ITDB_RETURN_IF_ERROR(fn(i, out));
    }
    return out;
  }
  // Fixed contiguous pieces; piece boundaries affect scheduling only, never
  // the merged result (see file comment).
  std::int64_t pieces = static_cast<std::int64_t>(threads) * 8;
  if (pieces > n / grain) pieces = n / grain;
  if (pieces < 1) pieces = 1;
  std::vector<std::vector<T>> parts(static_cast<std::size_t>(pieces));
  std::vector<Status> piece_error(static_cast<std::size_t>(pieces));
  std::atomic<std::int64_t> first_bad_piece{pieces};
  ParallelFor(pieces, ParallelOptions{threads, 1},
              [&](std::int64_t cb, std::int64_t ce) {
                for (std::int64_t c = cb; c < ce; ++c) {
                  const std::int64_t lo = c * n / pieces;
                  const std::int64_t hi = (c + 1) * n / pieces;
                  std::vector<T>& local =
                      parts[static_cast<std::size_t>(c)];
                  for (std::int64_t i = lo; i < hi; ++i) {
                    Status s = (i - lo) % kCancellationStride == 0
                                   ? CheckCancellation()
                                   : Status::Ok();
                    if (s.ok()) s = fn(i, local);
                    if (!s.ok()) {
                      piece_error[static_cast<std::size_t>(c)] = std::move(s);
                      std::int64_t cur = first_bad_piece.load();
                      while (c < cur &&
                             !first_bad_piece.compare_exchange_weak(cur, c)) {
                      }
                      break;
                    }
                  }
                }
              });
  const std::int64_t bad = first_bad_piece.load();
  if (bad < pieces) return piece_error[static_cast<std::size_t>(bad)];
  // ParallelFor may have skipped whole chunks on an expired token; this
  // check turns that into a failure instead of a silently truncated result.
  ITDB_RETURN_IF_ERROR(CheckCancellation());
  std::size_t total = 0;
  for (const std::vector<T>& p : parts) total += p.size();
  out.reserve(total);
  for (std::vector<T>& p : parts) {
    for (T& v : p) out.push_back(std::move(v));
  }
  return out;
}

}  // namespace itdb

#endif  // ITDB_UTIL_THREAD_POOL_H_
