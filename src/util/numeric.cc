#include "util/numeric.h"

#include <cstdlib>
#include <limits>
#include <string>

namespace itdb {

namespace {

constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();

}  // namespace

std::int64_t FloorDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

std::int64_t FloorMod(std::int64_t a, std::int64_t b) {
  std::int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return -FloorDiv(-a, b);
}

std::int64_t Gcd(std::int64_t a, std::int64_t b) {
  // Work on unsigned magnitudes so that INT64_MIN does not overflow llabs.
  std::uint64_t ua = a == kInt64Min
                         ? static_cast<std::uint64_t>(kInt64Max) + 1
                         : static_cast<std::uint64_t>(a < 0 ? -a : a);
  std::uint64_t ub = b == kInt64Min
                         ? static_cast<std::uint64_t>(kInt64Max) + 1
                         : static_cast<std::uint64_t>(b < 0 ? -b : b);
  while (ub != 0) {
    std::uint64_t t = ua % ub;
    ua = ub;
    ub = t;
  }
  return static_cast<std::int64_t>(ua);
}

Result<std::int64_t> Lcm(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return std::int64_t{0};
  std::int64_t g = Gcd(a, b);
  __int128 l = static_cast<__int128>(a < 0 ? -static_cast<__int128>(a) : a) /
               g *
               static_cast<__int128>(b < 0 ? -static_cast<__int128>(b) : b);
  if (l > static_cast<__int128>(kInt64Max)) {
    return Status::Overflow("lcm overflows int64");
  }
  return static_cast<std::int64_t>(l);
}

ExtendedGcd ExtGcd(std::int64_t a, std::int64_t b) {
  // Iterative extended Euclid.  Invariants: r0 = a*x0 + b*y0, r1 = a*x1 + b*y1.
  std::int64_t r0 = a, r1 = b;
  std::int64_t x0 = 1, x1 = 0;
  std::int64_t y0 = 0, y1 = 1;
  while (r1 != 0) {
    std::int64_t q = r0 / r1;
    std::int64_t t;
    t = r0 - q * r1;
    r0 = r1;
    r1 = t;
    t = x0 - q * x1;
    x0 = x1;
    x1 = t;
    t = y0 - q * y1;
    y0 = y1;
    y1 = t;
  }
  if (r0 < 0) {
    r0 = -r0;
    x0 = -x0;
    y0 = -y0;
  }
  return ExtendedGcd{r0, x0, y0};
}

Result<std::int64_t> ModInverse(std::int64_t a, std::int64_t m) {
  if (m <= 0) {
    return Status::InvalidArgument("ModInverse: modulus must be positive, got " +
                                   std::to_string(m));
  }
  ExtendedGcd e = ExtGcd(FloorMod(a, m), m);
  if (e.g != 1) {
    return Status::InvalidArgument(
        "ModInverse: " + std::to_string(a) + " is not invertible modulo " +
        std::to_string(m) + " (gcd = " + std::to_string(e.g) + ")");
  }
  return FloorMod(e.x, m);
}

Result<std::int64_t> CheckedAdd(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return Status::Overflow("add overflows int64: " + std::to_string(a) +
                            " + " + std::to_string(b));
  }
  return out;
}

Result<std::int64_t> CheckedSub(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  if (__builtin_sub_overflow(a, b, &out)) {
    return Status::Overflow("sub overflows int64: " + std::to_string(a) +
                            " - " + std::to_string(b));
  }
  return out;
}

Result<std::int64_t> CheckedMul(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return Status::Overflow("mul overflows int64: " + std::to_string(a) +
                            " * " + std::to_string(b));
  }
  return out;
}

}  // namespace itdb
