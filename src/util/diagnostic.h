// Structured diagnostics for the static query analyzer.
//
// A Diagnostic is one finding of the analyzer (src/analysis) or of sort
// inference (query/sorts.h): a severity, a stable code like "A003", a
// source span, a human-readable message, and an optional fix-it hint.  The
// full code table lives in DESIGN.md ("Static analysis"); the constants
// below are the single source of truth for the spellings.
//
// Formatting comes in two shapes:
//   * FormatDiagnostic  -- a rustc-style block with the offending source
//     line and a caret underline, for the shell `check` command;
//   * FormatDiagnosticList -- one line per diagnostic, for Status messages
//     when evaluation aborts on analysis errors.

#ifndef ITDB_UTIL_DIAGNOSTIC_H_
#define ITDB_UTIL_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/source_span.h"

namespace itdb {

enum class Severity {
  kNote,
  kWarning,
  kError,
};

/// "note" / "warning" / "error".
std::string_view SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     // Stable code, e.g. "A003".
  SourceSpan span;      // Unknown span when the AST was built in code.
  std::string message;  // One sentence, no trailing period or newline.
  std::string fixit;    // Optional suggestion; empty = none.
};

/// Stable diagnostic codes.  Append-only: codes are pinned by tests, the
/// corpus `# expect:` annotations, and user scripts.
namespace diag {
inline constexpr std::string_view kUnknownRelation = "A001";
inline constexpr std::string_view kArityMismatch = "A002";
inline constexpr std::string_view kConflictingSorts = "A003";
inline constexpr std::string_view kIncompatibleConstant = "A004";
inline constexpr std::string_view kShadowedVariable = "A005";
inline constexpr std::string_view kUndeterminedSort = "A006";
inline constexpr std::string_view kMixedSortComparison = "A007";
inline constexpr std::string_view kUnsafeDataVariable = "A008";
inline constexpr std::string_view kStaticallyEmpty = "A009";
inline constexpr std::string_view kExpensiveComplement = "A010";
inline constexpr std::string_view kCrossProduct = "A011";
inline constexpr std::string_view kPeriodBlowup = "A012";
inline constexpr std::string_view kVacuousQuantifier = "A013";
inline constexpr std::string_view kCertifiedHugeCardinality = "A014";
inline constexpr std::string_view kCertifiedPeriodBlowup = "A015";
inline constexpr std::string_view kHullRefuted = "A016";
inline constexpr std::string_view kUnboundedCertificate = "A017";
}  // namespace diag

bool HasErrors(const std::vector<Diagnostic>& diagnostics);
int CountSeverity(const std::vector<Diagnostic>& diagnostics,
                  Severity severity);

/// One rustc-style block:
///
///   error[A003]: variable "t" used with conflicting sorts (time vs string)
///    --> 2:14
///     |
///   2 | P(t) AND Q(t, "x")
///     |              ^^^
///     = help: ...
///
/// `source` is the text the span indexes; when it is empty or the span is
/// unknown, the location lines are omitted.
std::string FormatDiagnostic(std::string_view source, const Diagnostic& d);

/// Every diagnostic as consecutive FormatDiagnostic blocks.
std::string FormatDiagnostics(std::string_view source,
                              const std::vector<Diagnostic>& diagnostics);

/// Compact form, one line per diagnostic:
///   error[A003] at 2:14: variable "t" used with conflicting sorts ...
std::string FormatDiagnosticList(const std::vector<Diagnostic>& diagnostics);

}  // namespace itdb

#endif  // ITDB_UTIL_DIAGNOSTIC_H_
