# CMake generated Testfile for 
# Source directory: /root/repo/tests/shell
# Build directory: /root/repo/build/tests/shell
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(shell_test "/root/repo/build/tests/shell/shell_test")
set_tests_properties(shell_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/shell/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/shell/CMakeLists.txt;0;")
