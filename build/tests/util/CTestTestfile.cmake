# CMake generated Testfile for 
# Source directory: /root/repo/tests/util
# Build directory: /root/repo/build/tests/util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(numeric_test "/root/repo/build/tests/util/numeric_test")
set_tests_properties(numeric_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/util/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/util/CMakeLists.txt;0;")
add_test(status_test "/root/repo/build/tests/util/status_test")
set_tests_properties(status_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/util/CMakeLists.txt;2;itdb_add_test;/root/repo/tests/util/CMakeLists.txt;0;")
