# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lrp_test "/root/repo/build/tests/core/lrp_test")
set_tests_properties(lrp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(dbm_test "/root/repo/build/tests/core/dbm_test")
set_tests_properties(dbm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;2;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(tuple_test "/root/repo/build/tests/core/tuple_test")
set_tests_properties(tuple_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;3;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(relation_test "/root/repo/build/tests/core/relation_test")
set_tests_properties(relation_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;4;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(normalize_test "/root/repo/build/tests/core/normalize_test")
set_tests_properties(normalize_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;5;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(projection_test "/root/repo/build/tests/core/projection_test")
set_tests_properties(projection_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;6;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(algebra_test "/root/repo/build/tests/core/algebra_test")
set_tests_properties(algebra_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;7;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(algebra_property_test "/root/repo/build/tests/core/algebra_property_test")
set_tests_properties(algebra_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;8;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(simplify_test "/root/repo/build/tests/core/simplify_test")
set_tests_properties(simplify_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;9;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(algebra_extras_test "/root/repo/build/tests/core/algebra_extras_test")
set_tests_properties(algebra_extras_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;10;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(coalesce_test "/root/repo/build/tests/core/coalesce_test")
set_tests_properties(coalesce_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;11;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(normalize_property_test "/root/repo/build/tests/core/normalize_property_test")
set_tests_properties(normalize_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;12;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(budget_test "/root/repo/build/tests/core/budget_test")
set_tests_properties(budget_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;13;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(value_test "/root/repo/build/tests/core/value_test")
set_tests_properties(value_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/core/CMakeLists.txt;14;itdb_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
