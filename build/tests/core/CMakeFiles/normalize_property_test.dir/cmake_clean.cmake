file(REMOVE_RECURSE
  "CMakeFiles/normalize_property_test.dir/normalize_property_test.cc.o"
  "CMakeFiles/normalize_property_test.dir/normalize_property_test.cc.o.d"
  "normalize_property_test"
  "normalize_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normalize_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
