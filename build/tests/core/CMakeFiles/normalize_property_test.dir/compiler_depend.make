# Empty compiler generated dependencies file for normalize_property_test.
# This may be replaced when dependencies are built.
