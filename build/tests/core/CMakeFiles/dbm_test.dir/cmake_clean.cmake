file(REMOVE_RECURSE
  "CMakeFiles/dbm_test.dir/dbm_test.cc.o"
  "CMakeFiles/dbm_test.dir/dbm_test.cc.o.d"
  "dbm_test"
  "dbm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
