file(REMOVE_RECURSE
  "CMakeFiles/lrp_test.dir/lrp_test.cc.o"
  "CMakeFiles/lrp_test.dir/lrp_test.cc.o.d"
  "lrp_test"
  "lrp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
