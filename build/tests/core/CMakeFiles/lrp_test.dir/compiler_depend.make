# Empty compiler generated dependencies file for lrp_test.
# This may be replaced when dependencies are built.
