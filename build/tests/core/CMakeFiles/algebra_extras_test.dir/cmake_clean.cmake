file(REMOVE_RECURSE
  "CMakeFiles/algebra_extras_test.dir/algebra_extras_test.cc.o"
  "CMakeFiles/algebra_extras_test.dir/algebra_extras_test.cc.o.d"
  "algebra_extras_test"
  "algebra_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
