# Empty compiler generated dependencies file for algebra_extras_test.
# This may be replaced when dependencies are built.
