# CMake generated Testfile for 
# Source directory: /root/repo/tests/finite
# Build directory: /root/repo/build/tests/finite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(finite_relation_test "/root/repo/build/tests/finite/finite_relation_test")
set_tests_properties(finite_relation_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/finite/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/finite/CMakeLists.txt;0;")
