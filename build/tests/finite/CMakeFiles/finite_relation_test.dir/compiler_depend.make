# Empty compiler generated dependencies file for finite_relation_test.
# This may be replaced when dependencies are built.
