file(REMOVE_RECURSE
  "CMakeFiles/finite_relation_test.dir/finite_relation_test.cc.o"
  "CMakeFiles/finite_relation_test.dir/finite_relation_test.cc.o.d"
  "finite_relation_test"
  "finite_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
