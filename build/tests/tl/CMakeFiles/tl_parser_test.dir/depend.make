# Empty dependencies file for tl_parser_test.
# This may be replaced when dependencies are built.
