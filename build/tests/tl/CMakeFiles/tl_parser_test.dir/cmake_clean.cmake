file(REMOVE_RECURSE
  "CMakeFiles/tl_parser_test.dir/tl_parser_test.cc.o"
  "CMakeFiles/tl_parser_test.dir/tl_parser_test.cc.o.d"
  "tl_parser_test"
  "tl_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
