# CMake generated Testfile for 
# Source directory: /root/repo/tests/tl
# Build directory: /root/repo/build/tests/tl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ltl_test "/root/repo/build/tests/tl/ltl_test")
set_tests_properties(ltl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/tl/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/tl/CMakeLists.txt;0;")
add_test(tl_parser_test "/root/repo/build/tests/tl/tl_parser_test")
set_tests_properties(tl_parser_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/tl/CMakeLists.txt;2;itdb_add_test;/root/repo/tests/tl/CMakeLists.txt;0;")
