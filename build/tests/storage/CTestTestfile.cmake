# CMake generated Testfile for 
# Source directory: /root/repo/tests/storage
# Build directory: /root/repo/build/tests/storage
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lexer_test "/root/repo/build/tests/storage/lexer_test")
set_tests_properties(lexer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/storage/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/storage/CMakeLists.txt;0;")
add_test(text_format_test "/root/repo/build/tests/storage/text_format_test")
set_tests_properties(text_format_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/storage/CMakeLists.txt;2;itdb_add_test;/root/repo/tests/storage/CMakeLists.txt;0;")
add_test(database_test "/root/repo/build/tests/storage/database_test")
set_tests_properties(database_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/storage/CMakeLists.txt;3;itdb_add_test;/root/repo/tests/storage/CMakeLists.txt;0;")
add_test(parser_robustness_test "/root/repo/build/tests/storage/parser_robustness_test")
set_tests_properties(parser_robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/storage/CMakeLists.txt;4;itdb_add_test;/root/repo/tests/storage/CMakeLists.txt;0;")
