# Empty dependencies file for allen_test.
# This may be replaced when dependencies are built.
