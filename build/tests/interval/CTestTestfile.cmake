# CMake generated Testfile for 
# Source directory: /root/repo/tests/interval
# Build directory: /root/repo/build/tests/interval
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(allen_test "/root/repo/build/tests/interval/allen_test")
set_tests_properties(allen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/interval/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/interval/CMakeLists.txt;0;")
