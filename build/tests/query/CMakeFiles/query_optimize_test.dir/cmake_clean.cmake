file(REMOVE_RECURSE
  "CMakeFiles/query_optimize_test.dir/optimize_test.cc.o"
  "CMakeFiles/query_optimize_test.dir/optimize_test.cc.o.d"
  "query_optimize_test"
  "query_optimize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_optimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
