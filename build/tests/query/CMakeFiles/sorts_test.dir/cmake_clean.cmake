file(REMOVE_RECURSE
  "CMakeFiles/sorts_test.dir/sorts_test.cc.o"
  "CMakeFiles/sorts_test.dir/sorts_test.cc.o.d"
  "sorts_test"
  "sorts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
