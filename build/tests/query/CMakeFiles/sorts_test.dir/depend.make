# Empty dependencies file for sorts_test.
# This may be replaced when dependencies are built.
