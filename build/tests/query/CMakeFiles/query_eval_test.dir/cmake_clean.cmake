file(REMOVE_RECURSE
  "CMakeFiles/query_eval_test.dir/eval_test.cc.o"
  "CMakeFiles/query_eval_test.dir/eval_test.cc.o.d"
  "query_eval_test"
  "query_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
