# CMake generated Testfile for 
# Source directory: /root/repo/tests/query
# Build directory: /root/repo/build/tests/query
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(query_parser_test "/root/repo/build/tests/query/query_parser_test")
set_tests_properties(query_parser_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/query/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/query/CMakeLists.txt;0;")
add_test(sorts_test "/root/repo/build/tests/query/sorts_test")
set_tests_properties(sorts_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/query/CMakeLists.txt;2;itdb_add_test;/root/repo/tests/query/CMakeLists.txt;0;")
add_test(query_eval_test "/root/repo/build/tests/query/query_eval_test")
set_tests_properties(query_eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/query/CMakeLists.txt;3;itdb_add_test;/root/repo/tests/query/CMakeLists.txt;0;")
add_test(query_optimize_test "/root/repo/build/tests/query/query_optimize_test")
set_tests_properties(query_optimize_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/query/CMakeLists.txt;4;itdb_add_test;/root/repo/tests/query/CMakeLists.txt;0;")
add_test(query_property_test "/root/repo/build/tests/query/query_property_test")
set_tests_properties(query_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/query/CMakeLists.txt;5;itdb_add_test;/root/repo/tests/query/CMakeLists.txt;0;")
