# CMake generated Testfile for 
# Source directory: /root/repo/tests/sat
# Build directory: /root/repo/build/tests/sat
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cnf_test "/root/repo/build/tests/sat/cnf_test")
set_tests_properties(cnf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sat/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/sat/CMakeLists.txt;0;")
add_test(solver_test "/root/repo/build/tests/sat/solver_test")
set_tests_properties(solver_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sat/CMakeLists.txt;2;itdb_add_test;/root/repo/tests/sat/CMakeLists.txt;0;")
add_test(reduction_test "/root/repo/build/tests/sat/reduction_test")
set_tests_properties(reduction_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sat/CMakeLists.txt;3;itdb_add_test;/root/repo/tests/sat/CMakeLists.txt;0;")
