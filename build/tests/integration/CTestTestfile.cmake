# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(end_to_end_test "/root/repo/build/tests/integration/end_to_end_test")
set_tests_properties(end_to_end_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/integration/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
