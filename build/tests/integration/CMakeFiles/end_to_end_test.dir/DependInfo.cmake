
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/integration/CMakeFiles/end_to_end_test.dir/end_to_end_test.cc.o" "gcc" "tests/integration/CMakeFiles/end_to_end_test.dir/end_to_end_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shell/CMakeFiles/itdb_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/tl/CMakeFiles/itdb_tl.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/itdb_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/finite/CMakeFiles/itdb_finite.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/itdb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/itdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/itdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/itdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
