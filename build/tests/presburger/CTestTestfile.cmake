# CMake generated Testfile for 
# Source directory: /root/repo/tests/presburger
# Build directory: /root/repo/build/tests/presburger
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(formula_test "/root/repo/build/tests/presburger/formula_test")
set_tests_properties(formula_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/presburger/CMakeLists.txt;1;itdb_add_test;/root/repo/tests/presburger/CMakeLists.txt;0;")
add_test(to_relation_test "/root/repo/build/tests/presburger/to_relation_test")
set_tests_properties(to_relation_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/presburger/CMakeLists.txt;2;itdb_add_test;/root/repo/tests/presburger/CMakeLists.txt;0;")
add_test(presburger_property_test "/root/repo/build/tests/presburger/presburger_property_test")
set_tests_properties(presburger_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/presburger/CMakeLists.txt;3;itdb_add_test;/root/repo/tests/presburger/CMakeLists.txt;0;")
