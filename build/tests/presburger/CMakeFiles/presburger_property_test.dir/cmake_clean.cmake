file(REMOVE_RECURSE
  "CMakeFiles/presburger_property_test.dir/presburger_property_test.cc.o"
  "CMakeFiles/presburger_property_test.dir/presburger_property_test.cc.o.d"
  "presburger_property_test"
  "presburger_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presburger_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
