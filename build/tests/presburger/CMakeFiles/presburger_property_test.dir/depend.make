# Empty dependencies file for presburger_property_test.
# This may be replaced when dependencies are built.
