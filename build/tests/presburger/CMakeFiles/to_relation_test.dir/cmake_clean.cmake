file(REMOVE_RECURSE
  "CMakeFiles/to_relation_test.dir/to_relation_test.cc.o"
  "CMakeFiles/to_relation_test.dir/to_relation_test.cc.o.d"
  "to_relation_test"
  "to_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
