file(REMOVE_RECURSE
  "CMakeFiles/itdb_query.dir/ast.cc.o"
  "CMakeFiles/itdb_query.dir/ast.cc.o.d"
  "CMakeFiles/itdb_query.dir/eval.cc.o"
  "CMakeFiles/itdb_query.dir/eval.cc.o.d"
  "CMakeFiles/itdb_query.dir/optimize.cc.o"
  "CMakeFiles/itdb_query.dir/optimize.cc.o.d"
  "CMakeFiles/itdb_query.dir/parser.cc.o"
  "CMakeFiles/itdb_query.dir/parser.cc.o.d"
  "CMakeFiles/itdb_query.dir/sorts.cc.o"
  "CMakeFiles/itdb_query.dir/sorts.cc.o.d"
  "libitdb_query.a"
  "libitdb_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
