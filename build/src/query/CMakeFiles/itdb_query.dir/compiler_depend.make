# Empty compiler generated dependencies file for itdb_query.
# This may be replaced when dependencies are built.
