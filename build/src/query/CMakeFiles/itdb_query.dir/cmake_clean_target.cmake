file(REMOVE_RECURSE
  "libitdb_query.a"
)
