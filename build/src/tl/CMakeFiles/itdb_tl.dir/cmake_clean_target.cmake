file(REMOVE_RECURSE
  "libitdb_tl.a"
)
