# Empty compiler generated dependencies file for itdb_tl.
# This may be replaced when dependencies are built.
