file(REMOVE_RECURSE
  "CMakeFiles/itdb_tl.dir/ltl.cc.o"
  "CMakeFiles/itdb_tl.dir/ltl.cc.o.d"
  "CMakeFiles/itdb_tl.dir/parser.cc.o"
  "CMakeFiles/itdb_tl.dir/parser.cc.o.d"
  "libitdb_tl.a"
  "libitdb_tl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_tl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
