file(REMOVE_RECURSE
  "libitdb_util.a"
)
