file(REMOVE_RECURSE
  "CMakeFiles/itdb_util.dir/numeric.cc.o"
  "CMakeFiles/itdb_util.dir/numeric.cc.o.d"
  "CMakeFiles/itdb_util.dir/status.cc.o"
  "CMakeFiles/itdb_util.dir/status.cc.o.d"
  "libitdb_util.a"
  "libitdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
