# Empty compiler generated dependencies file for itdb_util.
# This may be replaced when dependencies are built.
