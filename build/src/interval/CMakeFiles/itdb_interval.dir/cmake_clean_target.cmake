file(REMOVE_RECURSE
  "libitdb_interval.a"
)
