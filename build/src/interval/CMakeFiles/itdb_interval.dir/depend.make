# Empty dependencies file for itdb_interval.
# This may be replaced when dependencies are built.
