file(REMOVE_RECURSE
  "CMakeFiles/itdb_interval.dir/allen.cc.o"
  "CMakeFiles/itdb_interval.dir/allen.cc.o.d"
  "libitdb_interval.a"
  "libitdb_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
