# Empty compiler generated dependencies file for itdb_storage.
# This may be replaced when dependencies are built.
