file(REMOVE_RECURSE
  "libitdb_storage.a"
)
