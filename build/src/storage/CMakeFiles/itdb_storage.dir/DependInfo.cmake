
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/database.cc" "src/storage/CMakeFiles/itdb_storage.dir/database.cc.o" "gcc" "src/storage/CMakeFiles/itdb_storage.dir/database.cc.o.d"
  "/root/repo/src/storage/lexer.cc" "src/storage/CMakeFiles/itdb_storage.dir/lexer.cc.o" "gcc" "src/storage/CMakeFiles/itdb_storage.dir/lexer.cc.o.d"
  "/root/repo/src/storage/text_format.cc" "src/storage/CMakeFiles/itdb_storage.dir/text_format.cc.o" "gcc" "src/storage/CMakeFiles/itdb_storage.dir/text_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/itdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/itdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
