file(REMOVE_RECURSE
  "CMakeFiles/itdb_storage.dir/database.cc.o"
  "CMakeFiles/itdb_storage.dir/database.cc.o.d"
  "CMakeFiles/itdb_storage.dir/lexer.cc.o"
  "CMakeFiles/itdb_storage.dir/lexer.cc.o.d"
  "CMakeFiles/itdb_storage.dir/text_format.cc.o"
  "CMakeFiles/itdb_storage.dir/text_format.cc.o.d"
  "libitdb_storage.a"
  "libitdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
