# Empty dependencies file for itdb_core.
# This may be replaced when dependencies are built.
