file(REMOVE_RECURSE
  "libitdb_core.a"
)
