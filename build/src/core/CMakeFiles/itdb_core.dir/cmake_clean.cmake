file(REMOVE_RECURSE
  "CMakeFiles/itdb_core.dir/algebra.cc.o"
  "CMakeFiles/itdb_core.dir/algebra.cc.o.d"
  "CMakeFiles/itdb_core.dir/coalesce.cc.o"
  "CMakeFiles/itdb_core.dir/coalesce.cc.o.d"
  "CMakeFiles/itdb_core.dir/dbm.cc.o"
  "CMakeFiles/itdb_core.dir/dbm.cc.o.d"
  "CMakeFiles/itdb_core.dir/lrp.cc.o"
  "CMakeFiles/itdb_core.dir/lrp.cc.o.d"
  "CMakeFiles/itdb_core.dir/normalize.cc.o"
  "CMakeFiles/itdb_core.dir/normalize.cc.o.d"
  "CMakeFiles/itdb_core.dir/relation.cc.o"
  "CMakeFiles/itdb_core.dir/relation.cc.o.d"
  "CMakeFiles/itdb_core.dir/schema.cc.o"
  "CMakeFiles/itdb_core.dir/schema.cc.o.d"
  "CMakeFiles/itdb_core.dir/simplify.cc.o"
  "CMakeFiles/itdb_core.dir/simplify.cc.o.d"
  "CMakeFiles/itdb_core.dir/tuple.cc.o"
  "CMakeFiles/itdb_core.dir/tuple.cc.o.d"
  "libitdb_core.a"
  "libitdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
