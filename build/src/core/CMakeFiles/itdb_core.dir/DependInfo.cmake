
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algebra.cc" "src/core/CMakeFiles/itdb_core.dir/algebra.cc.o" "gcc" "src/core/CMakeFiles/itdb_core.dir/algebra.cc.o.d"
  "/root/repo/src/core/coalesce.cc" "src/core/CMakeFiles/itdb_core.dir/coalesce.cc.o" "gcc" "src/core/CMakeFiles/itdb_core.dir/coalesce.cc.o.d"
  "/root/repo/src/core/dbm.cc" "src/core/CMakeFiles/itdb_core.dir/dbm.cc.o" "gcc" "src/core/CMakeFiles/itdb_core.dir/dbm.cc.o.d"
  "/root/repo/src/core/lrp.cc" "src/core/CMakeFiles/itdb_core.dir/lrp.cc.o" "gcc" "src/core/CMakeFiles/itdb_core.dir/lrp.cc.o.d"
  "/root/repo/src/core/normalize.cc" "src/core/CMakeFiles/itdb_core.dir/normalize.cc.o" "gcc" "src/core/CMakeFiles/itdb_core.dir/normalize.cc.o.d"
  "/root/repo/src/core/relation.cc" "src/core/CMakeFiles/itdb_core.dir/relation.cc.o" "gcc" "src/core/CMakeFiles/itdb_core.dir/relation.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/core/CMakeFiles/itdb_core.dir/schema.cc.o" "gcc" "src/core/CMakeFiles/itdb_core.dir/schema.cc.o.d"
  "/root/repo/src/core/simplify.cc" "src/core/CMakeFiles/itdb_core.dir/simplify.cc.o" "gcc" "src/core/CMakeFiles/itdb_core.dir/simplify.cc.o.d"
  "/root/repo/src/core/tuple.cc" "src/core/CMakeFiles/itdb_core.dir/tuple.cc.o" "gcc" "src/core/CMakeFiles/itdb_core.dir/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/itdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
