file(REMOVE_RECURSE
  "libitdb_finite.a"
)
