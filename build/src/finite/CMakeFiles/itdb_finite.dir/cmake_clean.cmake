file(REMOVE_RECURSE
  "CMakeFiles/itdb_finite.dir/finite_relation.cc.o"
  "CMakeFiles/itdb_finite.dir/finite_relation.cc.o.d"
  "libitdb_finite.a"
  "libitdb_finite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_finite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
