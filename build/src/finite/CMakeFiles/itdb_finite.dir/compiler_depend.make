# Empty compiler generated dependencies file for itdb_finite.
# This may be replaced when dependencies are built.
