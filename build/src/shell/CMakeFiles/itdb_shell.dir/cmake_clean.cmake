file(REMOVE_RECURSE
  "CMakeFiles/itdb_shell.dir/shell.cc.o"
  "CMakeFiles/itdb_shell.dir/shell.cc.o.d"
  "libitdb_shell.a"
  "libitdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
