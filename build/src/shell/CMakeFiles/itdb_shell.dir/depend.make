# Empty dependencies file for itdb_shell.
# This may be replaced when dependencies are built.
