file(REMOVE_RECURSE
  "libitdb_shell.a"
)
