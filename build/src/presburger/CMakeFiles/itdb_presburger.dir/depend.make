# Empty dependencies file for itdb_presburger.
# This may be replaced when dependencies are built.
