file(REMOVE_RECURSE
  "CMakeFiles/itdb_presburger.dir/formula.cc.o"
  "CMakeFiles/itdb_presburger.dir/formula.cc.o.d"
  "CMakeFiles/itdb_presburger.dir/general_relation.cc.o"
  "CMakeFiles/itdb_presburger.dir/general_relation.cc.o.d"
  "CMakeFiles/itdb_presburger.dir/to_relation.cc.o"
  "CMakeFiles/itdb_presburger.dir/to_relation.cc.o.d"
  "libitdb_presburger.a"
  "libitdb_presburger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_presburger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
