file(REMOVE_RECURSE
  "libitdb_presburger.a"
)
