# Empty dependencies file for itdb_sat.
# This may be replaced when dependencies are built.
