file(REMOVE_RECURSE
  "libitdb_sat.a"
)
