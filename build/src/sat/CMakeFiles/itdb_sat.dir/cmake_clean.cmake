file(REMOVE_RECURSE
  "CMakeFiles/itdb_sat.dir/cnf.cc.o"
  "CMakeFiles/itdb_sat.dir/cnf.cc.o.d"
  "CMakeFiles/itdb_sat.dir/reduction.cc.o"
  "CMakeFiles/itdb_sat.dir/reduction.cc.o.d"
  "CMakeFiles/itdb_sat.dir/solver.cc.o"
  "CMakeFiles/itdb_sat.dir/solver.cc.o.d"
  "libitdb_sat.a"
  "libitdb_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
