# Empty compiler generated dependencies file for itdb_shell_tool.
# This may be replaced when dependencies are built.
