file(REMOVE_RECURSE
  "CMakeFiles/itdb_shell_tool.dir/itdb_shell.cc.o"
  "CMakeFiles/itdb_shell_tool.dir/itdb_shell.cc.o.d"
  "itdb_shell"
  "itdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdb_shell_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
