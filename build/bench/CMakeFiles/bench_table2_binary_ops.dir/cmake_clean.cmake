file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_binary_ops.dir/bench_table2_binary_ops.cc.o"
  "CMakeFiles/bench_table2_binary_ops.dir/bench_table2_binary_ops.cc.o.d"
  "bench_table2_binary_ops"
  "bench_table2_binary_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_binary_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
