file(REMOVE_RECURSE
  "CMakeFiles/bench_lrp.dir/bench_lrp.cc.o"
  "CMakeFiles/bench_lrp.dir/bench_lrp.cc.o.d"
  "bench_lrp"
  "bench_lrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
