# Empty dependencies file for bench_lrp.
# This may be replaced when dependencies are built.
