# Empty dependencies file for bench_npc_complement.
# This may be replaced when dependencies are built.
