file(REMOVE_RECURSE
  "CMakeFiles/bench_npc_complement.dir/bench_npc_complement.cc.o"
  "CMakeFiles/bench_npc_complement.dir/bench_npc_complement.cc.o.d"
  "bench_npc_complement"
  "bench_npc_complement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_npc_complement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
