file(REMOVE_RECURSE
  "CMakeFiles/bench_allen.dir/bench_allen.cc.o"
  "CMakeFiles/bench_allen.dir/bench_allen.cc.o.d"
  "bench_allen"
  "bench_allen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
