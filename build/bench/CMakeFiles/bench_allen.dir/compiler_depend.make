# Empty compiler generated dependencies file for bench_allen.
# This may be replaced when dependencies are built.
