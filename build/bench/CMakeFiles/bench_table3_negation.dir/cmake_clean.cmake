file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_negation.dir/bench_table3_negation.cc.o"
  "CMakeFiles/bench_table3_negation.dir/bench_table3_negation.cc.o.d"
  "bench_table3_negation"
  "bench_table3_negation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_negation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
