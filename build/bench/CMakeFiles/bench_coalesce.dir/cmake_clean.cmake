file(REMOVE_RECURSE
  "CMakeFiles/bench_coalesce.dir/bench_coalesce.cc.o"
  "CMakeFiles/bench_coalesce.dir/bench_coalesce.cc.o.d"
  "bench_coalesce"
  "bench_coalesce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
