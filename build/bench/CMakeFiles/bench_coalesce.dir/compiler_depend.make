# Empty compiler generated dependencies file for bench_coalesce.
# This may be replaced when dependencies are built.
