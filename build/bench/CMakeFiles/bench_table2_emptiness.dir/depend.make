# Empty dependencies file for bench_table2_emptiness.
# This may be replaced when dependencies are built.
