file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_emptiness.dir/bench_table2_emptiness.cc.o"
  "CMakeFiles/bench_table2_emptiness.dir/bench_table2_emptiness.cc.o.d"
  "bench_table2_emptiness"
  "bench_table2_emptiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_emptiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
