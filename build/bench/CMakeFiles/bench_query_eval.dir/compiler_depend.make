# Empty compiler generated dependencies file for bench_query_eval.
# This may be replaced when dependencies are built.
