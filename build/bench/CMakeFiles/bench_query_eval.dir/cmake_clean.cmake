file(REMOVE_RECURSE
  "CMakeFiles/bench_query_eval.dir/bench_query_eval.cc.o"
  "CMakeFiles/bench_query_eval.dir/bench_query_eval.cc.o.d"
  "bench_query_eval"
  "bench_query_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
