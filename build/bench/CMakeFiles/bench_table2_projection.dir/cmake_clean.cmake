file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_projection.dir/bench_table2_projection.cc.o"
  "CMakeFiles/bench_table2_projection.dir/bench_table2_projection.cc.o.d"
  "bench_table2_projection"
  "bench_table2_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
