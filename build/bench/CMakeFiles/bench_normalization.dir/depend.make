# Empty dependencies file for bench_normalization.
# This may be replaced when dependencies are built.
