file(REMOVE_RECURSE
  "CMakeFiles/bench_normalization.dir/bench_normalization.cc.o"
  "CMakeFiles/bench_normalization.dir/bench_normalization.cc.o.d"
  "bench_normalization"
  "bench_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
