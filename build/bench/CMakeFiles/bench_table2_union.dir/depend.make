# Empty dependencies file for bench_table2_union.
# This may be replaced when dependencies are built.
