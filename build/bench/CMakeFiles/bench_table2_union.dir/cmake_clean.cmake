file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_union.dir/bench_table2_union.cc.o"
  "CMakeFiles/bench_table2_union.dir/bench_table2_union.cc.o.d"
  "bench_table2_union"
  "bench_table2_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
