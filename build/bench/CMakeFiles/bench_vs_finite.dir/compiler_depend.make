# Empty compiler generated dependencies file for bench_vs_finite.
# This may be replaced when dependencies are built.
