file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_finite.dir/bench_vs_finite.cc.o"
  "CMakeFiles/bench_vs_finite.dir/bench_vs_finite.cc.o.d"
  "bench_vs_finite"
  "bench_vs_finite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_finite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
