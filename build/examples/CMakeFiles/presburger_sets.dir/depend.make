# Empty dependencies file for presburger_sets.
# This may be replaced when dependencies are built.
