file(REMOVE_RECURSE
  "CMakeFiles/presburger_sets.dir/presburger_sets.cc.o"
  "CMakeFiles/presburger_sets.dir/presburger_sets.cc.o.d"
  "presburger_sets"
  "presburger_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presburger_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
