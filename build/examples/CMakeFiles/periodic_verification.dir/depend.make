# Empty dependencies file for periodic_verification.
# This may be replaced when dependencies are built.
