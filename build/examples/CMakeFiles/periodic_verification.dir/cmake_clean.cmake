file(REMOVE_RECURSE
  "CMakeFiles/periodic_verification.dir/periodic_verification.cc.o"
  "CMakeFiles/periodic_verification.dir/periodic_verification.cc.o.d"
  "periodic_verification"
  "periodic_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
