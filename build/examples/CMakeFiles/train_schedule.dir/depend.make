# Empty dependencies file for train_schedule.
# This may be replaced when dependencies are built.
