file(REMOVE_RECURSE
  "CMakeFiles/train_schedule.dir/train_schedule.cc.o"
  "CMakeFiles/train_schedule.dir/train_schedule.cc.o.d"
  "train_schedule"
  "train_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
