file(REMOVE_RECURSE
  "CMakeFiles/maintenance_windows.dir/maintenance_windows.cc.o"
  "CMakeFiles/maintenance_windows.dir/maintenance_windows.cc.o.d"
  "maintenance_windows"
  "maintenance_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
