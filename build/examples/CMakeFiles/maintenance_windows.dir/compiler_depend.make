# Empty compiler generated dependencies file for maintenance_windows.
# This may be replaced when dependencies are built.
