# Empty dependencies file for robot_factory.
# This may be replaced when dependencies are built.
