file(REMOVE_RECURSE
  "CMakeFiles/robot_factory.dir/robot_factory.cc.o"
  "CMakeFiles/robot_factory.dir/robot_factory.cc.o.d"
  "robot_factory"
  "robot_factory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
