// Deterministic pseudo-random generalized relations for property tests.
//
// The implementation lives in src/fuzz/generator.h so the fuzzer and the
// property tests share one generator (same seed => same relation in both);
// this header only re-exports it under the historical testing_util names.
// Every generator takes an explicit seed -- there is no hidden global RNG.

#ifndef ITDB_TESTS_COMMON_RANDOM_RELATIONS_H_
#define ITDB_TESTS_COMMON_RANDOM_RELATIONS_H_

#include "fuzz/generator.h"

namespace itdb {
namespace testing_util {

using fuzz::MakeRandomRelation;     // NOLINT(misc-unused-using-decls)
using fuzz::RandomRelationConfig;   // NOLINT(misc-unused-using-decls)

}  // namespace testing_util
}  // namespace itdb

#endif  // ITDB_TESTS_COMMON_RANDOM_RELATIONS_H_
