// Deterministic pseudo-random generalized relations for property tests.

#ifndef ITDB_TESTS_COMMON_RANDOM_RELATIONS_H_
#define ITDB_TESTS_COMMON_RANDOM_RELATIONS_H_

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/relation.h"

namespace itdb {
namespace testing_util {

struct RandomRelationConfig {
  int temporal_arity = 2;
  int num_tuples = 3;
  /// Periods are drawn from this list (0 = singleton column).
  std::vector<std::int64_t> periods = {0, 1, 2, 3, 4, 6};
  std::int64_t offset_range = 8;     // Offsets in [-range, range].
  int max_constraints = 2;           // Per tuple.
  std::int64_t bound_range = 6;      // Constraint bounds in [-range, range].
  std::vector<Value> data_values;    // Empty => purely temporal.
};

/// Builds a reproducible random relation; same seed => same relation.
inline GeneralizedRelation MakeRandomRelation(std::uint32_t seed,
                                              const RandomRelationConfig& cfg) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> period_pick(
      0, cfg.periods.size() - 1);
  std::uniform_int_distribution<std::int64_t> offset_pick(-cfg.offset_range,
                                                          cfg.offset_range);
  std::uniform_int_distribution<std::int64_t> bound_pick(-cfg.bound_range,
                                                         cfg.bound_range);
  std::uniform_int_distribution<int> count_pick(0, cfg.max_constraints);
  std::uniform_int_distribution<int> col_pick(0, cfg.temporal_arity - 1);
  std::uniform_int_distribution<int> kind_pick(0, 3);

  Schema schema = cfg.data_values.empty()
                      ? Schema::Temporal(cfg.temporal_arity)
                      : Schema(Schema::Temporal(cfg.temporal_arity)
                                   .temporal_names(),
                               {"d"},
                               {cfg.data_values[0].IsInt()
                                    ? DataType::kInt
                                    : DataType::kString});
  GeneralizedRelation r(schema);
  for (int t = 0; t < cfg.num_tuples; ++t) {
    std::vector<Lrp> lrps;
    for (int i = 0; i < cfg.temporal_arity; ++i) {
      lrps.push_back(Lrp::Make(offset_pick(rng),
                               cfg.periods[period_pick(rng)]));
    }
    std::vector<Value> data;
    if (!cfg.data_values.empty()) {
      std::uniform_int_distribution<std::size_t> value_pick(
          0, cfg.data_values.size() - 1);
      data.push_back(cfg.data_values[value_pick(rng)]);
    }
    GeneralizedTuple tuple(std::move(lrps), std::move(data));
    int n_constraints = count_pick(rng);
    for (int c = 0; c < n_constraints; ++c) {
      int kind = kind_pick(rng);
      int i = col_pick(rng);
      std::int64_t b = bound_pick(rng);
      switch (kind) {
        case 0:
          tuple.mutable_constraints().AddUpperBound(i, b);
          break;
        case 1:
          tuple.mutable_constraints().AddLowerBound(i, b);
          break;
        case 2: {
          if (cfg.temporal_arity < 2) break;
          int j = col_pick(rng);
          if (j == i) j = (i + 1) % cfg.temporal_arity;
          tuple.mutable_constraints().AddDifferenceUpperBound(i, j, b);
          break;
        }
        case 3: {
          if (cfg.temporal_arity < 2) break;
          int j = col_pick(rng);
          if (j == i) j = (i + 1) % cfg.temporal_arity;
          tuple.mutable_constraints().AddDifferenceEquality(i, j, b);
          break;
        }
      }
    }
    EXPECT_TRUE(r.AddTuple(std::move(tuple)).ok());
  }
  return r;
}

}  // namespace testing_util
}  // namespace itdb

#endif  // ITDB_TESTS_COMMON_RANDOM_RELATIONS_H_
