#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace itdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad thing");
  EXPECT_EQ(Status::Overflow("x").code(), StatusCode::kOverflow);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

namespace macros {

Result<int> FailingResult() { return Status::Overflow("boom"); }
Result<int> OkResult() { return 5; }

Status UseReturnIfError(bool fail) {
  ITDB_RETURN_IF_ERROR(fail ? Status::ParseError("nope") : Status::Ok());
  return Status::Ok();
}

Status UseAssignOrReturn(bool fail, int* out) {
  ITDB_ASSIGN_OR_RETURN(int v, fail ? FailingResult() : OkResult());
  ITDB_ASSIGN_OR_RETURN(int w, OkResult());
  *out = v + w;
  return Status::Ok();
}

}  // namespace macros

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macros::UseReturnIfError(false).ok());
  EXPECT_EQ(macros::UseReturnIfError(true).code(), StatusCode::kParseError);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesAndAssigns) {
  int out = 0;
  EXPECT_TRUE(macros::UseAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_EQ(macros::UseAssignOrReturn(true, &out).code(),
            StatusCode::kOverflow);
}

}  // namespace
}  // namespace itdb
