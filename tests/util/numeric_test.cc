#include "util/numeric.h"

#include <cstdint>
#include <limits>
#include <tuple>

#include <gtest/gtest.h>

namespace itdb {
namespace {

TEST(FloorDivTest, MatchesMathematicalDefinition) {
  EXPECT_EQ(FloorDiv(7, 2), 3);
  EXPECT_EQ(FloorDiv(-7, 2), -4);
  EXPECT_EQ(FloorDiv(7, -2), -4);
  EXPECT_EQ(FloorDiv(-7, -2), 3);
  EXPECT_EQ(FloorDiv(6, 3), 2);
  EXPECT_EQ(FloorDiv(-6, 3), -2);
  EXPECT_EQ(FloorDiv(0, 5), 0);
}

TEST(FloorModTest, RemainderHasDivisorSign) {
  EXPECT_EQ(FloorMod(7, 3), 1);
  EXPECT_EQ(FloorMod(-7, 3), 2);
  EXPECT_EQ(FloorMod(7, -3), -2);
  EXPECT_EQ(FloorMod(-7, -3), -1);
  EXPECT_EQ(FloorMod(-1, 5), 4);
  EXPECT_EQ(FloorMod(0, 5), 0);
}

TEST(CeilDivTest, MatchesMathematicalDefinition) {
  EXPECT_EQ(CeilDiv(7, 2), 4);
  EXPECT_EQ(CeilDiv(-7, 2), -3);
  EXPECT_EQ(CeilDiv(6, 3), 2);
  EXPECT_EQ(CeilDiv(6, -3), -2);
}

class FloorModPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(FloorModPropertyTest, DivModIdentity) {
  auto [a, b] = GetParam();
  if (b == 0) GTEST_SKIP();
  std::int64_t q = FloorDiv(a, b);
  std::int64_t r = FloorMod(a, b);
  EXPECT_EQ(q * b + r, a) << "a=" << a << " b=" << b;
  if (b > 0) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, b);
  } else {
    EXPECT_LE(r, 0);
    EXPECT_GT(r, b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FloorModPropertyTest,
    ::testing::Combine(::testing::Values(-17, -5, -1, 0, 1, 4, 5, 23, 1000),
                       ::testing::Values(-7, -3, -1, 1, 2, 3, 7, 12)));

TEST(GcdTest, BasicCases) {
  EXPECT_EQ(Gcd(12, 18), 6);
  EXPECT_EQ(Gcd(-12, 18), 6);
  EXPECT_EQ(Gcd(12, -18), 6);
  EXPECT_EQ(Gcd(0, 7), 7);
  EXPECT_EQ(Gcd(7, 0), 7);
  EXPECT_EQ(Gcd(0, 0), 0);
  EXPECT_EQ(Gcd(1, 999), 1);
}

TEST(GcdTest, Int64MinDoesNotOverflow) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(Gcd(kMin, 2), 2);
  EXPECT_EQ(Gcd(kMin, 3), 1);
}

TEST(LcmTest, BasicCases) {
  ASSERT_TRUE(Lcm(4, 6).ok());
  EXPECT_EQ(Lcm(4, 6).value(), 12);
  EXPECT_EQ(Lcm(-4, 6).value(), 12);
  EXPECT_EQ(Lcm(0, 6).value(), 0);
  EXPECT_EQ(Lcm(5, 7).value(), 35);
}

TEST(LcmTest, OverflowDetected) {
  constexpr std::int64_t kBig = std::int64_t{1} << 62;
  Result<std::int64_t> r = Lcm(kBig, kBig - 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOverflow);
}

TEST(ExtGcdTest, BezoutIdentityHolds) {
  for (std::int64_t a : {-30, -7, 0, 3, 12, 35}) {
    for (std::int64_t b : {-21, -1, 0, 5, 12, 49}) {
      ExtendedGcd e = ExtGcd(a, b);
      EXPECT_EQ(e.g, Gcd(a, b)) << a << "," << b;
      EXPECT_EQ(a * e.x + b * e.y, e.g) << a << "," << b;
    }
  }
}

TEST(ModInverseTest, InverseIsCorrect) {
  ASSERT_TRUE(ModInverse(3, 7).ok());
  EXPECT_EQ(ModInverse(3, 7).value(), 5);  // 3*5 = 15 === 1 (mod 7)
  EXPECT_EQ(ModInverse(1, 13).value(), 1);
  EXPECT_EQ(ModInverse(-3, 7).value(), FloorMod(-5, 7));
}

TEST(ModInverseTest, NonCoprimeFails) {
  Result<std::int64_t> r = ModInverse(4, 8);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModInverseTest, NonPositiveModulusFails) {
  EXPECT_FALSE(ModInverse(3, 0).ok());
  EXPECT_FALSE(ModInverse(3, -7).ok());
}

TEST(CheckedArithmeticTest, DetectsOverflow) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  EXPECT_TRUE(CheckedAdd(1, 2).ok());
  EXPECT_EQ(CheckedAdd(1, 2).value(), 3);
  EXPECT_FALSE(CheckedAdd(kMax, 1).ok());
  EXPECT_FALSE(CheckedSub(kMin, 1).ok());
  EXPECT_FALSE(CheckedMul(kMax, 2).ok());
  EXPECT_EQ(CheckedMul(-3, 7).value(), -21);
}

}  // namespace
}  // namespace itdb
