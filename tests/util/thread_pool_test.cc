#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace itdb {
namespace {

TEST(ResolveThreadsTest, ExplicitCountWinsAndIsCapped) {
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(3), 3);
  EXPECT_EQ(ResolveThreads(ThreadPool::kMaxWorkers + 17),
            ThreadPool::kMaxWorkers);
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_GE(ResolveThreads(-5), 1);
}

TEST(ResolveThreadsTest, EnvironmentOverridesDefault) {
  ASSERT_EQ(setenv("ITDB_THREADS", "2", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 2);
  EXPECT_EQ(ResolveThreads(0), 2);
  ASSERT_EQ(setenv("ITDB_THREADS", "garbage", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);  // Unparsable: hardware default.
  ASSERT_EQ(unsetenv("ITDB_THREADS"), 0);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const std::int64_t n = 10000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  ParallelFor(n, ParallelOptions{4, 1},
              [&](std::int64_t begin, std::int64_t end) {
                for (std::int64_t i = begin; i < end; ++i) {
                  hits[static_cast<std::size_t>(i)].fetch_add(1);
                }
              });
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SmallInputsRunOnTheCallingThread) {
  const auto caller = std::this_thread::get_id();
  bool inline_run = false;
  ParallelFor(8, ParallelOptions{4, /*grain=*/16},
              [&](std::int64_t begin, std::int64_t end) {
                inline_run = std::this_thread::get_id() == caller &&
                             begin == 0 && end == 8;
              });
  EXPECT_TRUE(inline_run);
}

std::vector<std::int64_t> AppendPairs(std::int64_t n, int threads) {
  auto result = ParallelAppend<std::int64_t>(
      n, ParallelOptions{threads, 1},
      [](std::int64_t i, std::vector<std::int64_t>& out) -> Status {
        out.push_back(2 * i);
        out.push_back(2 * i + 1);
        return Status::Ok();
      });
  EXPECT_TRUE(result.ok());
  return result.value();
}

TEST(ParallelAppendTest, PreservesInputOrderAtEveryThreadCount) {
  const std::int64_t n = 1237;  // Deliberately not a multiple of any piece
                                // count, to exercise uneven ranges.
  std::vector<std::int64_t> expected = AppendPairs(n, 1);
  ASSERT_EQ(expected.size(), static_cast<std::size_t>(2 * n));
  for (std::int64_t i = 0; i < 2 * n; ++i) {
    EXPECT_EQ(expected[static_cast<std::size_t>(i)], i);
  }
  for (int threads : {2, 3, 4, 8}) {
    EXPECT_EQ(AppendPairs(n, threads), expected) << threads << " threads";
  }
}

TEST(ParallelAppendTest, ReportsTheSmallestFailingIndex) {
  for (int threads : {1, 4}) {
    auto result = ParallelAppend<int>(
        1000, ParallelOptions{threads, 1},
        [](std::int64_t i, std::vector<int>&) -> Status {
          if (i >= 321) {
            return Status::InvalidArgument(std::to_string(i));
          }
          return Status::Ok();
        });
    ASSERT_FALSE(result.ok()) << threads << " threads";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(result.status().message(), "321") << threads << " threads";
  }
}

TEST(ParallelAppendTest, NestedRegionsRunInline) {
  // An outer sweep whose body itself calls ParallelAppend: the inner call
  // must run inline on the worker (no pool re-entry) and stay correct.
  auto outer = ParallelAppend<std::int64_t>(
      16, ParallelOptions{4, 1},
      [](std::int64_t i, std::vector<std::int64_t>& out) -> Status {
        auto inner = ParallelAppend<std::int64_t>(
            50, ParallelOptions{4, 1},
            [i](std::int64_t j, std::vector<std::int64_t>& acc) -> Status {
              acc.push_back(i * 50 + j);
              return Status::Ok();
            });
        ITDB_RETURN_IF_ERROR(inner.status());
        std::int64_t sum = 0;
        for (std::int64_t v : inner.value()) sum += v;
        out.push_back(sum);
        return Status::Ok();
      });
  ASSERT_TRUE(outer.ok());
  ASSERT_EQ(outer.value().size(), 16u);
  for (std::int64_t i = 0; i < 16; ++i) {
    // sum_{j<50} (50 i + j) = 2500 i + 1225.
    EXPECT_EQ(outer.value()[static_cast<std::size_t>(i)], 2500 * i + 1225);
  }
}

TEST(ParallelAppendTest, EmptyInputYieldsEmptyOutput) {
  auto result = ParallelAppend<int>(
      0, ParallelOptions{4, 1},
      [](std::int64_t, std::vector<int>&) -> Status {
        return Status::InvalidArgument("never called");
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(CancellationTest, NoTokenInstalledIsAlwaysOk) {
  EXPECT_EQ(CurrentCancellationToken(), nullptr);
  EXPECT_TRUE(CheckCancellation().ok());
}

TEST(CancellationTest, ScopeInstallsAndRestoresNested) {
  CancellationToken outer;
  CancellationToken inner;
  {
    CancellationScope a(&outer);
    EXPECT_EQ(CurrentCancellationToken(), &outer);
    {
      CancellationScope b(&inner);
      EXPECT_EQ(CurrentCancellationToken(), &inner);
    }
    EXPECT_EQ(CurrentCancellationToken(), &outer);
  }
  EXPECT_EQ(CurrentCancellationToken(), nullptr);
}

TEST(CancellationTest, CancelAndDeadlineExpireTheToken) {
  CancellationToken token;
  EXPECT_FALSE(token.Expired());
  token.SetDeadlineAfter(std::chrono::hours(1));
  EXPECT_FALSE(token.Expired());
  token.SetDeadlineAfter(std::chrono::nanoseconds(0));
  EXPECT_TRUE(token.Expired());

  CancellationToken cancelled;
  cancelled.Cancel();
  EXPECT_TRUE(cancelled.Expired());

  CancellationScope scope(&cancelled);
  Status s = CheckCancellation();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "cancelled");
}

TEST(CancellationTest, ExpiredDeadlineReportsDeadlineExceeded) {
  CancellationToken token;
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  CancellationScope scope(&token);
  Status s = CheckCancellation();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "deadline exceeded");
}

TEST(CancellationTest, ParallelForSkipsChunksOnceCancelled) {
  // Cancel from inside the first executed chunk: later chunk fetches must
  // skip their bodies (cooperatively -- the call still returns with every
  // chunk accounted as done).  The sequential path (threads == 1) is a
  // single chunk, so only the parallel path can be cut short.
  CancellationToken token;
  CancellationScope scope(&token);
  std::atomic<std::int64_t> executed{0};
  ParallelFor(100000, ParallelOptions{4, 1},
              [&](std::int64_t begin, std::int64_t end) {
                executed.fetch_add(end - begin);
                token.Cancel();
              });
  EXPECT_LT(executed.load(), 100000);
  EXPECT_FALSE(CheckCancellation().ok());
}

TEST(CancellationTest, SequentialParallelForSkipsBodyWhenAlreadyExpired) {
  CancellationToken token;
  token.Cancel();
  CancellationScope scope(&token);
  bool ran = false;
  ParallelFor(8, ParallelOptions{1, 1},
              [&](std::int64_t, std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(CancellationTest, ParallelForForwardsTokenToWorkers) {
  CancellationToken token;
  CancellationScope scope(&token);
  std::atomic<bool> seen_everywhere{true};
  ParallelFor(1000, ParallelOptions{4, 1},
              [&](std::int64_t, std::int64_t) {
                if (CurrentCancellationToken() != &token) {
                  seen_everywhere.store(false);
                }
              });
  EXPECT_TRUE(seen_everywhere.load());
}

TEST(CancellationTest, ParallelAppendFailsInsteadOfTruncating) {
  for (int threads : {1, 4}) {
    CancellationToken token;
    CancellationScope scope(&token);
    std::atomic<std::int64_t> calls{0};
    auto result = ParallelAppend<std::int64_t>(
        100000, ParallelOptions{threads, 1},
        [&](std::int64_t i, std::vector<std::int64_t>& out) -> Status {
          if (calls.fetch_add(1) == 0) token.Cancel();
          out.push_back(i);
          return Status::Ok();
        });
    ASSERT_FALSE(result.ok()) << threads << " threads";
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << threads << " threads";
  }
}

TEST(CancellationTest, UnexpiredTokenChangesNothing) {
  CancellationToken token;
  token.SetDeadlineAfter(std::chrono::hours(1));
  CancellationScope scope(&token);
  auto result = ParallelAppend<std::int64_t>(
      1237, ParallelOptions{4, 1},
      [](std::int64_t i, std::vector<std::int64_t>& out) -> Status {
        out.push_back(i);
        return Status::Ok();
      });
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1237u);
  for (std::int64_t i = 0; i < 1237; ++i) {
    EXPECT_EQ(result.value()[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, EnsureWorkersGrowsMonotonically) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_workers(), 2);
  pool.EnsureWorkers(4);
  EXPECT_EQ(pool.num_workers(), 4);
  pool.EnsureWorkers(1);  // Never shrinks.
  EXPECT_EQ(pool.num_workers(), 4);
}

}  // namespace
}  // namespace itdb
