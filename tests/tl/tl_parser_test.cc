#include "tl/parser.h"

#include <gtest/gtest.h>

namespace itdb {
namespace tl {
namespace {

std::string Reparse(const std::string& text) {
  Result<TlPtr> f = ParseTlFormula(text);
  EXPECT_TRUE(f.ok()) << f.status() << " for " << text;
  return f.ok() ? f.value()->ToString() : "<error>";
}

TEST(TlParserTest, Propositions) {
  EXPECT_EQ(Reparse("alert"), "alert");
  // Modal letters without an operand-shaped follower are propositions.
  EXPECT_EQ(Reparse("F"), "F");
  EXPECT_EQ(Reparse("G & F"), "(G & F)");
}

TEST(TlParserTest, UnaryOperators) {
  EXPECT_EQ(Reparse("!p"), "!(p)");
  EXPECT_EQ(Reparse("X(p)"), "X(p)");
  EXPECT_EQ(Reparse("Y(p)"), "Y(p)");
  EXPECT_EQ(Reparse("F(p)"), "F(p)");
  EXPECT_EQ(Reparse("G(p)"), "G(p)");
  EXPECT_EQ(Reparse("O(p)"), "P(p)");   // Once prints as P (past F).
  EXPECT_EQ(Reparse("H(p)"), "H(p)");
  EXPECT_EQ(Reparse("G!p"), "G(!(p))");
}

TEST(TlParserTest, BoundedOperators) {
  EXPECT_EQ(Reparse("F[0,5](ack)"), "F[0,5](ack)");
  EXPECT_EQ(Reparse("G[-2,2](ok)"), "G[-2,2](ok)");
  EXPECT_FALSE(ParseTlFormula("X[0,5](p)").ok());  // Bounds only on F/G.
}

TEST(TlParserTest, PrecedenceAndStructure) {
  // -> lowest, then |, then &, then U/S, then unary.
  EXPECT_EQ(Reparse("a -> b | c & d"), "(!(a) | (b | (c & d)))");
  EXPECT_EQ(Reparse("a & b U c"), "(a & (b U c))");
  EXPECT_EQ(Reparse("a U b U c"), "(a U (b U c))");
  EXPECT_EQ(Reparse("a S b"), "(a S b)");
  EXPECT_EQ(Reparse("(a | b) & c"), "((a | b) & c)");
}

TEST(TlParserTest, RequestResponseSpec) {
  EXPECT_EQ(Reparse("G(req -> F[0,5](ack))"),
            "G((!(req) | F[0,5](ack)))");
}

TEST(TlParserTest, AmpersandVariants) {
  EXPECT_EQ(Reparse("a & b"), Reparse("a && b"));
  EXPECT_EQ(Reparse("a | b"), Reparse("a || b"));
}

TEST(TlParserTest, Errors) {
  EXPECT_FALSE(ParseTlFormula("").ok());
  EXPECT_FALSE(ParseTlFormula("(p").ok());
  EXPECT_FALSE(ParseTlFormula("p q").ok());
  EXPECT_FALSE(ParseTlFormula("p U").ok());
  EXPECT_FALSE(ParseTlFormula("F[1](p)").ok());
  EXPECT_FALSE(ParseTlFormula("& p").ok());
}

}  // namespace
}  // namespace tl
}  // namespace itdb
