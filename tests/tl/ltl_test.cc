#include "tl/ltl.h"

#include <set>

#include <gtest/gtest.h>

#include "query/eval.h"

namespace itdb {
namespace tl {
namespace {

using F = TlFormula;

// p holds at {0, 5, 10, ...} going both ways: 0+5n.
// q holds at even instants >= 4.
// r holds at {1} only.
Database TestDb() {
  Result<Database> db = Database::FromText(R"(
    relation p(T: time) { [5n]; }
    relation q(T: time) { [2n] : T >= 4; }
    relation r(T: time) { [1]; }
  )");
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

std::set<std::int64_t> SatWindow(const Database& db, const TlPtr& f,
                                 std::int64_t lo, std::int64_t hi) {
  Result<GeneralizedRelation> s = SatisfactionSet(db, f);
  EXPECT_TRUE(s.ok()) << s.status() << " for " << f->ToString();
  std::set<std::int64_t> out;
  if (!s.ok()) return out;
  for (const ConcreteRow& row : s.value().Enumerate(lo, hi)) {
    out.insert(row.temporal[0]);
  }
  return out;
}

// Reference: evaluate an equivalent first-order query (the query engine is
// itself property-tested against brute force).
std::set<std::int64_t> QueryWindow(const Database& db, const std::string& text,
                                   std::int64_t lo, std::int64_t hi) {
  Result<GeneralizedRelation> r = query::EvalQueryString(db, text);
  EXPECT_TRUE(r.ok()) << r.status() << " for " << text;
  std::set<std::int64_t> out;
  if (!r.ok()) return out;
  for (const ConcreteRow& row : r.value().Enumerate(lo, hi)) {
    out.insert(row.temporal[0]);
  }
  return out;
}

constexpr std::int64_t kLo = -20, kHi = 20;

TEST(LtlTest, PropAndBooleans) {
  Database db = TestDb();
  EXPECT_EQ(SatWindow(db, F::Prop("p"), kLo, kHi),
            QueryWindow(db, "p(t)", kLo, kHi));
  EXPECT_EQ(SatWindow(db, F::Not(F::Prop("p")), kLo, kHi),
            QueryWindow(db, "NOT p(t)", kLo, kHi));
  EXPECT_EQ(SatWindow(db, F::And(F::Prop("p"), F::Prop("q")), kLo, kHi),
            QueryWindow(db, "p(t) AND q(t)", kLo, kHi));
  EXPECT_EQ(SatWindow(db, F::Or(F::Prop("p"), F::Prop("r")), kLo, kHi),
            QueryWindow(db, "p(t) OR r(t)", kLo, kHi));
}

TEST(LtlTest, NextAndPrev) {
  Database db = TestDb();
  EXPECT_EQ(SatWindow(db, F::Next(F::Prop("p")), kLo, kHi),
            QueryWindow(db, "p(t + 1)", kLo, kHi));
  EXPECT_EQ(SatWindow(db, F::Prev(F::Prop("p")), kLo, kHi),
            QueryWindow(db, "p(t - 1)", kLo, kHi));
}

TEST(LtlTest, EventuallyAndOnceMatchQueries) {
  Database db = TestDb();
  EXPECT_EQ(SatWindow(db, F::Eventually(F::Prop("r")), kLo, kHi),
            QueryWindow(db, "EXISTS u . r(u) AND t <= u", kLo, kHi));
  EXPECT_EQ(SatWindow(db, F::Once(F::Prop("r")), kLo, kHi),
            QueryWindow(db, "EXISTS u . r(u) AND u <= t", kLo, kHi));
}

TEST(LtlTest, EventuallyOfPeriodicIsEverything) {
  Database db = TestDb();
  // p repeats forever in both directions: F p == P p == Z.
  EXPECT_TRUE(HoldsEverywhere(db, F::Eventually(F::Prop("p"))).value());
  EXPECT_TRUE(HoldsEverywhere(db, F::Once(F::Prop("p"))).value());
  // But G p fails everywhere (gaps repeat too).
  Result<GeneralizedRelation> g =
      SatisfactionSet(db, F::Always(F::Prop("p")));
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(IsEmpty(g.value()).value());
}

TEST(LtlTest, AlwaysMatchesQuery) {
  Database db = TestDb();
  // G q: q holds from every u >= t -- true iff t >= 4 and... q only covers
  // evens, so G q is empty; check against the query formulation instead of
  // intuition.
  EXPECT_EQ(SatWindow(db, F::Always(F::Prop("q")), kLo, kHi),
            QueryWindow(db, "FORALL u . t <= u -> q(u)", kLo, kHi));
  EXPECT_EQ(SatWindow(db, F::Historically(F::Prop("q")), kLo, kHi),
            QueryWindow(db, "FORALL u . u <= t -> q(u)", kLo, kHi));
}

TEST(LtlTest, InfinitelyOftenVsEventuallyAlways) {
  Database db = TestDb();
  // GF q == Z (q holds on all evens >= 4: infinitely often from anywhere).
  EXPECT_TRUE(
      HoldsEverywhere(db, F::Always(F::Eventually(F::Prop("q")))).value());
  // FG q == empty (odd gaps recur forever).
  Result<GeneralizedRelation> fg =
      SatisfactionSet(db, F::Eventually(F::Always(F::Prop("q"))));
  ASSERT_TRUE(fg.ok());
  EXPECT_TRUE(IsEmpty(fg.value()).value());
  // GF r == empty (r holds once, at 1: not infinitely often).
  Result<GeneralizedRelation> gf =
      SatisfactionSet(db, F::Always(F::Eventually(F::Prop("r"))));
  ASSERT_TRUE(gf.ok());
  EXPECT_TRUE(IsEmpty(gf.value()).value());
  // ...but F r holds up to instant 1.
  std::set<std::int64_t> fr = SatWindow(db, F::Eventually(F::Prop("r")), -5, 5);
  std::set<std::int64_t> expect;
  for (std::int64_t t = -5; t <= 1; ++t) expect.insert(t);
  EXPECT_EQ(fr, expect);
}

TEST(LtlTest, BoundedOperators) {
  Database db = TestDb();
  // F[0,3] p: some multiple of 5 within the next 3 steps: residues
  // {0, 2, 3, 4} mod 5.
  std::set<std::int64_t> got =
      SatWindow(db, F::EventuallyWithin(F::Prop("p"), 0, 3), kLo, kHi);
  std::set<std::int64_t> expect;
  for (std::int64_t t = kLo; t <= kHi; ++t) {
    std::int64_t r5 = ((t % 5) + 5) % 5;
    if (r5 != 1) expect.insert(t);
  }
  EXPECT_EQ(got, expect);
  // G[0,1] q: q at both t and t+1 -- impossible (q covers evens only).
  Result<GeneralizedRelation> g01 =
      SatisfactionSet(db, F::AlwaysWithin(F::Prop("q"), 0, 1));
  ASSERT_TRUE(g01.ok());
  EXPECT_TRUE(IsEmpty(g01.value()).value());
  // Negative offsets reach into the past: F[-1,0] r holds at 1 and 2.
  EXPECT_EQ(SatWindow(db, F::EventuallyWithin(F::Prop("r"), -1, 0), -5, 5),
            (std::set<std::int64_t>{1, 2}));
  EXPECT_FALSE(
      SatisfactionSet(db, F::EventuallyWithin(F::Prop("p"), 3, 1)).ok());
}

TEST(LtlTest, UntilMatchesQueryFormulation) {
  Database db = TestDb();
  // q U p: a p-point is reached while q holds on the way.
  EXPECT_EQ(
      SatWindow(db, F::Until(F::Prop("q"), F::Prop("p")), kLo, kHi),
      QueryWindow(db,
                  "EXISTS u . p(u) AND t <= u AND "
                  "(FORALL v . (t <= v AND v <= u - 1) -> q(v))",
                  kLo, kHi));
}

TEST(LtlTest, SinceMatchesQueryFormulation) {
  Database db = TestDb();
  EXPECT_EQ(
      SatWindow(db, F::Since(F::Prop("q"), F::Prop("p")), kLo, kHi),
      QueryWindow(db,
                  "EXISTS u . p(u) AND u <= t AND "
                  "(FORALL v . (u + 1 <= v AND v <= t) -> q(v))",
                  kLo, kHi));
}

TEST(LtlTest, UntilBaseCase) {
  Database db = TestDb();
  // anything U p holds wherever p holds (empty waiting interval).
  std::set<std::int64_t> sat =
      SatWindow(db, F::Until(F::Prop("r"), F::Prop("p")), kLo, kHi);
  for (std::int64_t t = kLo; t <= kHi; t += 5) {
    if (((t % 5) + 5) % 5 == 0) {
      EXPECT_TRUE(sat.contains(t)) << t;
    }
  }
}

TEST(LtlTest, ImpliesAndRequestResponse) {
  Database db = TestDb();
  // "Every r is followed by a p within 5 steps" -- a classical
  // request/response property; r = {1}, next p at 5: holds everywhere.
  TlPtr spec = F::Always(F::Implies(
      F::Prop("r"), F::EventuallyWithin(F::Prop("p"), 0, 5)));
  EXPECT_TRUE(HoldsEverywhere(db, spec).value());
  // Within 3 steps it fails (gap 1 -> 5 is 4).
  TlPtr tight = F::Always(F::Implies(
      F::Prop("r"), F::EventuallyWithin(F::Prop("p"), 0, 3)));
  EXPECT_FALSE(HoldsEverywhere(db, tight).value());
}

TEST(LtlTest, WeakUntilAndRelease) {
  Database db = TestDb();
  // q W p vs q U p: they differ exactly where G q would rescue -- here G q
  // is empty, so they coincide.
  Result<GeneralizedRelation> w =
      SatisfactionSet(db, F::WeakUntil(F::Prop("q"), F::Prop("p")));
  Result<GeneralizedRelation> u =
      SatisfactionSet(db, F::Until(F::Prop("q"), F::Prop("p")));
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(w.value().Enumerate(kLo, kHi), u.value().Enumerate(kLo, kHi));
  // true W false == G true == everything; true U false == empty.
  TlPtr truth = F::Or(F::Prop("p"), F::Not(F::Prop("p")));
  TlPtr falsity = F::And(F::Prop("p"), F::Not(F::Prop("p")));
  EXPECT_TRUE(HoldsEverywhere(db, F::WeakUntil(truth, falsity)).value());
  Result<GeneralizedRelation> uf =
      SatisfactionSet(db, F::Until(truth, falsity));
  ASSERT_TRUE(uf.ok());
  EXPECT_TRUE(IsEmpty(uf.value()).value());
  // Release duality: p R q == !( !p U !q ); check against the direct
  // formulation on the satisfaction sets.
  Result<GeneralizedRelation> rel =
      SatisfactionSet(db, F::Release(F::Prop("r"), F::Prop("q")));
  ASSERT_TRUE(rel.ok());
  Result<GeneralizedRelation> dual = SatisfactionSet(
      db, F::Not(F::Until(F::Not(F::Prop("r")), F::Not(F::Prop("q")))));
  ASSERT_TRUE(dual.ok());
  EXPECT_EQ(rel.value().Enumerate(kLo, kHi), dual.value().Enumerate(kLo, kHi));
}

TEST(LtlTest, HoldsAtSpotChecks) {
  Database db = TestDb();
  EXPECT_TRUE(HoldsAt(db, F::Prop("p"), 10).value());
  EXPECT_FALSE(HoldsAt(db, F::Prop("p"), 11).value());
  EXPECT_TRUE(HoldsAt(db, F::Next(F::Prop("p")), 9).value());
  EXPECT_TRUE(HoldsAt(db, F::Eventually(F::Prop("r")), -100).value());
  EXPECT_FALSE(HoldsAt(db, F::Eventually(F::Prop("r")), 2).value());
}

TEST(LtlTest, PropMustBeUnaryTemporal) {
  Result<Database> db = Database::FromText(R"(
    relation Pair(A: time, B: time) { [n, n]; }
    relation WithData(T: time, W: string) { [n | "x"]; }
  )");
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(SatisfactionSet(db.value(), F::Prop("Pair")).ok());
  EXPECT_FALSE(SatisfactionSet(db.value(), F::Prop("WithData")).ok());
  EXPECT_FALSE(SatisfactionSet(db.value(), F::Prop("Missing")).ok());
}

TEST(LtlTest, ToStringReadable) {
  TlPtr f = F::Always(F::Implies(F::Prop("req"),
                                 F::EventuallyWithin(F::Prop("ack"), 0, 5)));
  EXPECT_EQ(f->ToString(), "G((!(req) | F[0,5](ack)))");
}

}  // namespace
}  // namespace tl
}  // namespace itdb
