#include "interval/allen.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace itdb {
namespace {

TEST(AllenTest, NamesAreStableAndDistinct) {
  std::set<std::string_view> names;
  for (AllenRelation rel : kAllAllenRelations) {
    EXPECT_TRUE(names.insert(AllenRelationName(rel)).second);
  }
  EXPECT_EQ(names.size(), 13u);
}

TEST(AllenTest, GroundRelationsTextbookCases) {
  // [1,3] vs [5,8] and friends.
  EXPECT_TRUE(AllenHolds(AllenRelation::kBefore, 1, 3, 5, 8));
  EXPECT_TRUE(AllenHolds(AllenRelation::kMeets, 1, 3, 3, 8));
  EXPECT_TRUE(AllenHolds(AllenRelation::kOverlaps, 1, 5, 3, 8));
  EXPECT_TRUE(AllenHolds(AllenRelation::kStarts, 1, 3, 1, 8));
  EXPECT_TRUE(AllenHolds(AllenRelation::kDuring, 4, 6, 1, 8));
  EXPECT_TRUE(AllenHolds(AllenRelation::kFinishes, 5, 8, 1, 8));
  EXPECT_TRUE(AllenHolds(AllenRelation::kEquals, 1, 8, 1, 8));
  EXPECT_TRUE(AllenHolds(AllenRelation::kAfter, 5, 8, 1, 3));
  EXPECT_TRUE(AllenHolds(AllenRelation::kMetBy, 3, 8, 1, 3));
  EXPECT_TRUE(AllenHolds(AllenRelation::kOverlappedBy, 3, 8, 1, 5));
  EXPECT_TRUE(AllenHolds(AllenRelation::kStartedBy, 1, 8, 1, 3));
  EXPECT_TRUE(AllenHolds(AllenRelation::kContains, 1, 8, 4, 6));
  EXPECT_TRUE(AllenHolds(AllenRelation::kFinishedBy, 1, 8, 5, 8));
}

TEST(AllenTest, ThirteenRelationsPartitionStrictIntervalPairs) {
  // For strict intervals, exactly one of the 13 relations holds between any
  // pair -- Allen's foundational property.
  for (std::int64_t s1 = -4; s1 <= 4; ++s1) {
    for (std::int64_t e1 = s1 + 1; e1 <= 5; ++e1) {
      for (std::int64_t s2 = -4; s2 <= 4; ++s2) {
        for (std::int64_t e2 = s2 + 1; e2 <= 5; ++e2) {
          int holds = 0;
          for (AllenRelation rel : kAllAllenRelations) {
            if (AllenHolds(rel, s1, e1, s2, e2)) ++holds;
          }
          EXPECT_EQ(holds, 1) << "(" << s1 << "," << e1 << ") vs (" << s2
                              << "," << e2 << ")";
        }
      }
    }
  }
}

TEST(AllenTest, InverseIsInvolutionAndConverse) {
  for (AllenRelation rel : kAllAllenRelations) {
    EXPECT_EQ(AllenInverse(AllenInverse(rel)), rel);
  }
  for (std::int64_t s1 = -2; s1 <= 2; ++s1) {
    for (std::int64_t e1 = s1 + 1; e1 <= 3; ++e1) {
      for (std::int64_t s2 = -2; s2 <= 2; ++s2) {
        for (std::int64_t e2 = s2 + 1; e2 <= 3; ++e2) {
          for (AllenRelation rel : kAllAllenRelations) {
            EXPECT_EQ(AllenHolds(rel, s1, e1, s2, e2),
                      AllenHolds(AllenInverse(rel), s2, e2, s1, e1));
          }
        }
      }
    }
  }
}

TEST(AllenTest, ConditionsMatchGroundSemantics) {
  // The constraint encoding over a 4-column universe must carve out exactly
  // the pairs where the ground relation holds.
  for (AllenRelation rel : kAllAllenRelations) {
    GeneralizedRelation universe(Schema::Temporal(4));
    ASSERT_TRUE(universe
                    .AddTuple(GeneralizedTuple(
                        {Lrp::Make(0, 1), Lrp::Make(0, 1), Lrp::Make(0, 1),
                         Lrp::Make(0, 1)}))
                    .ok());
    GeneralizedRelation selected = universe;
    for (const TemporalCondition& cond : AllenConditions(rel, 0, 1, 2, 3)) {
      Result<GeneralizedRelation> s = SelectTemporal(selected, cond);
      ASSERT_TRUE(s.ok());
      selected = std::move(s).value();
    }
    for (std::int64_t s1 = -2; s1 <= 2; ++s1) {
      for (std::int64_t e1 = s1 + 1; e1 <= 3; ++e1) {
        for (std::int64_t s2 = -2; s2 <= 2; ++s2) {
          for (std::int64_t e2 = s2 + 1; e2 <= 3; ++e2) {
            EXPECT_EQ(selected.Contains({{s1, e1, s2, e2}, {}}),
                      AllenHolds(rel, s1, e1, s2, e2))
                << AllenRelationName(rel);
          }
        }
      }
    }
  }
}

GeneralizedRelation PeriodicIntervals(std::int64_t start, std::int64_t len,
                                      std::int64_t period,
                                      const char* start_name,
                                      const char* end_name) {
  GeneralizedRelation r(Schema({start_name, end_name}, {}, {}));
  GeneralizedTuple t(
      {Lrp::Make(start, period), Lrp::Make(start + len, period)});
  t.mutable_constraints().AddDifferenceEquality(0, 1, -len);
  EXPECT_TRUE(r.AddTuple(std::move(t)).ok());
  return r;
}

TEST(AllenJoinTest, DuringOnPeriodicIntervals) {
  // Short intervals [2+8n, 4+8n] inside long ones [8m, 6+8m]: "during"
  // holds exactly when the phases align (n == m).
  GeneralizedRelation small = PeriodicIntervals(2, 2, 8, "S", "E");
  GeneralizedRelation big = PeriodicIntervals(0, 6, 8, "BS", "BE");
  Result<GeneralizedRelation> j =
      AllenJoin(small, big, AllenRelation::kDuring);
  ASSERT_TRUE(j.ok()) << j.status();
  EXPECT_TRUE(j.value().Contains({{2, 4, 0, 6}, {}}));
  EXPECT_TRUE(j.value().Contains({{10, 12, 8, 14}, {}}));
  EXPECT_FALSE(j.value().Contains({{2, 4, 8, 14}, {}}));
  // And semantics agree with brute force on a window.
  std::set<std::vector<std::int64_t>> expect;
  for (const ConcreteRow& a : small.Enumerate(-20, 20)) {
    for (const ConcreteRow& b : big.Enumerate(-20, 20)) {
      if (AllenHolds(AllenRelation::kDuring, a.temporal[0], a.temporal[1],
                     b.temporal[0], b.temporal[1])) {
        expect.insert({a.temporal[0], a.temporal[1], b.temporal[0],
                       b.temporal[1]});
      }
    }
  }
  std::set<std::vector<std::int64_t>> got;
  for (const ConcreteRow& row : j.value().Enumerate(-20, 20)) {
    got.insert(row.temporal);
  }
  EXPECT_EQ(got, expect);
}

TEST(AllenJoinTest, SweepAllRelationsAgainstBruteForce) {
  GeneralizedRelation a = PeriodicIntervals(0, 3, 6, "S", "E");
  GeneralizedRelation b = PeriodicIntervals(1, 2, 4, "BS", "BE");
  for (AllenRelation rel : kAllAllenRelations) {
    Result<GeneralizedRelation> j = AllenJoin(a, b, rel);
    ASSERT_TRUE(j.ok()) << AllenRelationName(rel);
    std::set<std::vector<std::int64_t>> expect;
    for (const ConcreteRow& ra : a.Enumerate(-12, 12)) {
      for (const ConcreteRow& rb : b.Enumerate(-12, 12)) {
        if (AllenHolds(rel, ra.temporal[0], ra.temporal[1], rb.temporal[0],
                       rb.temporal[1])) {
          expect.insert({ra.temporal[0], ra.temporal[1], rb.temporal[0],
                         rb.temporal[1]});
        }
      }
    }
    std::set<std::vector<std::int64_t>> got;
    for (const ConcreteRow& row : j.value().Enumerate(-12, 12)) {
      got.insert(row.temporal);
    }
    EXPECT_EQ(got, expect) << AllenRelationName(rel);
  }
}

TEST(AllenJoinTest, NameCollisionsAutoSuffixed) {
  GeneralizedRelation a = PeriodicIntervals(0, 3, 6, "S", "E");
  GeneralizedRelation b = PeriodicIntervals(1, 2, 4, "S", "E");
  Result<GeneralizedRelation> j = AllenJoin(a, b, AllenRelation::kBefore);
  ASSERT_TRUE(j.ok()) << j.status();
  EXPECT_EQ(j.value().schema().temporal_names(),
            (std::vector<std::string>{"S", "E", "S_r", "E_r"}));
}

TEST(AllenJoinTest, RequiresIntervalArity) {
  GeneralizedRelation unary(Schema::Temporal(1));
  GeneralizedRelation pair(Schema::Temporal(2));
  EXPECT_FALSE(AllenJoin(unary, pair, AllenRelation::kBefore).ok());
}

// Brute-force composition for cross-checking AllenCompose.
std::set<AllenRelation> BruteCompose(AllenRelation r1, AllenRelation r2) {
  std::set<AllenRelation> out;
  constexpr std::int64_t kLo = -6, kHi = 6;
  for (std::int64_t s1 = kLo; s1 <= kHi; ++s1) {
    for (std::int64_t e1 = s1 + 1; e1 <= kHi + 1; ++e1) {
      for (std::int64_t s2 = kLo; s2 <= kHi; ++s2) {
        for (std::int64_t e2 = s2 + 1; e2 <= kHi + 1; ++e2) {
          if (!AllenHolds(r1, s1, e1, s2, e2)) continue;
          for (std::int64_t s3 = kLo; s3 <= kHi; ++s3) {
            for (std::int64_t e3 = s3 + 1; e3 <= kHi + 1; ++e3) {
              if (!AllenHolds(r2, s2, e2, s3, e3)) continue;
              for (AllenRelation rel : kAllAllenRelations) {
                if (AllenHolds(rel, s1, e1, s3, e3)) out.insert(rel);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

TEST(AllenComposeTest, TextbookEntries) {
  // before ; before = {before}.
  Result<std::vector<AllenRelation>> c =
      AllenCompose(AllenRelation::kBefore, AllenRelation::kBefore);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c.value(), std::vector<AllenRelation>{AllenRelation::kBefore});
  // meets ; meets = {before}.
  c = AllenCompose(AllenRelation::kMeets, AllenRelation::kMeets);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), std::vector<AllenRelation>{AllenRelation::kBefore});
  // equals is the identity of composition.
  for (AllenRelation rel :
       {AllenRelation::kOverlaps, AllenRelation::kDuring,
        AllenRelation::kFinishes}) {
    c = AllenCompose(AllenRelation::kEquals, rel);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.value(), std::vector<AllenRelation>{rel});
    c = AllenCompose(rel, AllenRelation::kEquals);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.value(), std::vector<AllenRelation>{rel});
  }
  // during ; during = {during}.
  c = AllenCompose(AllenRelation::kDuring, AllenRelation::kDuring);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), std::vector<AllenRelation>{AllenRelation::kDuring});
}

// The full 13x13 composition table, derived symbolically, must match brute
// force.  Parameterized over the left operand to keep per-case runtime low.
class AllenComposeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(AllenComposeSweepTest, MatchesBruteForce) {
  AllenRelation r1 = kAllAllenRelations[GetParam()];
  for (AllenRelation r2 : kAllAllenRelations) {
    Result<std::vector<AllenRelation>> c = AllenCompose(r1, r2);
    ASSERT_TRUE(c.ok()) << c.status();
    std::set<AllenRelation> got(c.value().begin(), c.value().end());
    EXPECT_EQ(got, BruteCompose(r1, r2))
        << AllenRelationName(r1) << " ; " << AllenRelationName(r2);
  }
}

INSTANTIATE_TEST_SUITE_P(LeftOperand, AllenComposeSweepTest,
                         ::testing::Range(0, 13));

TEST(AllenTest, RestrictToStrictIntervals) {
  GeneralizedRelation r(Schema::Temporal(2));
  ASSERT_TRUE(
      r.AddTuple(GeneralizedTuple({Lrp::Make(0, 1), Lrp::Make(0, 1)})).ok());
  Result<GeneralizedRelation> s = RestrictToStrictIntervals(r, 0, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.value().Contains({{1, 2}, {}}));
  EXPECT_FALSE(s.value().Contains({{2, 2}, {}}));
  EXPECT_FALSE(s.value().Contains({{3, 2}, {}}));
}

}  // namespace
}  // namespace itdb
