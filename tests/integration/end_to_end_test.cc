// End-to-end integration: text format -> algebra -> queries -> temporal
// logic -> coalescing -> save/reload, all on one scenario, checking
// cross-layer consistency at every step.

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/algebra.h"
#include "core/coalesce.h"
#include "finite/finite_relation.h"
#include "interval/allen.h"
#include "query/eval.h"
#include "shell/shell.h"
#include "storage/database.h"
#include "tl/ltl.h"
#include "tl/parser.h"

namespace itdb {
namespace {

constexpr const char* kFactory = R"(
relation Shift(S: time, E: time, Team: string) {
  [24n, 8+24n   | "day"]   : S = E - 8;
  [8+24n, 16+24n | "late"] : S = E - 8;
  [16+24n, 24+24n | "night"] : S = E - 8;
}
relation Inspection(T: time) {
  [20+48n];
}
)";

TEST(EndToEndTest, FactoryScenario) {
  // 1. Load from the text format.
  Result<Database> parsed = Database::FromText(kFactory);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Database db = std::move(parsed).value();

  // 2. The shifts tile the timeline: FO query over all of Z.
  Result<bool> covered = query::EvalBooleanQueryString(
      db, "FORALL t . EXISTS s . EXISTS e . EXISTS w . "
          "Shift(s, e, w) AND s <= t AND t < e");
  ASSERT_TRUE(covered.ok()) << covered.status();
  EXPECT_TRUE(covered.value());

  // 3. Inspections always land inside the night shift (20 mod 24 is in
  // [16, 24)); verify via query AND temporal logic, then check agreement.
  Result<bool> in_night = query::EvalBooleanQueryString(
      db, "FORALL t . Inspection(t) -> (EXISTS s . EXISTS e . "
          "Shift(s, e, \"night\") AND s <= t AND t < e)");
  ASSERT_TRUE(in_night.ok());
  EXPECT_TRUE(in_night.value());

  // 4. Temporal logic on derived unary relations: project shift starts.
  Result<GeneralizedRelation> night_starts = query::EvalQueryString(
      db, "EXISTS e . Shift(t, e, \"night\")");
  ASSERT_TRUE(night_starts.ok());
  Result<GeneralizedRelation> renamed =
      Rename(night_starts.value(), {{"t", "T"}});
  ASSERT_TRUE(renamed.ok());
  db.Put("night_start", renamed.value());
  Result<tl::TlPtr> spec = tl::ParseTlFormula(
      "G(inspection -> O(night_start))");
  // The relation names in the TL layer are database names; register the
  // inspection relation under the lowercase name used in the formula.
  Result<GeneralizedRelation> inspection = db.Get("Inspection");
  ASSERT_TRUE(inspection.ok());
  db.Put("inspection", inspection.value());
  ASSERT_TRUE(spec.ok()) << spec.status();
  Result<bool> spec_holds = tl::HoldsEverywhere(db, spec.value());
  ASSERT_TRUE(spec_holds.ok()) << spec_holds.status();
  EXPECT_TRUE(spec_holds.value());

  // 5. Allen reasoning: every night shift CONTAINS some inspection-derived
  // unit interval [t, t+1]?  Build the inspection intervals and join.
  Result<GeneralizedRelation> insp_points = db.Get("Inspection");
  ASSERT_TRUE(insp_points.ok());
  GeneralizedRelation insp_intervals(Schema({"IS", "IE"}, {}, {}));
  for (const GeneralizedTuple& t : insp_points.value().tuples()) {
    GeneralizedTuple iv({t.lrp(0), Lrp::Make(t.lrp(0).offset() + 1,
                                             t.lrp(0).period())});
    iv.mutable_constraints().AddDifferenceEquality(0, 1, -1);
    ASSERT_TRUE(insp_intervals.AddTuple(std::move(iv)).ok());
  }
  Result<GeneralizedRelation> shifts = db.Get("Shift");
  ASSERT_TRUE(shifts.ok());
  Result<GeneralizedRelation> night = SelectData(
      shifts.value(), 0, CmpOp::kEq, Value("night"));
  ASSERT_TRUE(night.ok());
  Result<GeneralizedRelation> during =
      AllenJoin(insp_intervals, night.value(), AllenRelation::kDuring);
  ASSERT_TRUE(during.ok()) << during.status();
  Result<bool> some_during = IsEmpty(during.value());
  ASSERT_TRUE(some_during.ok());
  EXPECT_FALSE(some_during.value());

  // 6. Complement + coalesce: the uncovered instants of the day shift.
  Result<GeneralizedRelation> day_cover = query::EvalQueryString(
      db, "EXISTS s . EXISTS e . Shift(s, e, \"day\") AND s <= t AND t < e");
  ASSERT_TRUE(day_cover.ok());
  AlgebraOptions coalescing;
  coalescing.coalesce = true;
  Result<GeneralizedRelation> gaps =
      Complement(day_cover.value(), coalescing);
  ASSERT_TRUE(gaps.ok());
  // Day shift covers [0, 8) of every 24: the gap is 16 residues of period
  // 24.  Residue coalescing pairs 8 of them into period-12 classes (the
  // merge optimum for an interval-shaped gap), leaving 12 tuples.
  EXPECT_LT(gaps.value().size(), 16);
  EXPECT_EQ(gaps.value().size(), 12);
  FiniteRelation gap_window =
      FiniteRelation::Materialize(gaps.value(), 0, 23);
  EXPECT_EQ(gap_window.size(), 16);

  // 7. Round-trip the whole catalog through the text format.
  std::string text = db.ToText();
  Result<Database> again = Database::FromText(text);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
  for (const std::string& name : db.Names()) {
    Result<GeneralizedRelation> a = db.Get(name);
    Result<GeneralizedRelation> b = again.value().Get(name);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    Result<bool> same = Equivalent(a.value(), b.value());
    ASSERT_TRUE(same.ok()) << name;
    EXPECT_TRUE(same.value()) << name;
  }

  // 8. Drive the same scenario through the shell.
  std::string path = ::testing::TempDir() + "/factory.itdb";
  {
    std::ofstream file(path);
    file << kFactory;
  }
  std::istringstream script(
      "load " + path +
      "\n"
      "ask FORALL t . EXISTS s . EXISTS e . EXISTS w . Shift(s, e, w) AND "
      "s <= t AND t < e\n"
      "witness Shift\n");
  std::ostringstream out;
  Database shell_db;
  Status shell_status = RunShell(script, out, shell_db);
  EXPECT_TRUE(shell_status.ok());
  EXPECT_NE(out.str().find("true"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("(" ), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace itdb
