// Replays every checked-in repro in tests/fuzz/corpus/ against the clean
// engine.  Each file is a (shrunk) case that once exposed a discrepancy or
// exercises a construction the paper calls out as delicate (punctured lrp
// subtraction, De Morgan complements, difference-equality joins); all must
// pass every oracle on the current engine.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"

#ifndef ITDB_FUZZ_CORPUS_DIR
#error "ITDB_FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace itdb {
namespace fuzz {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(ITDB_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() == ".itdb") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplayTest, CorpusIsNotEmpty) {
  EXPECT_GE(CorpusFiles().size(), 5u);
}

TEST(CorpusReplayTest, EveryCorpusCasePassesAllOracles) {
  for (const std::filesystem::path& path : CorpusFiles()) {
    std::ifstream file(path);
    ASSERT_TRUE(file) << path;
    std::stringstream buffer;
    buffer << file.rdbuf();

    Result<CaseOutcome> outcome = ReplayRepro(buffer.str());
    ASSERT_TRUE(outcome.ok()) << path << ": " << outcome.status();
    EXPECT_FALSE(outcome->skipped)
        << path << ": " << outcome->skip_reason;
    EXPECT_FALSE(outcome->failure.has_value())
        << path << ": [" << outcome->failure->oracle << "] "
        << outcome->failure->detail;
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace itdb
