#include "fuzz/query_oracle.h"

#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "fuzz/query_gen.h"
#include "query/ast.h"
#include "query/eval.h"

namespace itdb {
namespace fuzz {
namespace {

using query::Query;
using query::QueryCmp;
using query::QueryPtr;
using query::Term;

TEST(QueryGenTest, DeterministicForFixedSeed) {
  Database db = MakeRandomDatabase(7, {});
  QueryGenConfig cfg;
  QueryPtr a = MakeRandomQuery(42, db, cfg);
  QueryPtr b = MakeRandomQuery(42, db, cfg);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->ToString(), b->ToString());
  QueryPtr c = MakeRandomQuery(43, db, cfg);
  EXPECT_NE(a->ToString(), c->ToString());
}

TEST(QueryOracleTest, PassesOnAHandWrittenCase) {
  Database db = MakeRandomDatabase(3, {});
  // U0(t) AND t <= 4: well-formed, no analysis findings expected.
  QueryPtr q = Query::And(
      Query::Atom("U0", {Term::Variable("t")}),
      Query::Compare(Term::Variable("t"), QueryCmp::kLe, Term::Int(4)));
  QueryCaseOutcome outcome = CheckQueryCase(db, q);
  EXPECT_FALSE(outcome.skipped);
  EXPECT_FALSE(outcome.failure.has_value()) << *outcome.failure;
  EXPECT_EQ(outcome.variants_checked, 5);
}

TEST(QueryOracleTest, ChecksAProvenEmptySubplan) {
  Database db = MakeRandomDatabase(3, {});
  // The right OR branch is a DBM contradiction; the analyzer proves it
  // empty and the oracle evaluates it standalone.
  QueryPtr contradiction = Query::And(
      Query::Compare(Term::Variable("t"), QueryCmp::kGt, Term::Int(3)),
      Query::Compare(Term::Variable("t"), QueryCmp::kLt, Term::Int(3)));
  QueryPtr q = Query::Or(
      Query::Atom("U0", {Term::Variable("t")}),
      Query::And(Query::Atom("U0", {Term::Variable("t")}),
                 std::move(contradiction)));
  QueryCaseOutcome outcome = CheckQueryCase(db, q);
  EXPECT_FALSE(outcome.skipped);
  EXPECT_FALSE(outcome.failure.has_value()) << *outcome.failure;
  EXPECT_GT(outcome.empties_checked, 0);
}

// The acceptance gate: 500 random queries, zero violations of either
// oracle -- analysis never changes results (at 1 and N threads), and every
// proven-empty subplan really is empty.
TEST(QueryFuzzTest, FiveHundredCasesNoFindings) {
  QueryFuzzConfig config;
  config.seed = 20260806;
  config.cases = 500;
  ASSERT_GE(config.cases, 500);
  QueryFuzzReport report = RunQueryFuzz(config);
  EXPECT_TRUE(report.ok()) << report.Summary()
                           << (report.failures.empty()
                                   ? ""
                                   : "\nfirst: " +
                                         report.failures[0].description +
                                         "\nquery: " +
                                         report.failures[0].query);
  EXPECT_EQ(report.cases, 500);
  // The generator's contradiction/dead-branch rates make both oracles
  // fire many times over 500 cases; a silent no-op run is itself a bug.
  EXPECT_GT(report.variants_checked, 1000);
  EXPECT_GT(report.empties_checked, 20) << report.Summary();
}

}  // namespace
}  // namespace fuzz
}  // namespace itdb
