#include "fuzz/query_oracle.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "fuzz/query_gen.h"
#include "query/ast.h"
#include "query/eval.h"
#include "query/parser.h"

#ifndef ITDB_FUZZ_CORPUS_DIR
#error "ITDB_FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace itdb {
namespace fuzz {
namespace {

using query::Query;
using query::QueryCmp;
using query::QueryPtr;
using query::Term;

TEST(QueryGenTest, DeterministicForFixedSeed) {
  Database db = MakeRandomDatabase(7, {});
  QueryGenConfig cfg;
  QueryPtr a = MakeRandomQuery(42, db, cfg);
  QueryPtr b = MakeRandomQuery(42, db, cfg);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->ToString(), b->ToString());
  QueryPtr c = MakeRandomQuery(43, db, cfg);
  EXPECT_NE(a->ToString(), c->ToString());
}

TEST(QueryOracleTest, PassesOnAHandWrittenCase) {
  Database db = MakeRandomDatabase(3, {});
  // U0(t) AND t <= 4: well-formed, no analysis findings expected.
  QueryPtr q = Query::And(
      Query::Atom("U0", {Term::Variable("t")}),
      Query::Compare(Term::Variable("t"), QueryCmp::kLe, Term::Int(4)));
  QueryCaseOutcome outcome = CheckQueryCase(db, q);
  EXPECT_FALSE(outcome.skipped);
  EXPECT_FALSE(outcome.failure.has_value()) << *outcome.failure;
  EXPECT_EQ(outcome.variants_checked, 6);
  // A single atom with a comparison gets a fully bounded certificate, so
  // the soundness oracle must have verified it against the plain result.
  EXPECT_EQ(outcome.certificates_checked, 1);
}

TEST(QueryOracleTest, ChecksAProvenEmptySubplan) {
  Database db = MakeRandomDatabase(3, {});
  // The right OR branch is a DBM contradiction; the analyzer proves it
  // empty and the oracle evaluates it standalone.
  QueryPtr contradiction = Query::And(
      Query::Compare(Term::Variable("t"), QueryCmp::kGt, Term::Int(3)),
      Query::Compare(Term::Variable("t"), QueryCmp::kLt, Term::Int(3)));
  QueryPtr q = Query::Or(
      Query::Atom("U0", {Term::Variable("t")}),
      Query::And(Query::Atom("U0", {Term::Variable("t")}),
                 std::move(contradiction)));
  QueryCaseOutcome outcome = CheckQueryCase(db, q);
  EXPECT_FALSE(outcome.skipped);
  EXPECT_FALSE(outcome.failure.has_value()) << *outcome.failure;
  EXPECT_GT(outcome.empties_checked, 0);
}

// The acceptance gate: 500 random queries, zero violations of any oracle --
// analysis never changes results (at 1 and N threads), every proven-empty
// subplan really is empty, and actual cardinality / periods / hulls never
// exceed the root certificate.
TEST(QueryFuzzTest, FiveHundredCasesNoFindings) {
  QueryFuzzConfig config;
  config.seed = 20260806;
  config.cases = 500;
  ASSERT_GE(config.cases, 500);
  QueryFuzzReport report = RunQueryFuzz(config);
  EXPECT_TRUE(report.ok()) << report.Summary()
                           << (report.failures.empty()
                                   ? ""
                                   : "\nfirst: " +
                                         report.failures[0].description +
                                         "\nquery: " +
                                         report.failures[0].query);
  EXPECT_EQ(report.cases, 500);
  // The generator's contradiction/dead-branch rates make both oracles
  // fire many times over 500 cases; a silent no-op run is itself a bug.
  EXPECT_GT(report.variants_checked, 1000);
  EXPECT_GT(report.empties_checked, 20) << report.Summary();
  // Most generated queries earn at least a partial certificate, so the
  // soundness oracle must run on a large fraction of the cases.
  EXPECT_GT(report.certificates_checked, 100) << report.Summary();
}

// Certificate soundness as a property over the checked-in corpus: every
// `# check:` query annotated in tests/fuzz/corpus/*.itdb (deliberately
// delicate constructions -- NP-regime complements, statically empty
// intersections) must pass all three oracles against its own database,
// and the corpus as a whole must exercise the certificate check.
TEST(QueryOracleTest, CorpusCheckQueriesRespectTheirCertificates) {
  int certificates = 0;
  int queries = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(ITDB_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() != ".itdb") continue;
    std::ifstream file(entry.path());
    ASSERT_TRUE(file) << entry.path();
    std::stringstream buffer;
    buffer << file.rdbuf();
    std::vector<std::string> checks;
    std::istringstream lines(buffer.str());
    for (std::string line; std::getline(lines, line);) {
      const std::string marker = "# check: ";
      if (line.rfind(marker, 0) == 0) {
        checks.push_back(line.substr(marker.size()));
      }
    }
    if (checks.empty()) continue;
    Result<Database> db = Database::FromText(buffer.str());
    ASSERT_TRUE(db.ok()) << entry.path() << ": " << db.status();
    for (const std::string& text : checks) {
      Result<QueryPtr> q = query::ParseQuery(text);
      ASSERT_TRUE(q.ok()) << entry.path() << ": " << q.status();
      QueryCaseOutcome outcome = CheckQueryCase(db.value(), q.value());
      EXPECT_FALSE(outcome.failure.has_value())
          << entry.path() << ": " << text << ": " << *outcome.failure;
      certificates += outcome.certificates_checked;
      ++queries;
    }
  }
  EXPECT_GE(queries, 3);
  EXPECT_GT(certificates, 0);
}

TEST(QueryOracleTest, ShrinkReturnsRootWhenNoSubtreeFails) {
  Database db = MakeRandomDatabase(3, {});
  QueryPtr q = Query::And(
      Query::Atom("U0", {Term::Variable("t")}),
      Query::Compare(Term::Variable("t"), QueryCmp::kLe, Term::Int(4)));
  // A passing case shrinks to itself: no subtree "still fails".
  QueryPtr shrunk = ShrinkFailingQuery(db, q);
  EXPECT_EQ(shrunk->ToString(), q->ToString());
}

}  // namespace
}  // namespace fuzz
}  // namespace itdb
