// End-to-end checks of the fuzzing subsystem itself: a clean engine passes,
// every injected bug is caught and shrunk to a tiny repro, repro dumps
// round-trip through the text format, and runs are deterministic.

#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/mutate.h"

namespace itdb {
namespace fuzz {
namespace {

FuzzConfig SmokeConfig() {
  FuzzConfig config;
  config.cases = 120;
  config.seed = 11;
  config.max_failures = 1;
  return config;
}

TEST(FuzzSmokeTest, CleanEnginePassesAllOracles) {
  FuzzConfig config = SmokeConfig();
  FuzzReport report = RunFuzz(config);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.cases, config.cases);
  // The run must actually exercise the metamorphic oracle.
  EXPECT_GT(report.metamorphic_checks, 0);
  // And the differential oracle must run for the vast majority of cases.
  EXPECT_LT(report.diff_skipped, config.cases / 4);
}

TEST(FuzzSmokeTest, RunsAreDeterministic) {
  FuzzReport a = RunFuzz(SmokeConfig());
  FuzzReport b = RunFuzz(SmokeConfig());
  EXPECT_EQ(a.Summary(), b.Summary());
}

TEST(FuzzSmokeTest, GeneratedExpressionsParseBack) {
  DatabaseConfig db_cfg;
  ExprConfig expr_cfg;
  for (std::uint32_t seed = 0; seed < 50; ++seed) {
    Database db = MakeRandomDatabase(seed, db_cfg);
    ExprPtr e = MakeRandomExpr(seed, db, expr_cfg);
    Result<ExprPtr> parsed = ParseExpr(e->ToString());
    ASSERT_TRUE(parsed.ok()) << e->ToString() << ": " << parsed.status();
    EXPECT_EQ((*parsed)->ToString(), e->ToString());
  }
}

class InjectedBugTest : public ::testing::TestWithParam<InjectedBug> {};

TEST_P(InjectedBugTest, IsCaughtAndShrunkToTinyRepro) {
  FuzzConfig config;
  config.cases = 500;  // Upper bound; stops at the first failure.
  config.seed = 11;
  config.max_failures = 1;
  config.oracle.bug = GetParam();

  FuzzReport report = RunFuzz(config);
  ASSERT_EQ(report.failures.size(), 1u)
      << "bug " << InjectedBugName(GetParam()) << " was not caught: "
      << report.Summary();

  const FuzzFailure& fail = report.failures[0];
  // Shrinking must bite: a tiny expression over very little data.
  EXPECT_LE(fail.repro.expr->NodeCount(), 5) << fail.repro.expr->ToString();
  int total_tuples = 0;
  for (const std::string& name : fail.repro.db.Names()) {
    total_tuples += fail.repro.db.Get(name)->size();
  }
  EXPECT_LE(total_tuples, 4);
  EXPECT_LE(fail.repro.db.size(), 2);

  // The dump replays: the failure reproduces under the injected bug and
  // disappears on the clean engine.
  std::string dump = FormatRepro(fail.repro, fail.failure, fail.case_seed);
  OracleOptions with_bug;
  with_bug.bug = GetParam();
  Result<CaseOutcome> replay = ReplayRepro(dump, with_bug);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->failure.has_value()) << dump;

  Result<CaseOutcome> clean = ReplayRepro(dump);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_FALSE(clean->failure.has_value())
      << clean->failure->oracle << ": " << clean->failure->detail;
}

INSTANTIATE_TEST_SUITE_P(AllBugs, InjectedBugTest,
                         ::testing::Values(InjectedBug::kJoinDropConstraint,
                                           InjectedBug::kUnionDropTuple,
                                           InjectedBug::kShiftOffByOne),
                         [](const auto& info) {
                           std::string name(InjectedBugName(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(FuzzSmokeTest, ReproMissingExprHeaderIsRejected) {
  Result<Repro> repro = ParseRepro("relation U0(T: time) {\n  [0];\n}\n");
  ASSERT_FALSE(repro.ok());
  EXPECT_EQ(repro.status().code(), StatusCode::kParseError);
}

TEST(FuzzSmokeTest, ReproUnknownLeafIsRejected) {
  Result<Repro> repro = ParseRepro(
      "# expr: union(U0, U9)\nrelation U0(T: time) {\n  [0];\n}\n");
  ASSERT_FALSE(repro.ok());
  EXPECT_EQ(repro.status().code(), StatusCode::kNotFound);
}

TEST(FuzzSmokeTest, MetamorphicRewritesPreserveSchema) {
  DatabaseConfig db_cfg;
  ExprConfig expr_cfg;
  for (std::uint32_t seed = 0; seed < 30; ++seed) {
    Database db = MakeRandomDatabase(seed, db_cfg);
    ExprPtr e = MakeRandomExpr(seed, db, expr_cfg);
    Result<Schema> schema = InferSchema(e, db);
    ASSERT_TRUE(schema.ok()) << e->ToString();
    Result<std::vector<Rewrite>> rewrites = EnumerateRewrites(e, db);
    ASSERT_TRUE(rewrites.ok()) << e->ToString();
    for (const Rewrite& rw : *rewrites) {
      Result<Schema> mutant_schema = InferSchema(rw.expr, db);
      ASSERT_TRUE(mutant_schema.ok())
          << rw.rule << ": " << rw.expr->ToString();
      EXPECT_EQ(*mutant_schema, *schema)
          << rw.rule << ": " << rw.expr->ToString();
    }
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace itdb
