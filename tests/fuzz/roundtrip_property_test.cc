// Text-format round-trip properties over fuzz-generated relations:
// parse(print(db)) preserves the represented set, print(parse(print(db)))
// is a fixpoint, and string values with quotes/backslashes survive.

#include <gtest/gtest.h>

#include "core/algebra.h"
#include "finite/finite_relation.h"
#include "fuzz/generator.h"
#include "storage/database.h"

namespace itdb {
namespace fuzz {
namespace {

TEST(RoundtripPropertyTest, PrintParsePreservesRepresentedSet) {
  DatabaseConfig cfg;
  for (std::uint32_t seed = 0; seed < 60; ++seed) {
    Database db = MakeRandomDatabase(seed, cfg);
    std::string text = db.ToText();
    Result<Database> reparsed = Database::FromText(text);
    ASSERT_TRUE(reparsed.ok()) << "seed " << seed << ": "
                               << reparsed.status() << "\n" << text;
    ASSERT_EQ(reparsed->Names(), db.Names());
    for (const std::string& name : db.Names()) {
      const GeneralizedRelation original = *db.Get(name);
      const GeneralizedRelation parsed = *reparsed->Get(name);
      EXPECT_EQ(parsed.schema(), original.schema());
      // The printer normalizes (it drops infeasible tuples and prints
      // minimal constraint systems), so compare represented sets, not
      // representations.
      EXPECT_EQ(FiniteRelation::Materialize(parsed, -20, 20),
                FiniteRelation::Materialize(original, -20, 20))
          << "seed " << seed << " relation " << name << "\n" << text;
      Result<bool> equiv = Equivalent(parsed, original);
      ASSERT_TRUE(equiv.ok()) << equiv.status();
      EXPECT_TRUE(*equiv) << "seed " << seed << " relation " << name;
    }
  }
}

TEST(RoundtripPropertyTest, PrintIsAFixpointAfterOneRoundTrip) {
  DatabaseConfig cfg;
  for (std::uint32_t seed = 0; seed < 60; ++seed) {
    Database db = MakeRandomDatabase(seed, cfg);
    Result<Database> once = Database::FromText(db.ToText());
    ASSERT_TRUE(once.ok()) << once.status();
    std::string text1 = once->ToText();
    Result<Database> twice = Database::FromText(text1);
    ASSERT_TRUE(twice.ok()) << twice.status();
    EXPECT_EQ(twice->ToText(), text1) << "seed " << seed;
  }
}

TEST(RoundtripPropertyTest, StringValuesWithMetacharactersSurvive) {
  Schema schema({"T"}, {"D"}, {DataType::kString});
  GeneralizedRelation r(schema);
  for (const char* s : {"plain", "with \"quotes\"", "back\\slash",
                        "\\\" both \\\""}) {
    ASSERT_TRUE(
        r.AddTuple(GeneralizedTuple({Lrp::Singleton(0)}, {Value(s)})).ok());
  }
  Database db;
  db.Put("W", std::move(r));
  Result<Database> reparsed = Database::FromText(db.ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << db.ToText();
  EXPECT_EQ(reparsed->Get("W")->tuples(), db.Get("W")->tuples());
}

TEST(RoundtripPropertyTest, HeaderCommentsArePreservedByParsing) {
  DatabaseConfig cfg;
  Database db = MakeRandomDatabase(7, cfg);
  const std::vector<std::string> headers = {"itdb_fuzz repro v1",
                                            "expr: union(U0, U1)"};
  std::string with_headers = db.ToText(headers);
  Result<Database> reparsed = Database::FromText(with_headers);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  // The header block is captured, so the reparse renders byte-identically
  // to the commented original -- and survives further round trips.
  EXPECT_EQ(reparsed->header_comments(), headers);
  EXPECT_EQ(reparsed->ToText(), with_headers);
  EXPECT_EQ(reparsed->ToText(), db.ToText(headers));
}

TEST(RoundtripPropertyTest, HeaderCommentsSurviveMutation) {
  Database db =
      Database::FromText("# saved by itdb\n# second line\n\n"
                         "relation R(T: time) {\n  [1+2n];\n}\n")
          .value();
  ASSERT_EQ(db.header_comments().size(), 2u);
  // A catalog mutation must not drop the file header on re-save.
  GeneralizedRelation extra(Schema({"T"}, {}, {}));
  ASSERT_TRUE(extra.AddTuple(GeneralizedTuple({Lrp::Singleton(4)})).ok());
  ASSERT_TRUE(db.Add("S", std::move(extra)).ok());
  ASSERT_TRUE(db.Remove("R").ok());
  EXPECT_EQ(db.ToText(),
            "# saved by itdb\n# second line\n\n"
            "relation S(T: time) {\n  [4];\n}\n\n");
}

}  // namespace
}  // namespace fuzz
}  // namespace itdb
