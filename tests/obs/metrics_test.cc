#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace itdb {
namespace obs {
namespace {

TEST(CounterTest, AddIncrementReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, RecordMaxIsAHighWaterMark) {
  Counter c;
  c.RecordMax(7);
  c.RecordMax(3);  // Lower: no effect.
  EXPECT_EQ(c.value(), 7);
  c.RecordMax(19);
  EXPECT_EQ(c.value(), 19);
}

TEST(CounterTest, ConcurrentAddsSum) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(HistogramTest, BucketsByBitWidth) {
  Histogram h;
  h.Record(0);  // Bucket 0.
  h.Record(1);  // Bucket 1.
  h.Record(2);  // Bucket 2: [2, 4).
  h.Record(3);  // Bucket 2.
  h.Record(4);  // Bucket 3: [4, 8).
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.sum, 10);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 4);
  EXPECT_EQ(s.buckets[0], 1);
  EXPECT_EQ(s.buckets[1], 1);
  EXPECT_EQ(s.buckets[2], 2);
  EXPECT_EQ(s.buckets[3], 1);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.sum, 0);
  EXPECT_EQ(s.buckets[0], 1);
}

TEST(HistogramTest, BucketLowerBounds) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4);
  EXPECT_EQ(Histogram::BucketLowerBound(4), 8);
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reg.a");
  Counter* again = registry.GetCounter("reg.a");
  EXPECT_EQ(a, again);  // Same handle on every lookup.
  a->Add(3);
  Histogram* h = registry.GetHistogram("reg.h");
  h->Record(5);
  MetricsRegistry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("reg.a"), 3);
  EXPECT_EQ(snap.histograms.at("reg.h").count, 1);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsNames) {
  MetricsRegistry registry;
  registry.GetCounter("reg.b")->Add(9);
  registry.Reset();
  MetricsRegistry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("reg.b"), 0);
}

TEST(MetricsRegistryTest, ToTextListsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("text.count")->Add(12);
  registry.GetHistogram("text.sizes")->Record(100);
  std::string text = registry.snapshot().ToText();
  EXPECT_NE(text.find("text.count 12"), std::string::npos);
  EXPECT_NE(text.find("text.sizes"), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalCounterShorthand) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.global_shorthand");
  std::int64_t before = c->value();
  AddGlobalCounter("test.global_shorthand", 5);
  EXPECT_EQ(c->value(), before + 5);
}

TEST(MetricsRegistryTest, ParallelForWorkersMergeIntoOneCounter) {
  // ParallelFor workers all bump the same atomic; the "merge" is the sum
  // a post-join snapshot observes.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("parallel.iterations");
  constexpr std::int64_t kIterations = 1000;
  ParallelFor(kIterations, ParallelOptions{/*threads=*/4, /*grain=*/16},
              [&](std::int64_t begin, std::int64_t end) {
                for (std::int64_t i = begin; i < end; ++i) c->Increment();
              });
  EXPECT_EQ(c->value(), kIterations);
}

TEST(MetricsRegistryTest, PublishThreadPoolMetrics) {
  // Drive the shared pool once so its gauges are nonzero, then pull.
  ParallelFor(64, ParallelOptions{/*threads=*/2, /*grain=*/1},
              [](std::int64_t, std::int64_t) {});
  MetricsRegistry registry;
  PublishThreadPoolMetrics(registry);
  MetricsRegistry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.count("thread_pool.workers"), 1u);
  EXPECT_EQ(snap.counters.count("thread_pool.queue_depth_max"), 1u);
  EXPECT_EQ(snap.counters.count("thread_pool.tasks_submitted"), 1u);
  EXPECT_GE(snap.counters.at("thread_pool.tasks_submitted"), 0);
}

}  // namespace
}  // namespace obs
}  // namespace itdb
