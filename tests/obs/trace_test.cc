#include "obs/trace.h"

#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "obs/profile.h"

namespace itdb {
namespace obs {
namespace {

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const SpanRecord& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(SpanTest, NullTracerYieldsInactiveNoOpSpan) {
  Span span = Span::Begin(nullptr, "noop", "test");
  EXPECT_FALSE(span.active());
  span.AddArg("x", 1);
  span.End();  // Must not crash.
}

TEST(SpanTest, RecordsNameCategoryArgsAndTimes) {
  Tracer tracer;
  {
    Span span = Span::Begin(&tracer, "op", "test");
    EXPECT_TRUE(span.active());
    span.AddArg("tuples", 7);
  }
  std::vector<SpanRecord> spans = tracer.records();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "op");
  EXPECT_EQ(spans[0].category, "test");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_GE(spans[0].wall_ns, 0);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "tuples");
  EXPECT_EQ(spans[0].args[0].second, 7);
}

TEST(SpanTest, NestingRecordsParents) {
  Tracer tracer;
  {
    Span outer = Span::Begin(&tracer, "outer", "test");
    {
      Span inner = Span::Begin(&tracer, "inner", "test");
      Span innermost = Span::Begin(&tracer, "innermost", "test");
    }
  }
  std::vector<SpanRecord> spans = tracer.records();
  ASSERT_EQ(spans.size(), 3u);
  const SpanRecord* outer = FindSpan(spans, "outer");
  const SpanRecord* inner = FindSpan(spans, "inner");
  const SpanRecord* innermost = FindSpan(spans, "innermost");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(innermost, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(innermost->parent, inner->id);
}

TEST(SpanTest, IndependentTracersNestIndependently) {
  Tracer a;
  Tracer b;
  {
    Span sa = Span::Begin(&a, "a_root", "test");
    Span sb = Span::Begin(&b, "b_root", "test");
    Span sa2 = Span::Begin(&a, "a_child", "test");
  }
  std::vector<SpanRecord> a_spans = a.records();
  std::vector<SpanRecord> b_spans = b.records();
  const SpanRecord* a_child = FindSpan(a_spans, "a_child");
  const SpanRecord* a_root = FindSpan(a_spans, "a_root");
  const SpanRecord* b_root = FindSpan(b_spans, "b_root");
  ASSERT_NE(a_child, nullptr);
  ASSERT_NE(a_root, nullptr);
  ASSERT_NE(b_root, nullptr);
  // a_child's parent is a's root, not b's (which was opened in between).
  EXPECT_EQ(a_child->parent, a_root->id);
  EXPECT_EQ(b_root->parent, 0u);
}

TEST(SpanTest, SpansOnDifferentThreadsGetDistinctThreadIds) {
  Tracer tracer;
  { Span main_span = Span::Begin(&tracer, "main", "test"); }
  std::thread worker(
      [&tracer] { Span s = Span::Begin(&tracer, "worker", "test"); });
  worker.join();
  std::vector<SpanRecord> spans = tracer.records();
  const SpanRecord* main_span = FindSpan(spans, "main");
  const SpanRecord* worker_span = FindSpan(spans, "worker");
  ASSERT_NE(main_span, nullptr);
  ASSERT_NE(worker_span, nullptr);
  EXPECT_NE(main_span->thread_id, worker_span->thread_id);
}

TEST(SpanTest, MoveTransfersOwnership) {
  Tracer tracer;
  {
    Span span = Span::Begin(&tracer, "moved", "test");
    Span other = std::move(span);
    EXPECT_FALSE(span.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(other.active());
  }
  EXPECT_EQ(tracer.size(), 1u);  // Committed exactly once.
}

TEST(TracerTest, CapsSpansAndCountsDropped) {
  Tracer tracer(/*max_spans=*/2);
  for (int i = 0; i < 5; ++i) {
    Span s = Span::Begin(&tracer, "s" + std::to_string(i), "test");
  }
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, GlobalTracerInstallAndResolve) {
  EXPECT_EQ(GlobalTracer(), nullptr);
  Tracer tracer;
  InstallGlobalTracer(&tracer);
  EXPECT_EQ(GlobalTracer(), &tracer);
  EXPECT_EQ(ResolveTracer(nullptr), &tracer);
  Tracer other;
  EXPECT_EQ(ResolveTracer(&other), &other);  // Explicit wins.
  InstallGlobalTracer(nullptr);
  EXPECT_EQ(GlobalTracer(), nullptr);
  EXPECT_EQ(ResolveTracer(nullptr), nullptr);
}

TEST(ChromeTraceTest, EmittedJsonValidates) {
  Tracer tracer;
  {
    Span outer = Span::Begin(&tracer, "outer \"quoted\"\n", "plan");
    Span inner = Span::Begin(&tracer, "inner", "algebra");
    inner.AddArg("tuples_out", 42);
    inner.AddArg("pairs_candidate", -1);
  }
  std::string json = tracer.ToChromeTraceJson();
  Status s = ValidateChromeTrace(json);
  EXPECT_TRUE(s.ok()) << s << "\n" << json;
}

TEST(ChromeTraceTest, EmptyTracerStillValidates) {
  Tracer tracer;
  EXPECT_TRUE(ValidateChromeTrace(tracer.ToChromeTraceJson()).ok());
}

TEST(ChromeTraceTest, RejectsMalformedDocuments) {
  // Not an object.
  EXPECT_FALSE(ValidateChromeTrace("[]").ok());
  // Missing traceEvents.
  EXPECT_FALSE(ValidateChromeTrace("{}").ok());
  EXPECT_FALSE(ValidateChromeTrace(R"({"other":[]})").ok());
  // traceEvents not an array.
  EXPECT_FALSE(ValidateChromeTrace(R"({"traceEvents":{}})").ok());
  // Event missing required fields.
  EXPECT_FALSE(ValidateChromeTrace(R"({"traceEvents":[{}]})").ok());
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents":[{"name":"x","cat":"c","ph":"X",)"
                   R"("ts":0,"dur":1,"pid":1}]})")
                   .ok());
  // Wrong phase marker.
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents":[{"name":"x","cat":"c","ph":"B",)"
                   R"("ts":0,"dur":1,"pid":1,"tid":0}]})")
                   .ok());
  // Non-numeric timestamp.
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents":[{"name":"x","cat":"c","ph":"X",)"
                   R"("ts":"0","dur":1,"pid":1,"tid":0}]})")
                   .ok());
  // Trailing garbage.
  EXPECT_FALSE(ValidateChromeTrace(R"({"traceEvents":[]} extra)").ok());
  // Truncated document.
  EXPECT_FALSE(ValidateChromeTrace(R"({"traceEvents":[)").ok());
}

TEST(ChromeTraceTest, AcceptsForeignButSchemaConformingEvents) {
  // Extra keys and an args object are fine; order does not matter.
  EXPECT_TRUE(ValidateChromeTrace(
                  R"({"displayTimeUnit":"ms","traceEvents":[)"
                  R"({"tid":3,"pid":1,"dur":2.5,"ts":0.001,"ph":"X",)"
                  R"("cat":"c","name":"x","args":{"k":1,"neg":-2}}]})")
                  .ok());
}

TEST(BuildProfileTest, FoldsSpansIntoATree) {
  Tracer tracer;
  {
    Span root = Span::Begin(&tracer, "query", "plan");
    root.AddArg("tuples_out", 3);
    {
      Span op = Span::Begin(&tracer, "Join", "algebra");  // Not a plan span.
      Span child = Span::Begin(&tracer, "AND", "plan");
      Span leaf = Span::Begin(&tracer, "ATOM P(t)", "plan");
    }
  }
  Profile profile = BuildProfile(tracer.records(), "plan");
  ASSERT_FALSE(profile.empty());
  EXPECT_EQ(profile.root.label, "query");
  EXPECT_EQ(profile.root.Metric("tuples_out"), 3);
  EXPECT_EQ(profile.root.Metric("missing", -1), -1);
  // The algebra span between "query" and "AND" is skipped, not a tree level.
  ASSERT_EQ(profile.root.children.size(), 1u);
  EXPECT_EQ(profile.root.children[0].label, "AND");
  ASSERT_EQ(profile.root.children[0].children.size(), 1u);
  EXPECT_EQ(profile.root.children[0].children[0].label, "ATOM P(t)");
  EXPECT_EQ(profile.total_wall_ns, profile.root.wall_ns);
  std::string text = profile.ToText();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("ATOM P(t)"), std::string::npos);
  EXPECT_NE(text.find("tuples_out=3"), std::string::npos);
}

TEST(BuildProfileTest, SiblingsKeepStartOrder) {
  Tracer tracer;
  {
    Span root = Span::Begin(&tracer, "query", "plan");
    { Span first = Span::Begin(&tracer, "first", "plan"); }
    { Span second = Span::Begin(&tracer, "second", "plan"); }
    { Span third = Span::Begin(&tracer, "third", "plan"); }
  }
  Profile profile = BuildProfile(tracer.records(), "plan");
  ASSERT_EQ(profile.root.children.size(), 3u);
  EXPECT_EQ(profile.root.children[0].label, "first");
  EXPECT_EQ(profile.root.children[1].label, "second");
  EXPECT_EQ(profile.root.children[2].label, "third");
}

TEST(BuildProfileTest, NoMatchingSpansGivesEmptyProfile) {
  Tracer tracer;
  { Span s = Span::Begin(&tracer, "op", "algebra"); }
  Profile profile = BuildProfile(tracer.records(), "plan");
  EXPECT_TRUE(profile.empty());
}

TEST(BuildProfileTest, MultipleRootsAdoptedBySyntheticNode) {
  Tracer tracer;
  { Span a = Span::Begin(&tracer, "a", "plan"); }
  { Span b = Span::Begin(&tracer, "b", "plan"); }
  Profile profile = BuildProfile(tracer.records(), "plan");
  ASSERT_FALSE(profile.empty());
  EXPECT_EQ(profile.root.label, "(multiple roots)");
  ASSERT_EQ(profile.root.children.size(), 2u);
  EXPECT_EQ(profile.root.children[0].label, "a");
  EXPECT_EQ(profile.root.children[1].label, "b");
}

}  // namespace
}  // namespace obs
}  // namespace itdb
