#include "storage/lexer.h"

#include <gtest/gtest.h>

namespace itdb {
namespace {

TEST(LexerTest, BasicTokens) {
  Result<std::vector<Token>> r = Tokenize("relation Foo(T1: time) { }");
  ASSERT_TRUE(r.ok());
  const std::vector<Token>& t = r.value();
  ASSERT_EQ(t.size(), 10u);  // 9 tokens + end.
  EXPECT_EQ(t[0].kind, TokenKind::kIdent);
  EXPECT_EQ(t[0].text, "relation");
  EXPECT_EQ(t[2].text, "(");
  EXPECT_EQ(t[4].text, ":");
  EXPECT_EQ(t.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, IntegersAndLrpSuffix) {
  Result<std::vector<Token>> r = Tokenize("2+10n");
  ASSERT_TRUE(r.ok());
  const std::vector<Token>& t = r.value();
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].kind, TokenKind::kInt);
  EXPECT_EQ(t[0].int_value, 2);
  EXPECT_EQ(t[1].text, "+");
  EXPECT_EQ(t[2].int_value, 10);
  EXPECT_EQ(t[3].kind, TokenKind::kIdent);
  EXPECT_EQ(t[3].text, "n");
}

TEST(LexerTest, Strings) {
  Result<std::vector<Token>> r = Tokenize(R"("hello \"x\" world")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].kind, TokenKind::kString);
  EXPECT_EQ(r.value()[0].text, "hello \"x\" world");
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
}

TEST(LexerTest, MultiCharSymbols) {
  Result<std::vector<Token>> r = Tokenize("<= >= && || != -> < >");
  ASSERT_TRUE(r.ok());
  std::vector<std::string> expect = {"<=", ">=", "&&", "||", "!=", "->",
                                     "<",  ">"};
  ASSERT_EQ(r.value().size(), expect.size() + 1);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(r.value()[i].text, expect[i]);
  }
}

TEST(LexerTest, Comments) {
  Result<std::vector<Token>> r = Tokenize("a # comment\n b");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_EQ(r.value()[0].text, "a");
  EXPECT_EQ(r.value()[1].text, "b");
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("a $ b").ok());
}

TEST(LexerTest, IntegerOverflowDetected) {
  EXPECT_FALSE(Tokenize("99999999999999999999999").ok());
}

TEST(TokenStreamTest, Navigation) {
  Result<std::vector<Token>> r = Tokenize("foo ( -42 )");
  ASSERT_TRUE(r.ok());
  TokenStream ts(std::move(r).value());
  EXPECT_TRUE(ts.TryIdent("foo"));
  EXPECT_FALSE(ts.TryIdent("bar"));
  EXPECT_TRUE(ts.ExpectSymbol("(").ok());
  Result<std::int64_t> v = ts.ExpectInt();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), -42);
  EXPECT_TRUE(ts.ExpectSymbol(")").ok());
  EXPECT_TRUE(ts.AtEnd());
  EXPECT_FALSE(ts.ExpectSymbol(";").ok());
}

TEST(TokenStreamTest, ErrorsMentionPosition) {
  Result<std::vector<Token>> r = Tokenize("abc def");
  ASSERT_TRUE(r.ok());
  TokenStream ts(std::move(r).value());
  ts.Next();
  Status s = ts.ExpectSymbol("(");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("'def'"), std::string::npos) << s;
  EXPECT_NE(s.message().find("offset 4"), std::string::npos) << s;
}

}  // namespace
}  // namespace itdb
