// WAL framing edge cases: torn final records at every byte boundary,
// CRC-corrupted tails, longest-valid-prefix semantics, and the writer's
// append / truncate-on-open / reset lifecycle.

#include "storage/wal/wal.h"

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dbm.h"
#include "core/lrp.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "storage/binary/binary_format.h"

namespace itdb {
namespace storage {
namespace {

WalRecord MakePut(std::uint64_t lsn, const std::string& name,
                  std::int64_t offset) {
  WalRecord record;
  record.lsn = lsn;
  record.type = WalRecordType::kPut;
  record.name = name;
  record.segment.name = name;
  record.segment.schema = Schema::Temporal(1);
  SegmentRow row;
  row.tuple = GeneralizedTuple({Lrp::Make(offset, 10)});
  row.sys_from = lsn;
  record.segment.rows.push_back(std::move(row));
  return record;
}

WalRecord MakeRemove(std::uint64_t lsn, const std::string& name) {
  WalRecord record;
  record.lsn = lsn;
  record.type = WalRecordType::kRemove;
  record.name = name;
  return record;
}

std::string EncodeAll(const std::vector<WalRecord>& records) {
  std::string log;
  for (const WalRecord& r : records) {
    Result<std::string> frame = EncodeWalRecord(r);
    EXPECT_TRUE(frame.ok()) << frame.status();
    log += *frame;
  }
  return log;
}

TEST(WalTest, EncodeDecodeRoundTripsRecords) {
  std::string log = EncodeAll(
      {MakePut(1, "R", 3), MakeRemove(2, "R"), MakePut(3, "S", 7)});
  Result<WalReadResult> read = DecodeWal(log);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_FALSE(read->truncated_tail);
  EXPECT_EQ(read->valid_bytes, log.size());
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_EQ(read->records[0].type, WalRecordType::kPut);
  EXPECT_EQ(read->records[0].name, "R");
  ASSERT_EQ(read->records[0].segment.rows.size(), 1u);
  EXPECT_EQ(read->records[0].segment.rows[0].tuple.lrp(0), Lrp::Make(3, 10));
  EXPECT_EQ(read->records[1].type, WalRecordType::kRemove);
  EXPECT_EQ(read->records[2].name, "S");
}

TEST(WalTest, TornFinalRecordAtEveryByteYieldsThePrefix) {
  std::string first = *EncodeWalRecord(MakePut(1, "R", 3));
  std::string second = *EncodeWalRecord(MakePut(2, "R", 5));
  // Cut the second frame at every possible byte boundary -- mid-magic,
  // mid-length, mid-body, mid-CRC.  Recovery must always land on exactly
  // the first record.
  for (std::size_t cut = 0; cut < second.size(); ++cut) {
    std::string log = first + second.substr(0, cut);
    Result<WalReadResult> read = DecodeWal(log);
    ASSERT_TRUE(read.ok()) << "cut " << cut << ": " << read.status();
    EXPECT_EQ(read->records.size(), 1u) << "cut " << cut;
    EXPECT_EQ(read->valid_bytes, first.size()) << "cut " << cut;
    EXPECT_EQ(read->truncated_tail, cut != 0) << "cut " << cut;
  }
}

TEST(WalTest, CorruptCrcEndsTheLogAtThePreviousRecord) {
  std::string first = *EncodeWalRecord(MakePut(1, "R", 3));
  std::string second = *EncodeWalRecord(MakePut(2, "R", 5));
  std::string log = first + second;
  log.back() = static_cast<char>(log.back() ^ 0x01);  // Flip a CRC bit.
  Result<WalReadResult> read = DecodeWal(log);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->valid_bytes, first.size());
  EXPECT_TRUE(read->truncated_tail);
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  Result<WalReadResult> read =
      ReadWalFile(::testing::TempDir() + "/wal_test_does_not_exist.log");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->valid_bytes, 0u);
  EXPECT_FALSE(read->truncated_tail);
}

TEST(WalTest, WriterAppendsTruncatesTornTailOnOpenAndResets) {
  std::string path = ::testing::TempDir() + "/wal_test_writer.log";
  {
    Result<WalWriter> writer = WalWriter::Open(path, /*fsync=*/false,
                                               /*truncate_to=*/0);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(MakePut(1, "R", 3)).ok());
    ASSERT_TRUE(writer->Append(MakeRemove(2, "R")).ok());
    EXPECT_GT(writer->file_bytes(), 0u);
  }
  // Simulate a torn write: append garbage past the valid frames.
  {
    std::ofstream file(path, std::ios::binary | std::ios::app);
    file << "WREC torn garbage";
  }
  Result<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_TRUE(read->truncated_tail);

  // Re-opening at valid_bytes drops the tail; the next append extends the
  // clean prefix.
  Result<WalWriter> writer =
      WalWriter::Open(path, /*fsync=*/false, read->valid_bytes);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_EQ(writer->file_bytes(), read->valid_bytes);
  ASSERT_TRUE(writer->Append(MakePut(3, "S", 7)).ok());
  Result<WalReadResult> again = ReadWalFile(path);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->records.size(), 3u);
  EXPECT_FALSE(again->truncated_tail);
  EXPECT_EQ(again->records[2].lsn, 3u);

  ASSERT_TRUE(writer->Reset().ok());
  EXPECT_EQ(writer->file_bytes(), 0u);
  Result<WalReadResult> empty = ReadWalFile(path);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->records.empty());
}

TEST(WalTest, DecodePreservesSegmentPayloadExactly) {
  WalRecord record = MakePut(9, "Exact", -4);
  Dbm dbm(1);
  dbm.AddUpperBound(0, 100);
  record.segment.rows[0].tuple.set_constraints(dbm);  // Unclosed on purpose.
  std::string log = *EncodeWalRecord(record);
  Result<WalReadResult> read = DecodeWal(log);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  const GeneralizedTuple& back = read->records[0].segment.rows[0].tuple;
  EXPECT_EQ(back, record.segment.rows[0].tuple);
  EXPECT_FALSE(back.constraints().closed());
}

}  // namespace
}  // namespace storage
}  // namespace itdb
