// Durability and bitemporal-history tests for the storage engine: reopen
// equality, snapshot + WAL-tail equivalence, torn-tail recovery, idempotent
// replay across a checkpoint crash window, and `as of` reads pinned against
// a hand-computed system-time history.

#include "storage/wal/storage_engine.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/lrp.h"
#include "core/relation.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "storage/database.h"

namespace itdb {
namespace storage {
namespace {

class StorageEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/storage_engine_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  Result<std::unique_ptr<StorageEngine>> Open(Database* db,
                                              StorageEngineOptions options = {}) {
    return StorageEngine::Open(dir_, db, options);
  }

  std::string dir_;
};

// A single-attribute relation whose tuples are the singletons in `points`;
// tuple identity in the history assertions below is just the point value.
GeneralizedRelation Rel(std::vector<std::int64_t> points) {
  GeneralizedRelation r(Schema::Temporal(1));
  for (std::int64_t p : points) {
    EXPECT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Singleton(p)})).ok());
  }
  return r;
}

std::int64_t Point(const GeneralizedTuple& t) { return t.lrp(0).offset(); }

TEST_F(StorageEngineTest, ReopenRecoversTheExactCatalog) {
  std::string crashed_text;
  {
    Database db;
    Result<std::unique_ptr<StorageEngine>> engine = Open(&db);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE((*engine)->ApplyAdd(db, "R", Rel({1, 2})).ok());
    ASSERT_TRUE((*engine)->ApplyAdd(db, "S", Rel({7})).ok());
    ASSERT_TRUE((*engine)->ApplyPut(db, "R", Rel({2, 3})).ok());
    EXPECT_EQ((*engine)->version(), 3u);
    crashed_text = db.ToText();
    // Engine destroyed without checkpoint: recovery is pure WAL replay.
  }
  Database db;
  Result<std::unique_ptr<StorageEngine>> engine = Open(&db);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine)->version(), 3u);
  EXPECT_EQ((*engine)->stats().replayed_records, 3u);
  EXPECT_FALSE((*engine)->stats().recovered_torn_tail);
  // Byte-identical, not just set-equal: open rows preserve tuple order.
  EXPECT_EQ(db.ToText(), crashed_text);
}

TEST_F(StorageEngineTest, SnapshotPlusTailReplayEqualsPureReplay) {
  std::string final_text;
  {
    Database db;
    Result<std::unique_ptr<StorageEngine>> engine = Open(&db);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE((*engine)->ApplyAdd(db, "R", Rel({1})).ok());
    ASSERT_TRUE((*engine)->ApplyPut(db, "R", Rel({1, 2})).ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    EXPECT_EQ((*engine)->stats().snapshot_version, 2u);
    EXPECT_EQ((*engine)->stats().wal_records, 0u);
    ASSERT_TRUE((*engine)->ApplyAdd(db, "S", Rel({9})).ok());
    final_text = db.ToText();
  }
  Database db;
  Result<std::unique_ptr<StorageEngine>> engine = Open(&db);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine)->version(), 3u);
  EXPECT_EQ((*engine)->stats().snapshot_version, 2u);
  // Only the post-checkpoint tail replays.
  EXPECT_EQ((*engine)->stats().replayed_records, 1u);
  EXPECT_EQ(db.ToText(), final_text);
  // History survives the checkpoint: R's first state is still queryable.
  Result<Database> v1 = (*engine)->AsOf(1);
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(v1->Names(), std::vector<std::string>{"R"});
  EXPECT_EQ(v1->Get("R")->size(), 1);
}

TEST_F(StorageEngineTest, TornTailRollsBackToTheAcknowledgedPrefix) {
  {
    Database db;
    Result<std::unique_ptr<StorageEngine>> engine = Open(&db);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE((*engine)->ApplyAdd(db, "R", Rel({1})).ok());
    ASSERT_TRUE((*engine)->ApplyPut(db, "R", Rel({1, 2})).ok());
  }
  // Tear the log: chop bytes off the final record.
  std::string wal_path = dir_ + "/wal.log";
  std::uint64_t size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, size - 5);

  Database db;
  Result<std::unique_ptr<StorageEngine>> engine = Open(&db);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_TRUE((*engine)->stats().recovered_torn_tail);
  EXPECT_EQ((*engine)->version(), 1u);
  EXPECT_EQ(db.Get("R")->size(), 1);  // The Put rolled back.

  // The torn tail was truncated on open, so committing version 2 again
  // appends cleanly and a further reopen sees it.
  ASSERT_TRUE((*engine)->ApplyPut(db, "R", Rel({5})).ok());
  EXPECT_EQ((*engine)->version(), 2u);
  engine->reset();
  Database db2;
  Result<std::unique_ptr<StorageEngine>> again = Open(&db2);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE((*again)->stats().recovered_torn_tail);
  EXPECT_EQ((*again)->version(), 2u);
  EXPECT_EQ(db2.ToText(), db.ToText());
}

TEST_F(StorageEngineTest, ReplayIsIdempotentAcrossACheckpointCrashWindow) {
  {
    Database db;
    Result<std::unique_ptr<StorageEngine>> engine = Open(&db);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE((*engine)->ApplyAdd(db, "R", Rel({1})).ok());
    ASSERT_TRUE((*engine)->ApplyPut(db, "R", Rel({1, 2})).ok());
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    // Simulate a crash between snapshot rename and WAL reset: rewrite the
    // already-snapshotted records back into the log.  Replay must skip
    // every lsn <= snapshot version instead of double-applying.
    std::ofstream wal(dir_ + "/wal.log", std::ios::binary | std::ios::trunc);
    WalRecord stale;
    stale.lsn = 1;
    stale.type = WalRecordType::kPut;
    stale.name = "R";
    stale.segment.name = "R";
    stale.segment.schema = Schema::Temporal(1);
    SegmentRow row;
    row.tuple = GeneralizedTuple({Lrp::Singleton(1)});
    row.sys_from = 1;
    stale.segment.rows.push_back(row);
    wal << *EncodeWalRecord(stale);
  }
  Database db;
  Result<std::unique_ptr<StorageEngine>> engine = Open(&db);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine)->version(), 2u);
  EXPECT_EQ((*engine)->stats().replayed_records, 0u);  // Stale lsn skipped.
  EXPECT_EQ(db.Get("R")->size(), 2);
}

TEST_F(StorageEngineTest, FailedMutationsDoNotAdvanceTheVersion) {
  Database db;
  Result<std::unique_ptr<StorageEngine>> engine = Open(&db);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->ApplyAdd(db, "R", Rel({1})).ok());
  EXPECT_FALSE((*engine)->ApplyAdd(db, "R", Rel({2})).ok());  // Duplicate.
  EXPECT_FALSE((*engine)->ApplyRemove(db, "Nope").ok());      // Missing.
  EXPECT_EQ((*engine)->version(), 1u);
  EXPECT_EQ((*engine)->stats().wal_records, 1u);
}

TEST_F(StorageEngineTest, AutoCheckpointCompactsTheLog) {
  StorageEngineOptions options;
  options.auto_checkpoint_records = 2;
  Database db;
  Result<std::unique_ptr<StorageEngine>> engine = Open(&db, options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->ApplyAdd(db, "R", Rel({1})).ok());
  ASSERT_TRUE((*engine)->ApplyPut(db, "R", Rel({2})).ok());
  EXPECT_EQ((*engine)->stats().snapshot_version, 2u);
  EXPECT_EQ((*engine)->stats().wal_records, 0u);
  EXPECT_EQ((*engine)->stats().wal_bytes, 0u);
}

// The pinned history scenario used throughout this suite:
//   lsn 1  Add R = {a}
//   lsn 2  Put R = {a, b}
//   lsn 3  Put R = {b, c}
//   lsn 4  Remove R
//   lsn 5  Add R = {d}
// System periods: a [1,3), b [2,4), c [3,4), d [5,open); R's first epoch is
// [1,4), its second [5,open).
class PinnedHistoryTest : public StorageEngineTest {
 protected:
  void SetUp() override {
    StorageEngineTest::SetUp();
    Result<std::unique_ptr<StorageEngine>> engine = Open(&db_);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
    ASSERT_TRUE(engine_->ApplyAdd(db_, "R", Rel({kA})).ok());
    ASSERT_TRUE(engine_->ApplyPut(db_, "R", Rel({kA, kB})).ok());
    ASSERT_TRUE(engine_->ApplyPut(db_, "R", Rel({kB, kC})).ok());
    ASSERT_TRUE(engine_->ApplyRemove(db_, "R").ok());
    ASSERT_TRUE(engine_->ApplyAdd(db_, "R", Rel({kD})).ok());
    ASSERT_EQ(engine_->version(), 5u);
  }

  std::vector<std::int64_t> PointsAsOf(std::uint64_t version) {
    Result<Database> snap = engine_->AsOf(version);
    EXPECT_TRUE(snap.ok()) << snap.status();
    std::vector<std::int64_t> points;
    if (snap.ok() && snap->Has("R")) {
      const GeneralizedRelation relation = snap->Get("R").value();
      for (const GeneralizedTuple& t : relation.tuples()) {
        points.push_back(Point(t));
      }
    }
    return points;
  }

  static constexpr std::int64_t kA = 10, kB = 20, kC = 30, kD = 40;
  Database db_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(PinnedHistoryTest, AsOfReconstructsEveryVersion) {
  EXPECT_EQ(PointsAsOf(0), (std::vector<std::int64_t>{}));
  EXPECT_EQ(PointsAsOf(1), (std::vector<std::int64_t>{kA}));
  EXPECT_EQ(PointsAsOf(2), (std::vector<std::int64_t>{kA, kB}));
  EXPECT_EQ(PointsAsOf(3), (std::vector<std::int64_t>{kB, kC}));
  EXPECT_EQ(PointsAsOf(4), (std::vector<std::int64_t>{}));  // Dropped.
  EXPECT_EQ(PointsAsOf(5), (std::vector<std::int64_t>{kD}));
  EXPECT_EQ(PointsAsOf(99), (std::vector<std::int64_t>{kD}));  // Future = now.
}

TEST_F(PinnedHistoryTest, HistoryPinsEveryRowLifetime) {
  Result<std::vector<HistoryEntry>> history = engine_->History("R");
  ASSERT_TRUE(history.ok()) << history.status();
  ASSERT_EQ(history->size(), 4u);
  auto expect_row = [&](std::int64_t point, std::uint64_t from,
                        std::uint64_t to) {
    for (const HistoryEntry& e : *history) {
      if (Point(e.tuple) == point) {
        EXPECT_EQ(e.sys_from, from) << "point " << point;
        EXPECT_EQ(e.sys_to, to) << "point " << point;
        return;
      }
    }
    ADD_FAILURE() << "point " << point << " missing from history";
  };
  expect_row(kA, 1, 3);
  expect_row(kB, 2, 4);
  expect_row(kC, 3, 4);
  expect_row(kD, 5, kOpenVersion);
  EXPECT_FALSE(engine_->History("Nope").ok());
}

TEST_F(PinnedHistoryTest, SurvivorsKeepTheirOriginalSysFrom) {
  // b appeared at lsn 2 and survived the lsn-3 Put unchanged; its sys_from
  // must still read 2, not 3 (the diff reuses surviving rows).
  Result<std::vector<HistoryEntry>> history = engine_->History("R");
  ASSERT_TRUE(history.ok());
  int b_rows = 0;
  for (const HistoryEntry& e : *history) {
    if (Point(e.tuple) == kB) ++b_rows;
  }
  EXPECT_EQ(b_rows, 1);  // One continuous lifetime, not two fragments.
}

TEST_F(PinnedHistoryTest, HistorySurvivesCheckpointAndReopen) {
  ASSERT_TRUE(engine_->Checkpoint().ok());
  engine_.reset();
  Database db;
  Result<std::unique_ptr<StorageEngine>> engine = Open(&db);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine)->version(), 5u);
  Result<std::vector<HistoryEntry>> history = (*engine)->History("R");
  ASSERT_TRUE(history.ok()) << history.status();
  EXPECT_EQ(history->size(), 4u);
  Result<Database> v3 = (*engine)->AsOf(3);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->Get("R")->size(), 2);
  EXPECT_EQ(db.ToText(), db_.ToText());
}

}  // namespace
}  // namespace storage
}  // namespace itdb
