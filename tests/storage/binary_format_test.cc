// Exactness and corruption-rejection tests for the binary on-disk format:
// segments, snapshots, and whole-database files must round-trip every tuple
// bit-identically (including unclosed constraint matrices), and any torn or
// bit-flipped file must be rejected by the trailing CRC.

#include "storage/binary/binary_format.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dbm.h"
#include "core/lrp.h"
#include "core/relation.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "core/value.h"
#include "storage/database.h"

namespace itdb {
namespace storage {
namespace {

GeneralizedTuple MakeTuple(std::int64_t offset, std::int64_t period) {
  return GeneralizedTuple({Lrp::Make(offset, period)});
}

RelationSegment MakeMixedSegment() {
  RelationSegment segment;
  segment.name = "Mixed";
  segment.schema = Schema({"T", "U"}, {"Count", "Tag"},
                          {DataType::kInt, DataType::kString});
  segment.epoch_from = 3;
  segment.epoch_to = kOpenVersion;
  for (int i = 0; i < 4; ++i) {
    GeneralizedTuple t({Lrp::Make(i, 7), Lrp::Make(2 * i + 1, 7)},
                       {Value(static_cast<std::int64_t>(100 - i)),
                        Value(i % 2 == 0 ? "even" : "odd \"quoted\"")});
    Dbm dbm(2);
    dbm.AddDifferenceUpperBound(1, 0, 5 + i);
    dbm.AddLowerBound(0, -3);
    EXPECT_TRUE(dbm.Close().ok());
    t.set_constraints(std::move(dbm));
    SegmentRow row;
    row.tuple = std::move(t);
    row.sys_from = static_cast<std::uint64_t>(i + 1);
    row.sys_to = i < 2 ? static_cast<std::uint64_t>(i + 10) : kOpenVersion;
    segment.rows.push_back(std::move(row));
  }
  return segment;
}

void ExpectRowsEqual(const std::vector<SegmentRow>& got,
                     const std::vector<SegmentRow>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].sys_from, want[i].sys_from) << "row " << i;
    EXPECT_EQ(got[i].sys_to, want[i].sys_to) << "row " << i;
    EXPECT_EQ(got[i].tuple, want[i].tuple) << "row " << i;
    EXPECT_EQ(got[i].tuple.constraints().closed(),
              want[i].tuple.constraints().closed())
        << "row " << i;
    EXPECT_EQ(got[i].tuple.constraints().feasible(),
              want[i].tuple.constraints().feasible())
        << "row " << i;
  }
}

TEST(BinaryFormatTest, SegmentRoundTripsWithDictionaryAndSystemPeriods) {
  RelationSegment segment = MakeMixedSegment();
  std::string bytes;
  ASSERT_TRUE(AppendSegment(segment, &bytes).ok());
  std::size_t offset = 0;
  Result<RelationSegment> decoded = ReadSegment(bytes, &offset);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(decoded->name, segment.name);
  EXPECT_EQ(decoded->schema, segment.schema);
  EXPECT_EQ(decoded->epoch_from, segment.epoch_from);
  EXPECT_EQ(decoded->epoch_to, segment.epoch_to);
  ExpectRowsEqual(decoded->rows, segment.rows);
}

TEST(BinaryFormatTest, UnclosedMatrixRoundTripsBitForBit) {
  // The parser hands over unclosed systems; the format must preserve the
  // exact pre-closure bounds AND the closed/feasible flags, not silently
  // canonicalize.
  GeneralizedTuple t = MakeTuple(5, 3);
  Dbm dbm(1);
  dbm.AddUpperBound(0, 41);
  dbm.AddLowerBound(0, 2);
  ASSERT_FALSE(dbm.closed());
  t.set_constraints(dbm);

  RelationSegment segment;
  segment.name = "U";
  segment.schema = Schema::Temporal(1);
  SegmentRow row;
  row.tuple = t;
  segment.rows.push_back(row);

  std::string bytes;
  ASSERT_TRUE(AppendSegment(segment, &bytes).ok());
  std::size_t offset = 0;
  Result<RelationSegment> decoded = ReadSegment(bytes, &offset);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const Dbm& back = decoded->rows[0].tuple.constraints();
  EXPECT_FALSE(back.closed());
  for (int p = 0; p < 2; ++p) {
    for (int q = 0; q < 2; ++q) {
      EXPECT_EQ(back.bound_node(p, q), dbm.bound_node(p, q))
          << "(" << p << "," << q << ")";
    }
  }
}

TEST(BinaryFormatTest, SnapshotRoundTripsHeaderAndSegments) {
  SnapshotFile file;
  file.commit_version = 42;
  file.header_comments = {"saved by itdb", "second line"};
  file.segments.push_back(MakeMixedSegment());
  RelationSegment closed_epoch = MakeMixedSegment();
  closed_epoch.name = "Old";
  closed_epoch.epoch_to = 17;
  file.segments.push_back(std::move(closed_epoch));

  Result<std::string> bytes = EncodeSnapshot(file);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<SnapshotFile> decoded = DecodeSnapshot(*bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->commit_version, 42u);
  EXPECT_EQ(decoded->header_comments, file.header_comments);
  ASSERT_EQ(decoded->segments.size(), 2u);
  EXPECT_EQ(decoded->segments[0].name, "Mixed");
  EXPECT_EQ(decoded->segments[1].name, "Old");
  EXPECT_EQ(decoded->segments[1].epoch_to, 17u);
  ExpectRowsEqual(decoded->segments[0].rows, file.segments[0].rows);
}

TEST(BinaryFormatTest, EveryBitFlipIsRejected) {
  SnapshotFile file;
  file.commit_version = 7;
  file.segments.push_back(MakeMixedSegment());
  Result<std::string> bytes = EncodeSnapshot(file);
  ASSERT_TRUE(bytes.ok());
  // Flip one byte at a spread of positions (covering header, payload, and
  // the CRC itself); the trailing CRC must catch all of them.
  for (std::size_t pos = 0; pos < bytes->size(); pos += 11) {
    std::string corrupt = *bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    EXPECT_FALSE(DecodeSnapshot(corrupt).ok()) << "byte " << pos;
  }
}

TEST(BinaryFormatTest, EveryTruncationIsRejected) {
  SnapshotFile file;
  file.segments.push_back(MakeMixedSegment());
  Result<std::string> bytes = EncodeSnapshot(file);
  ASSERT_TRUE(bytes.ok());
  for (std::size_t len = 0; len < bytes->size(); len += 13) {
    EXPECT_FALSE(DecodeSnapshot(bytes->substr(0, len)).ok()) << "len " << len;
  }
}

TEST(BinaryFormatTest, DatabaseEncodeDecodeIsTextExact) {
  Result<Database> db = Database::FromText(R"(# durability demo
# two relations

relation Trains(Leave: time, Arrive: time) {
  [2+60n, 80+60n] : Leave = Arrive - 78;
}

relation Tags(T: time, Name: string) {
  [4n | "alpha"];
  [1+4n | "beta \"x\""];
}
)");
  ASSERT_TRUE(db.ok()) << db.status();
  Result<std::string> bytes = EncodeDatabase(*db);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<Database> decoded = DecodeDatabase(*bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->Names(), db->Names());
  EXPECT_EQ(decoded->header_comments(), db->header_comments());
  // The binary round trip is exact, so the text renderings agree byte for
  // byte -- stronger than set equality.
  EXPECT_EQ(decoded->ToText(), db->ToText());
  for (const std::string& name : db->Names()) {
    EXPECT_EQ(decoded->Get(name)->tuples(), db->Get(name)->tuples()) << name;
  }
}

TEST(BinaryFormatTest, SaveLoadFileRoundTrips) {
  Result<Database> db = Database::FromText(
      "relation R(T: time) {\n  [3+10n] : T >= 3;\n}\n");
  ASSERT_TRUE(db.ok());
  std::string path =
      ::testing::TempDir() + "/binary_format_test_roundtrip.itdbb";
  ASSERT_TRUE(SaveDatabaseFile(*db, path).ok());
  Result<Database> loaded = LoadDatabaseFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->ToText(), db->ToText());
}

TEST(BinaryFormatTest, WirePrimitivesRoundTripAndFailOnTruncation) {
  std::string buf;
  wire::PutU32(&buf, 0xDEADBEEFu);
  wire::PutU64(&buf, 0x0123456789ABCDEFull);
  wire::PutString(&buf, "hello\0world");
  std::size_t pos = 0;
  Result<std::uint32_t> u32 = wire::ReadU32(buf, &pos);
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0xDEADBEEFu);
  Result<std::uint64_t> u64 = wire::ReadU64(buf, &pos);
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x0123456789ABCDEFull);
  Result<std::string> s = wire::ReadString(buf, &pos);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, std::string("hello"));  // PutString took a C string view.
  EXPECT_EQ(pos, buf.size());
  std::size_t bad = 0;
  EXPECT_FALSE(wire::ReadU64(buf.substr(0, 3), &bad).ok());
}

}  // namespace
}  // namespace storage
}  // namespace itdb
