// Robustness: malformed and randomly mutated inputs must produce Status
// errors (or parse fine), never crashes, across all three parsers
// (relation text format, FO queries, TL formulas).  Deterministic seeds.

#include <random>
#include <string>

#include <gtest/gtest.h>

#include "query/parser.h"
#include "storage/text_format.h"
#include "tl/parser.h"

namespace itdb {
namespace {

constexpr const char* kValidRelation = R"(
relation Perform(From: time, To: time, Robot: string) {
  [2+2n, 4+2n | "robot1"] : From = To - 2 && From >= -1;
  [10n, 3+10n | "robot2"] : From = To - 3;
}
)";

constexpr const char* kValidQuery =
    "EXISTS t1 . EXISTS t2 . Perform(t1, t2, \"robot1\") AND t1 + 5 <= t2";

constexpr const char* kValidTl = "G(req -> F[0,5](ack)) & !(p U q)";

std::string Mutate(const std::string& input, std::mt19937& rng) {
  std::string out = input;
  std::uniform_int_distribution<int> op_pick(0, 2);
  std::uniform_int_distribution<std::size_t> pos_pick(0, out.size() - 1);
  std::uniform_int_distribution<int> char_pick(32, 126);
  int mutations = 1 + static_cast<int>(rng() % 4);
  for (int i = 0; i < mutations && !out.empty(); ++i) {
    std::size_t pos = pos_pick(rng) % out.size();
    switch (op_pick(rng)) {
      case 0:  // Delete.
        out.erase(pos, 1);
        break;
      case 1:  // Replace.
        out[pos] = static_cast<char>(char_pick(rng));
        break;
      default:  // Insert.
        out.insert(pos, 1, static_cast<char>(char_pick(rng)));
        break;
    }
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ParserFuzzTest, MutatedRelationTextNeverCrashes) {
  std::mt19937 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::string text = Mutate(kValidRelation, rng);
    Result<NamedRelation> r = ParseRelation(text);
    if (r.ok()) {
      // Whatever parsed must round-trip through the printer.
      std::string printed = PrintRelation(r.value().name, r.value().relation);
      EXPECT_TRUE(ParseRelation(printed).ok()) << printed;
    }
  }
}

TEST_P(ParserFuzzTest, MutatedQueriesNeverCrash) {
  std::mt19937 rng(GetParam() + 1000);
  for (int round = 0; round < 50; ++round) {
    std::string text = Mutate(kValidQuery, rng);
    Result<query::QueryPtr> q = query::ParseQuery(text);
    if (q.ok()) {
      EXPECT_FALSE(q.value()->ToString().empty());
    }
  }
}

TEST_P(ParserFuzzTest, MutatedTlFormulasNeverCrash) {
  std::mt19937 rng(GetParam() + 2000);
  for (int round = 0; round < 50; ++round) {
    std::string text = Mutate(kValidTl, rng);
    Result<tl::TlPtr> f = tl::ParseTlFormula(text);
    if (f.ok()) {
      EXPECT_FALSE(f.value()->ToString().empty());
    }
  }
}

TEST_P(ParserFuzzTest, RandomGarbageNeverCrashes) {
  std::mt19937 rng(GetParam() + 3000);
  std::uniform_int_distribution<int> len_pick(0, 60);
  std::uniform_int_distribution<int> char_pick(1, 126);
  for (int round = 0; round < 50; ++round) {
    std::string text;
    int len = len_pick(rng);
    for (int i = 0; i < len; ++i) {
      text += static_cast<char>(char_pick(rng));
    }
    (void)ParseRelation(text);
    (void)query::ParseQuery(text);
    (void)tl::ParseTlFormula(text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{20}));

TEST(ParserRobustnessTest, DeepNestingDoesNotOverflow) {
  // 200 levels of parentheses: recursive descent must survive.
  std::string text;
  for (int i = 0; i < 200; ++i) text += "NOT (";
  text += "P(t)";
  for (int i = 0; i < 200; ++i) text += ")";
  Result<query::QueryPtr> q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
}

}  // namespace
}  // namespace itdb
