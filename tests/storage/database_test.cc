#include "storage/database.h"

#include <gtest/gtest.h>

namespace itdb {
namespace {

constexpr const char* kTwoRelations = R"(
relation Trains(Leave: time, Arrive: time) {
  [2+60n, 80+60n] : Leave = Arrive - 78;
  [46+60n, 110+60n] : Leave = Arrive - 64;
}

relation Maintenance(T: time) {
  [30n] : T >= 0;
}
)";

TEST(DatabaseTest, AddGetRemove) {
  Database db;
  GeneralizedRelation r(Schema::Temporal(1));
  EXPECT_TRUE(db.Add("a", r).ok());
  EXPECT_FALSE(db.Add("a", r).ok());  // Duplicate.
  EXPECT_TRUE(db.Has("a"));
  EXPECT_TRUE(db.Get("a").ok());
  EXPECT_FALSE(db.Get("b").ok());
  EXPECT_EQ(db.Get("b").status().code(), StatusCode::kNotFound);
  db.Put("a", r);  // Replace is fine.
  EXPECT_EQ(db.size(), 1);
  EXPECT_TRUE(db.Remove("a").ok());
  EXPECT_FALSE(db.Remove("a").ok());
}

TEST(DatabaseTest, FromTextParsesMultipleRelations) {
  Result<Database> db = Database::FromText(kTwoRelations);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db.value().size(), 2);
  EXPECT_EQ(db.value().Names(),
            (std::vector<std::string>{"Maintenance", "Trains"}));
  Result<GeneralizedRelation> trains = db.value().Get("Trains");
  ASSERT_TRUE(trains.ok());
  EXPECT_EQ(trains.value().size(), 2);
  // 7:02 -> 8:20 expressed in minutes-past-some-hour arithmetic: the tuple
  // (2, 80) is a member.
  EXPECT_TRUE(trains.value().Contains({{2, 80}, {}}));
  EXPECT_TRUE(trains.value().Contains({{62, 140}, {}}));
  EXPECT_FALSE(trains.value().Contains({{2, 140}, {}}));
}

TEST(DatabaseTest, RoundTrip) {
  Result<Database> db = Database::FromText(kTwoRelations);
  ASSERT_TRUE(db.ok());
  std::string text = db.value().ToText();
  Result<Database> again = Database::FromText(text);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
  EXPECT_EQ(again.value().Names(), db.value().Names());
  for (const std::string& name : db.value().Names()) {
    EXPECT_EQ(again.value().Get(name).value().Enumerate(-100, 100),
              db.value().Get(name).value().Enumerate(-100, 100))
        << name;
  }
}

TEST(DatabaseTest, FromTextRejectsDuplicates) {
  EXPECT_FALSE(Database::FromText("relation A(T: time) {}\n"
                                  "relation A(T: time) {}")
                   .ok());
}

}  // namespace
}  // namespace itdb
