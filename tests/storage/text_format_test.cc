#include "storage/text_format.h"

#include <gtest/gtest.h>

namespace itdb {
namespace {

// Table 1 of the paper in the textual format.
constexpr const char* kRobots = R"(
# Table 1: the activities of robots.
relation Perform(From: time, To: time, Robot: string) {
  [2+2n, 4+2n | "robot1"] : From = To - 2 && From >= -1;
  [6+10n, 7+10n | "robot2"] : From = To - 1 && From >= 10;
  [10n, 3+10n | "robot2"] : From = To - 3;
}
)";

TEST(TextFormatTest, ParsesTable1) {
  Result<NamedRelation> r = ParseRelation(kRobots);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().name, "Perform");
  const GeneralizedRelation& rel = r.value().relation;
  EXPECT_EQ(rel.schema().temporal_arity(), 2);
  EXPECT_EQ(rel.schema().data_arity(), 1);
  ASSERT_EQ(rel.size(), 3);
  EXPECT_EQ(rel.tuples()[0].lrp(0), Lrp::Make(2, 2));
  EXPECT_EQ(rel.tuples()[2].lrp(0), Lrp::Make(0, 10));
  // Semantics of the first tuple: (x, x+2) for even x >= 0 (X1 >= -1 and
  // even means >= 0).
  EXPECT_TRUE(rel.Contains({{0, 2}, {Value("robot1")}}));
  EXPECT_TRUE(rel.Contains({{16, 17}, {Value("robot2")}}));
  EXPECT_FALSE(rel.Contains({{6, 7}, {Value("robot2")}}));
}

TEST(TextFormatTest, LrpSyntaxVariants) {
  Result<NamedRelation> r = ParseRelation(
      "relation R(A: time, B: time, C: time, D: time) {"
      "  [5, n, 10n, -3+4n];"
      "}");
  ASSERT_TRUE(r.ok()) << r.status();
  const GeneralizedTuple& t = r.value().relation.tuples()[0];
  EXPECT_EQ(t.lrp(0), Lrp::Singleton(5));
  EXPECT_EQ(t.lrp(1), Lrp::Make(0, 1));
  EXPECT_EQ(t.lrp(2), Lrp::Make(0, 10));
  EXPECT_EQ(t.lrp(3), Lrp::Make(-3, 4));
}

TEST(TextFormatTest, PaperStyleColumnNames) {
  // X1/X2 and T1/T2 resolve positionally, 1-based, as in the paper.
  Result<NamedRelation> r = ParseRelation(
      "relation R(A: time, B: time) { [n, n] : X1 <= X2 + 5 && T2 >= 0; }");
  ASSERT_TRUE(r.ok()) << r.status();
  const GeneralizedTuple& t = r.value().relation.tuples()[0];
  EXPECT_TRUE(t.ContainsTemporal({3, 4}));
  EXPECT_FALSE(t.ContainsTemporal({10, 4}));
  EXPECT_FALSE(t.ContainsTemporal({-8, -1}));
}

TEST(TextFormatTest, ConstraintOperators) {
  Result<NamedRelation> r = ParseRelation(
      "relation R(A: time, B: time) { [n, n] : A < B && B > 3 && A >= -2; }");
  ASSERT_TRUE(r.ok()) << r.status();
  const GeneralizedTuple& t = r.value().relation.tuples()[0];
  EXPECT_TRUE(t.ContainsTemporal({-2, 4}));
  EXPECT_FALSE(t.ContainsTemporal({4, 4}));   // A < B violated.
  EXPECT_FALSE(t.ContainsTemporal({-3, 4}));  // A >= -2 violated.
  EXPECT_FALSE(t.ContainsTemporal({-2, 3}));  // B > 3 violated.
}

TEST(TextFormatTest, ConstantOnLeftSide) {
  Result<NamedRelation> r =
      ParseRelation("relation R(A: time) { [n] : 5 <= A; }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.value().relation.tuples()[0].ContainsTemporal({5}));
  EXPECT_FALSE(r.value().relation.tuples()[0].ContainsTemporal({4}));
}

TEST(TextFormatTest, IntDataValues) {
  Result<NamedRelation> r = ParseRelation(
      "relation R(T: time, Count: int) { [2n | -7]; [1+2n | 9]; }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().relation.tuples()[0].value(0).AsInt(), -7);
  EXPECT_EQ(r.value().relation.tuples()[1].value(0).AsInt(), 9);
}

TEST(TextFormatTest, ParseErrors) {
  EXPECT_FALSE(ParseRelation("relational R(T: time) {}").ok());
  EXPECT_FALSE(ParseRelation("relation R(T: tame) {}").ok());
  EXPECT_FALSE(ParseRelation("relation R(T: time) { [n] }").ok());  // No ';'.
  EXPECT_FALSE(
      ParseRelation("relation R(T: time) { [n, n]; }").ok());  // Arity.
  EXPECT_FALSE(
      ParseRelation("relation R(T: time) { [n] : Q >= 0; }").ok());  // Name.
  EXPECT_FALSE(
      ParseRelation("relation R(T: time) { [n] : 3 >= 0; }").ok());  // Ground.
  EXPECT_FALSE(
      ParseRelation("relation R(d: string, T: time) {}").ok());  // Order.
  EXPECT_FALSE(ParseRelation("relation R(T: time) {} trailing").ok());
  // Duplicate attribute names, within and across kinds.
  EXPECT_FALSE(ParseRelation("relation R(T: time, T: time) {}").ok());
  EXPECT_FALSE(ParseRelation("relation R(T: time, T: string) {}").ok());
  EXPECT_FALSE(
      ParseRelation("relation R(T: time, d: string, d: int) {}").ok());
}

TEST(TextFormatTest, RoundTrip) {
  Result<NamedRelation> first = ParseRelation(kRobots);
  ASSERT_TRUE(first.ok());
  std::string printed = PrintRelation("Perform", first.value().relation);
  Result<NamedRelation> second = ParseRelation(printed);
  ASSERT_TRUE(second.ok()) << second.status() << "\n" << printed;
  // Semantically identical on a window.
  EXPECT_EQ(second.value().relation.Enumerate(-30, 30),
            first.value().relation.Enumerate(-30, 30));
}

TEST(TextFormatTest, RoundTripUnconstrained) {
  Result<NamedRelation> first =
      ParseRelation("relation R(T: time) { [3+7n]; [5]; }");
  ASSERT_TRUE(first.ok());
  std::string printed = PrintRelation("R", first.value().relation);
  Result<NamedRelation> second = ParseRelation(printed);
  ASSERT_TRUE(second.ok()) << printed;
  EXPECT_EQ(second.value().relation.Enumerate(-30, 30),
            first.value().relation.Enumerate(-30, 30));
}

TEST(TextFormatTest, PrintOmitsInfeasibleTuples) {
  GeneralizedRelation rel(Schema::Temporal(1));
  GeneralizedTuple dead({Lrp::Make(0, 1)});
  dead.mutable_constraints().AddUpperBound(0, 0);
  dead.mutable_constraints().AddLowerBound(0, 1);
  ASSERT_TRUE(rel.AddTuple(std::move(dead)).ok());
  std::string printed = PrintRelation("R", rel);
  Result<NamedRelation> parsed = ParseRelation(printed);
  ASSERT_TRUE(parsed.ok()) << printed;
  EXPECT_EQ(parsed.value().relation.size(), 0);
}

}  // namespace
}  // namespace itdb
