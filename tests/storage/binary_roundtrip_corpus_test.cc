// Corpus-wide text -> binary -> text round trip: every checked-in catalog
// (the fuzz repro corpus and the example query databases) must render
// byte-identically after a trip through the binary format, header comments
// included.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/binary/binary_format.h"
#include "storage/database.h"

#ifndef ITDB_FUZZ_CORPUS_DIR
#error "ITDB_FUZZ_CORPUS_DIR must be defined by the build"
#endif
#ifndef ITDB_EXAMPLES_QUERIES_DIR
#error "ITDB_EXAMPLES_QUERIES_DIR must be defined by the build"
#endif

namespace itdb {
namespace storage {
namespace {

std::vector<std::filesystem::path> CatalogFiles() {
  std::vector<std::filesystem::path> files;
  for (const char* dir : {ITDB_FUZZ_CORPUS_DIR, ITDB_EXAMPLES_QUERIES_DIR}) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".itdb") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadAll(const std::filesystem::path& path) {
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(BinaryRoundtripCorpusTest, CorpusIsNotEmpty) {
  EXPECT_GE(CatalogFiles().size(), 7u);
}

TEST(BinaryRoundtripCorpusTest, EveryCatalogRoundTripsThroughBinary) {
  for (const std::filesystem::path& path : CatalogFiles()) {
    SCOPED_TRACE(path.filename().string());
    Result<Database> db = Database::FromText(ReadAll(path));
    ASSERT_TRUE(db.ok()) << db.status();
    // The parse -> print fixpoint is the reference rendering; the binary
    // trip must reproduce it byte for byte.
    std::string reference = db->ToText();
    Result<std::string> bytes = EncodeDatabase(*db);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    Result<Database> decoded = DecodeDatabase(*bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->ToText(), reference);
    // Re-encoding the decoded catalog is a binary fixpoint: the decode was
    // exact, so the second image is byte-identical to the first.
    Result<std::string> bytes2 = EncodeDatabase(*decoded);
    ASSERT_TRUE(bytes2.ok()) << bytes2.status();
    EXPECT_EQ(*bytes2, *bytes);
    // And the reprinted text still parses (text fixpoint through binary).
    Result<Database> reparsed = Database::FromText(decoded->ToText());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(reparsed->ToText(), reference);
  }
}

TEST(BinaryRoundtripCorpusTest, FileSaveLoadMatchesInMemoryTrip) {
  for (const std::filesystem::path& path : CatalogFiles()) {
    SCOPED_TRACE(path.filename().string());
    Result<Database> db = Database::FromText(ReadAll(path));
    ASSERT_TRUE(db.ok()) << db.status();
    std::string out = ::testing::TempDir() + "/corpus_roundtrip_" +
                      path.stem().string() + ".itdbb";
    ASSERT_TRUE(SaveDatabaseFile(*db, out).ok());
    Result<Database> loaded = LoadDatabaseFile(out);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->ToText(), db->ToText());
  }
}

}  // namespace
}  // namespace storage
}  // namespace itdb
