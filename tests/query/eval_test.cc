#include "query/eval.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace itdb {
namespace query {
namespace {

Database SmallDb() {
  Result<Database> db = Database::FromText(R"(
    relation P(T: time) { [3+10n] : T >= 3; }     # {3, 13, 23, ...}
    relation Q(T: time) { [10n]; }                # multiples of 10
    relation Less(A: time, B: time) { [n, n] : A <= B - 1; }
    relation Who(T: time, W: string) { [2n | "alice"]; [1+2n | "bob"]; }
  )");
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

Result<bool> Ask(const Database& db, const std::string& text) {
  return EvalBooleanQueryString(db, text);
}

std::set<std::int64_t> OpenUnary(const Database& db, const std::string& text,
                                 std::int64_t lo, std::int64_t hi) {
  Result<GeneralizedRelation> r = EvalQueryString(db, text);
  EXPECT_TRUE(r.ok()) << r.status() << " for " << text;
  std::set<std::int64_t> out;
  if (!r.ok()) return out;
  EXPECT_EQ(r.value().schema().temporal_arity(), 1);
  for (const ConcreteRow& row : r.value().Enumerate(lo, hi)) {
    out.insert(row.temporal[0]);
  }
  return out;
}

TEST(EvalTest, ExistentialAtom) {
  Database db = SmallDb();
  EXPECT_TRUE(Ask(db, "EXISTS t . P(t)").value());
  EXPECT_TRUE(Ask(db, "EXISTS t . Q(t)").value());
  // P lives on 3+10n, Q on 10n: disjoint residues.
  EXPECT_FALSE(Ask(db, "EXISTS t . P(t) AND Q(t)").value());
}

TEST(EvalTest, ConstantArguments) {
  Database db = SmallDb();
  EXPECT_TRUE(Ask(db, "P(13)").value());
  EXPECT_FALSE(Ask(db, "P(14)").value());
  EXPECT_FALSE(Ask(db, "P(-7)").value());  // On the lrp but below the bound.
  EXPECT_TRUE(Ask(db, "Q(-20)").value());
  EXPECT_TRUE(Ask(db, "Who(4, \"alice\")").value());
  EXPECT_FALSE(Ask(db, "Who(4, \"bob\")").value());
}

TEST(EvalTest, OpenAtomQuery) {
  Database db = SmallDb();
  std::set<std::int64_t> expect;
  for (std::int64_t x = 3; x <= 60; x += 10) expect.insert(x);
  EXPECT_EQ(OpenUnary(SmallDb(), "P(t)", -60, 60), expect);
}

TEST(EvalTest, SuccessorOffsetsShiftColumns) {
  // P(t + 7) holds iff t + 7 in {3 + 10n, >= 3}, i.e. t in {-4 + 10n, >= -4}.
  std::set<std::int64_t> expect;
  for (std::int64_t x = -4; x <= 60; x += 10) expect.insert(x);
  EXPECT_EQ(OpenUnary(SmallDb(), "P(t + 7)", -60, 60), expect);
}

TEST(EvalTest, RepeatedVariablesInAtom) {
  Database db = SmallDb();
  // Less(t, t) is always false (strict order).
  EXPECT_FALSE(Ask(db, "EXISTS t . Less(t, t)").value());
  EXPECT_TRUE(Ask(db, "EXISTS t . Less(t, t + 1)").value());
}

TEST(EvalTest, NegationOverZ) {
  Database db = SmallDb();
  EXPECT_TRUE(Ask(db, "EXISTS t . NOT Q(t)").value());
  std::set<std::int64_t> expect = {1, 2, 3, 4};
  EXPECT_EQ(OpenUnary(db, "NOT Q(t) AND 0 <= t AND t <= 4", -10, 10), expect);
}

TEST(EvalTest, UniversalTemporalQuantification) {
  Database db = SmallDb();
  // Every point is covered by alice (even) or bob (odd).
  EXPECT_TRUE(Ask(db, "FORALL t . EXISTS w . Who(t, w)").value());
  EXPECT_TRUE(
      Ask(db, "FORALL t . Who(t, \"alice\") OR Who(t, \"bob\")").value());
  EXPECT_FALSE(Ask(db, "FORALL t . Who(t, \"alice\")").value());
  // Every multiple of 10 shifted by 3 is in P -- but only from 0 upward.
  EXPECT_FALSE(Ask(db, "FORALL t . Q(t) -> P(t + 3)").value());
  EXPECT_TRUE(
      Ask(db, "FORALL t . (Q(t) AND t >= 0) -> P(t + 3)").value());
}

TEST(EvalTest, DataQuantification) {
  Database db = SmallDb();
  // No single w covers all t.
  EXPECT_FALSE(Ask(db, "EXISTS w . FORALL t . Who(t, w)").value());
  // alice and bob are distinct workers at distinct instants.
  EXPECT_TRUE(Ask(db,
                  "EXISTS w . EXISTS v . Who(2, w) AND Who(3, v) AND "
                  "NOT w = v")
                  .value());
  EXPECT_TRUE(Ask(db, "EXISTS w . Who(2, w) AND w = \"alice\"").value());
  EXPECT_FALSE(Ask(db, "EXISTS w . Who(2, w) AND w != \"alice\"").value());
}

TEST(EvalTest, OpenDataQuery) {
  Database db = SmallDb();
  Result<GeneralizedRelation> r = EvalQueryString(db, "Who(4, w)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().schema().data_names(), std::vector<std::string>{"w"});
  ASSERT_EQ(r.value().size(), 1);
  EXPECT_EQ(r.value().tuples()[0].value(0).AsString(), "alice");
}

TEST(EvalTest, MixedOpenQuery) {
  Database db = SmallDb();
  // Pairs (t, w): worker w active at both t and t + 2.
  Result<GeneralizedRelation> r =
      EvalQueryString(db, "Who(t, w) AND Who(t + 2, w)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().schema().temporal_names(),
            std::vector<std::string>{"t"});
  EXPECT_EQ(r.value().schema().data_names(), std::vector<std::string>{"w"});
  // Everyone keeps their parity: all (even, alice) and (odd, bob).
  EXPECT_TRUE(r.value().Contains({{4}, {Value("alice")}}));
  EXPECT_TRUE(r.value().Contains({{5}, {Value("bob")}}));
  EXPECT_FALSE(r.value().Contains({{4}, {Value("bob")}}));
}

TEST(EvalTest, ComparisonChains) {
  Database db = SmallDb();
  EXPECT_TRUE(Ask(db, "EXISTS a . EXISTS b . EXISTS c . "
                      "a <= b <= c AND a + 4 <= c AND P(a)")
                  .value());
  EXPECT_FALSE(Ask(db, "EXISTS a . a < a").value());
  EXPECT_TRUE(Ask(db, "EXISTS a . a <= a").value());
}

TEST(EvalTest, GroundComparisons) {
  Database db = SmallDb();
  EXPECT_TRUE(Ask(db, "3 <= 4").value());
  EXPECT_FALSE(Ask(db, "4 <= 3").value());
  EXPECT_TRUE(Ask(db, "EXISTS t . P(t) AND 1 = 1").value());
}

TEST(EvalTest, FreeVariablesRejectedInBooleanQueries) {
  Database db = SmallDb();
  Result<bool> r = Ask(db, "P(t)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---- The Example 2.4 train anomaly ----

TEST(EvalTest, Example24IntervalsPreventPhantomTrains) {
  // Trains every hour: slow (xx:02 -> xx+1:20), express (xx:46 -> xx+1:50),
  // minutes since midnight, period 60.  The interval representation must
  // NOT contain the phantom train xx:46 -> xx:50 that the two point-based
  // unary relations would fabricate.
  Result<Database> db = Database::FromText(R"(
    relation Train(Leave: time, Arrive: time) {
      [2+60n, 80+60n] : Leave = Arrive - 78;
      [46+60n, 110+60n] : Leave = Arrive - 64;
    }
  )");
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(Ask(db.value(), "Train(62, 140)").value());
  EXPECT_TRUE(Ask(db.value(), "Train(106, 170)").value());
  // The phantom: leaves at :46 and arrives at :50 four minutes later.
  EXPECT_FALSE(Ask(db.value(), "Train(106, 110)").value());
  EXPECT_FALSE(
      Ask(db.value(), "EXISTS t . Train(t, t + 4)").value());
}

// ---- Example 4.1 of the paper ----

Database RobotsDb(bool conflicting) {
  std::string text = R"(
    relation Perform(T1: time, T2: time, Robot: string, Task: string) {
      [8n, 6+8n | "r1", "task2"] : T1 = T2 - 6;
      [7+8n, 7+8n | "r2", "task1"] : T1 = T2;
    }
  )";
  if (conflicting) {
    text = R"(
      relation Perform(T1: time, T2: time, Robot: string, Task: string) {
        [8n, 6+8n | "r1", "task2"] : T1 = T2 - 6;
        [2+8n, 4+8n | "r2", "task1"] : T1 = T2 - 2;
      }
    )";
  }
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

TEST(EvalTest, Example41PinnedRobotQuiet) {
  // r2 only works at instants 7 (mod 8), never inside [0, 6]: during r1's
  // task2 interval [0, 6], r2 performs nothing.
  Database db = RobotsDb(/*conflicting=*/false);
  Result<bool> r = Ask(db,
                       "FORALL t3 . FORALL t4 . FORALL z . "
                       "(0 <= t3 AND t3 <= t4 AND t4 <= 6) -> "
                       "NOT Perform(t3, t4, \"r2\", z)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.value());
}

TEST(EvalTest, Example41PinnedRobotBusy) {
  // Here r2 works during (2, 4), inside [0, 6].
  Database db = RobotsDb(/*conflicting=*/true);
  Result<bool> r = Ask(db,
                       "FORALL t3 . FORALL t4 . FORALL z . "
                       "(0 <= t3 AND t3 <= t4 AND t4 <= 6) -> "
                       "NOT Perform(t3, t4, \"r2\", z)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r.value());
}

TEST(EvalTest, Example41PaperOriginalForm) {
  // The formula exactly as printed in the paper (universal block scoping
  // over the whole implication).  Naive evaluation would complement over
  // seven columns; the miniscoping optimizer makes it tractable.
  Database db = RobotsDb(/*conflicting=*/false);
  Result<bool> r = Ask(db, R"(
    EXISTS x . EXISTS y . EXISTS t1 . EXISTS t2 .
      FORALL t3 . FORALL t4 . FORALL z .
        (Perform(t1, t2, x, "task2") AND t1 <= t3 <= t4 <= t2
           AND t1 + 5 <= t2)
        -> NOT Perform(t3, t4, y, z)
  )");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.value());
}

TEST(EvalTest, Example41FullQuery) {
  // The paper's Example 4.1 (miniscoped form): there are robots x, y such
  // that whenever x performs task2 over an interval of length >= 5, y
  // performs nothing during any part of that interval.
  Database db = RobotsDb(/*conflicting=*/false);
  Result<bool> r = Ask(db,
                       "EXISTS x . EXISTS y . EXISTS t1 . EXISTS t2 . "
                       "Perform(t1, t2, x, \"task2\") AND t1 + 5 <= t2 AND "
                       "(FORALL t3 . FORALL t4 . "
                       " (t1 <= t3 AND t3 <= t4 AND t4 <= t2) -> "
                       " (FORALL z . NOT Perform(t3, t4, y, z)))");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.value());
}

TEST(EvalTest, PruneIntermediatesPreservesSemantics) {
  Database db = SmallDb();
  // OR of overlapping atoms piles up redundant tuples; AND and NOT route
  // the pruned intermediates through joins and complements.
  const std::string queries[] = {
      "P(t) OR P(t) OR Q(t)",
      "(P(t) OR Q(t)) AND NOT Q(t)",
      "EXISTS u . (P(u) OR P(u)) AND Less(u, t)",
  };
  for (const std::string& text : queries) {
    QueryOptions plain;
    QueryOptions pruned;
    pruned.prune_intermediates = true;
    Result<GeneralizedRelation> a = EvalQueryString(db, text, plain);
    Result<GeneralizedRelation> b = EvalQueryString(db, text, pruned);
    ASSERT_TRUE(a.ok()) << a.status() << " for " << text;
    ASSERT_TRUE(b.ok()) << b.status() << " for " << text;
    EXPECT_EQ(a.value().Enumerate(-40, 40), b.value().Enumerate(-40, 40))
        << text;
    EXPECT_LE(b.value().size(), a.value().size()) << text;
  }
}

}  // namespace
}  // namespace itdb
}  // namespace query
