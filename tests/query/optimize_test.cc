#include "query/optimize.h"

#include <gtest/gtest.h>

#include "query/eval.h"
#include "query/parser.h"
#include "storage/database.h"

namespace itdb {
namespace query {
namespace {

QueryPtr Parse(const std::string& text) {
  Result<QueryPtr> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return q.value();
}

// Count AST nodes of a given kind.
int CountKind(const QueryPtr& q, Query::Kind kind) {
  int self = q->kind() == kind ? 1 : 0;
  switch (q->kind()) {
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      return self + CountKind(q->left(), kind) + CountKind(q->right(), kind);
    case Query::Kind::kNot:
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      return self + CountKind(q->left(), kind);
    default:
      return self;
  }
}

// Total "scope weight": for every quantifier node, the number of atoms in
// its scope.  Miniscoping strictly decreases this on queries with movable
// conjuncts.
int AtomCount(const QueryPtr& q) {
  switch (q->kind()) {
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      return AtomCount(q->left()) + AtomCount(q->right());
    case Query::Kind::kNot:
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      return AtomCount(q->left());
    default:
      return 1;
  }
}

int ScopeWeight(const QueryPtr& q) {
  switch (q->kind()) {
    case Query::Kind::kAnd:
    case Query::Kind::kOr:
      return ScopeWeight(q->left()) + ScopeWeight(q->right());
    case Query::Kind::kNot:
      return ScopeWeight(q->left());
    case Query::Kind::kExists:
    case Query::Kind::kForall:
      return AtomCount(q->left()) + ScopeWeight(q->left());
    default:
      return 0;
  }
}

TEST(OptimizeTest, DoubleNegationEliminated) {
  QueryPtr q = Optimize(Parse("NOT NOT P(t)"));
  EXPECT_EQ(q->ToString(), "P(t)");
}

TEST(OptimizeTest, DeMorganPushesNegationToLeaves) {
  QueryPtr q = Optimize(Parse("NOT (P(t) AND Q(t))"));
  EXPECT_EQ(q->kind(), Query::Kind::kOr);
  EXPECT_EQ(q->left()->kind(), Query::Kind::kNot);
  EXPECT_EQ(q->right()->kind(), Query::Kind::kNot);
}

TEST(OptimizeTest, ComparisonNegationAbsorbed) {
  QueryPtr q = Optimize(Parse("NOT t1 <= t2"));
  ASSERT_EQ(q->kind(), Query::Kind::kCmp);
  EXPECT_EQ(q->cmp(), QueryCmp::kGt);
  q = Optimize(Parse("NOT t1 = t2"));
  ASSERT_EQ(q->kind(), Query::Kind::kCmp);
  EXPECT_EQ(q->cmp(), QueryCmp::kNe);
}

TEST(OptimizeTest, NegationThroughQuantifiers) {
  // not-forall becomes exists-not (cheaper: one complement instead of
  // three), but not-exists stays put (the complement after projection is
  // already the cheap direction).
  QueryPtr q = Optimize(Parse("NOT FORALL t . P(t)"));
  ASSERT_EQ(q->kind(), Query::Kind::kExists);
  EXPECT_EQ(q->left()->kind(), Query::Kind::kNot);
  q = Optimize(Parse("NOT EXISTS t . P(t)"));
  ASSERT_EQ(q->kind(), Query::Kind::kNot);
  EXPECT_EQ(q->left()->kind(), Query::Kind::kExists);
}

TEST(OptimizeTest, VacuousQuantifierDropped) {
  QueryPtr q = Optimize(Parse("EXISTS t . P(u)"));
  EXPECT_EQ(q->ToString(), "P(u)");
}

TEST(OptimizeTest, ScopeShrinksThroughConjunction) {
  QueryPtr q = Optimize(Parse("EXISTS t . P(u) AND Q(t)"));
  ASSERT_EQ(q->kind(), Query::Kind::kAnd);
  EXPECT_EQ(q->left()->ToString(), "P(u)");
  EXPECT_EQ(q->right()->kind(), Query::Kind::kExists);
}

TEST(OptimizeTest, Example41ShapeShrinks) {
  // The paper's Example 4.1 as written: the universal block scopes over the
  // whole implication.  After optimization the Perform/length conjuncts
  // leave the universal scope.
  QueryPtr original = Parse(R"(
    EXISTS x . EXISTS y . EXISTS t1 . EXISTS t2 .
      FORALL t3 . FORALL t4 . FORALL z .
        (Perform(t1, t2, x, "task2") AND t1 <= t3 <= t4 <= t2
           AND t1 + 5 <= t2)
        -> NOT Perform(t3, t4, y, z)
  )");
  QueryPtr optimized = Optimize(original);
  // The universal quantifiers no longer scope over the atoms that do not
  // mention t3/t4/z: total scope weight strictly decreases.
  EXPECT_LT(ScopeWeight(optimized), ScopeWeight(original));
  EXPECT_EQ(CountKind(optimized, Query::Kind::kNot), 2);
}

TEST(OptimizeTest, Idempotent) {
  QueryPtr q = Parse(
      "NOT (EXISTS t . FORALL u . (P(t) OR NOT Q(u)) AND NOT t <= u)");
  QueryPtr once = Optimize(q);
  QueryPtr twice = Optimize(once);
  EXPECT_EQ(once->ToString(), twice->ToString());
}

// Semantics preservation: evaluate both forms on a concrete database.
class OptimizeSemanticsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizeSemanticsTest, OptimizedQueryGivesSameAnswer) {
  Result<Database> db = Database::FromText(R"(
    relation P(T: time) { [3+10n] : T >= 3; }
    relation Q(T: time) { [10n]; }
    relation Who(T: time, W: string) { [2n | "alice"]; [1+2n | "bob"]; }
  )");
  ASSERT_TRUE(db.ok());
  QueryPtr q = Parse(GetParam());
  QueryOptions naive;
  naive.optimize = false;
  QueryOptions optimized;
  optimized.optimize = true;
  Result<bool> a = EvalBooleanQuery(db.value(), q, naive);
  Result<bool> b = EvalBooleanQuery(db.value(), q, optimized);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a.value(), b.value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, OptimizeSemanticsTest,
    ::testing::Values(
        "EXISTS t . P(t) AND NOT Q(t)",
        "NOT EXISTS t . P(t) AND Q(t)",
        "FORALL t . Q(t) -> NOT P(t)",
        "FORALL t . EXISTS w . Who(t, w)",
        "EXISTS w . FORALL t . Who(t, w)",
        "EXISTS t . FORALL u . (P(t) AND Q(u)) -> t <= u",
        "NOT NOT (EXISTS t . P(t))",
        "EXISTS t . EXISTS u . P(t) AND (Q(u) OR NOT Q(u))",
        "FORALL t . (Who(t, \"alice\") OR Who(t, \"bob\"))"));

}  // namespace
}  // namespace query
}  // namespace itdb
