// Property tests for the query evaluator: randomized existential-positive
// queries (atoms, comparisons, AND, OR, EXISTS) are evaluated both by the
// engine (exact, symbolic) and by a brute-force evaluator over a wide
// window, and must agree on a narrow observation window.
//
// Soundness direction (every brute-force-true assignment is in the engine
// result) holds unconditionally; the completeness direction relies on the
// wide window containing all existential witnesses, which the small
// periods/offsets/bounds of the generated databases guarantee with a wide
// margin.  Everything is seeded and deterministic.

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/eval.h"
#include "query/sorts.h"
#include "storage/database.h"

namespace itdb {
namespace query {
namespace {

constexpr std::int64_t kInnerWindow = 5;
constexpr std::int64_t kOuterWindow = 40;

Database MakeDb(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> period_pick(1, 4);
  std::uniform_int_distribution<std::int64_t> offset_pick(-5, 5);
  std::uniform_int_distribution<std::int64_t> bound_pick(-4, 4);
  std::uniform_int_distribution<int> tuples_pick(1, 3);
  Database db;
  {
    GeneralizedRelation r(Schema({"A", "B"}, {}, {}));
    int n = tuples_pick(rng);
    for (int i = 0; i < n; ++i) {
      GeneralizedTuple t({Lrp::Make(offset_pick(rng), period_pick(rng)),
                          Lrp::Make(offset_pick(rng), period_pick(rng))});
      t.mutable_constraints().AddDifferenceUpperBound(0, 1, bound_pick(rng));
      EXPECT_TRUE(r.AddTuple(std::move(t)).ok());
    }
    db.Put("R", std::move(r));
  }
  {
    GeneralizedRelation r(Schema({"T"}, {}, {}));
    int n = tuples_pick(rng);
    for (int i = 0; i < n; ++i) {
      GeneralizedTuple t({Lrp::Make(offset_pick(rng), period_pick(rng))});
      if (i % 2 == 0) {
        t.mutable_constraints().AddLowerBound(0, bound_pick(rng));
      }
      EXPECT_TRUE(r.AddTuple(std::move(t)).ok());
    }
    db.Put("U", std::move(r));
  }
  return db;
}

// A random existential-positive query over temporal variables a, b, c with
// some subset quantified.
QueryPtr MakeQuery(std::uint32_t seed, std::vector<std::string>* free_vars) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> var_pick(0, 2);
  std::uniform_int_distribution<int> atom_pick(0, 3);
  std::uniform_int_distribution<std::int64_t> const_pick(-4, 4);
  std::uniform_int_distribution<int> connective_pick(0, 1);
  const std::string vars[3] = {"a", "b", "c"};
  auto term = [&](int v) { return Term::Variable(vars[v]); };
  auto make_atom = [&]() -> QueryPtr {
    switch (atom_pick(rng)) {
      case 0:
        return Query::Atom("R", {term(var_pick(rng)), term(var_pick(rng))});
      case 1:
        return Query::Atom("U", {term(var_pick(rng))});
      case 2:
        return Query::Compare(
            Term::Variable(vars[var_pick(rng)], const_pick(rng)),
            QueryCmp::kLe, term(var_pick(rng)));
      default:
        return Query::Compare(term(var_pick(rng)), QueryCmp::kLe,
                              Term::Int(const_pick(rng)));
    }
  };
  // 3-4 atoms combined left-deep with random AND/OR.
  QueryPtr q = make_atom();
  // Guarantee every variable occurs (so sorts are inferable): conjoin one
  // atom per variable.
  for (int v = 0; v < 3; ++v) {
    q = Query::And(std::move(q), Query::Atom("U", {term(v)}));
  }
  int extra = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < extra; ++i) {
    QueryPtr atom = make_atom();
    q = connective_pick(rng) == 0 ? Query::And(std::move(q), std::move(atom))
                                  : Query::Or(std::move(q), std::move(atom));
  }
  // Quantify a suffix of the variables.
  int quantified = static_cast<int>(rng() % 3);  // 0..2 quantified.
  for (int v = 0; v < quantified; ++v) {
    q = Query::Exists(vars[v], std::move(q));
  }
  free_vars->clear();
  for (int v = quantified; v < 3; ++v) free_vars->push_back(vars[v]);
  return q;
}

// Brute-force evaluation with all quantifiers ranging over
// [-kOuterWindow, kOuterWindow].
bool BruteEval(const Query& q, std::map<std::string, std::int64_t>& assign,
               const Database& db) {
  switch (q.kind()) {
    case Query::Kind::kAtom: {
      GeneralizedRelation rel = db.Get(q.relation()).value();
      std::vector<std::int64_t> point;
      point.reserve(q.args().size());
      for (const Term& t : q.args()) {
        point.push_back(t.kind == Term::Kind::kInt
                            ? t.number
                            : assign.at(t.var) + t.number);
      }
      return rel.Contains({point, {}});
    }
    case Query::Kind::kCmp: {
      auto value = [&assign](const Term& t) {
        return t.kind == Term::Kind::kInt ? t.number
                                          : assign.at(t.var) + t.number;
      };
      std::int64_t l = value(q.lhs());
      std::int64_t r = value(q.rhs());
      switch (q.cmp()) {
        case QueryCmp::kEq:
          return l == r;
        case QueryCmp::kNe:
          return l != r;
        case QueryCmp::kLe:
          return l <= r;
        case QueryCmp::kLt:
          return l < r;
        case QueryCmp::kGe:
          return l >= r;
        case QueryCmp::kGt:
          return l > r;
      }
      return false;
    }
    case Query::Kind::kAnd:
      return BruteEval(*q.left(), assign, db) &&
             BruteEval(*q.right(), assign, db);
    case Query::Kind::kOr:
      return BruteEval(*q.left(), assign, db) ||
             BruteEval(*q.right(), assign, db);
    case Query::Kind::kExists: {
      for (std::int64_t v = -kOuterWindow; v <= kOuterWindow; ++v) {
        assign[q.quantified_var()] = v;
        bool hit = BruteEval(*q.left(), assign, db);
        assign.erase(q.quantified_var());
        if (hit) return true;
      }
      return false;
    }
    default:
      ADD_FAILURE() << "unexpected node in existential-positive query";
      return false;
  }
}

class QueryPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QueryPropertyTest, EngineAgreesWithBruteForceOnWindow) {
  Database db = MakeDb(GetParam());
  std::vector<std::string> free_vars;
  QueryPtr q = MakeQuery(GetParam() + 10000, &free_vars);
  Result<GeneralizedRelation> engine = EvalQuery(db, q);
  ASSERT_TRUE(engine.ok()) << engine.status() << "\n" << q->ToString();
  // The engine result's columns are the free variables, sorted.
  std::vector<std::string> sorted_free = free_vars;
  std::sort(sorted_free.begin(), sorted_free.end());
  ASSERT_EQ(engine.value().schema().temporal_names(), sorted_free);

  // Sweep all assignments of the free variables in the inner window.
  std::vector<std::int64_t> point(free_vars.size(), -kInnerWindow);
  while (true) {
    std::map<std::string, std::int64_t> assign;
    for (std::size_t i = 0; i < free_vars.size(); ++i) {
      assign[sorted_free[i]] = point[i];
    }
    bool brute = BruteEval(*q, assign, db);
    bool symbolic = engine.value().Contains({point, {}});
    EXPECT_EQ(symbolic, brute)
        << q->ToString() << " at " << ::testing::PrintToString(point);
    if (free_vars.empty()) break;
    std::size_t d = free_vars.size();
    while (d > 0) {
      if (++point[d - 1] <= kInnerWindow) break;
      point[d - 1] = -kInnerWindow;
      --d;
    }
    if (d == 0) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{60}));

// ---- Data-sorted variables: random queries over a relation with a data
// column, compared against brute force (temporal vars over the wide window,
// data vars over the explicit active domain).

Database MakeDataDb(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> period_pick(1, 4);
  std::uniform_int_distribution<std::int64_t> offset_pick(-5, 5);
  const char* names[3] = {"x", "y", "z"};
  Database db;
  GeneralizedRelation r(Schema({"T"}, {"W"}, {DataType::kString}));
  int n = 2 + static_cast<int>(rng() % 3);
  for (int i = 0; i < n; ++i) {
    GeneralizedTuple t({Lrp::Make(offset_pick(rng), period_pick(rng))},
                       {Value(names[rng() % 3])});
    EXPECT_TRUE(r.AddTuple(std::move(t)).ok());
  }
  db.Put("Who", std::move(r));
  return db;
}

bool BruteEvalData(const Query& q,
                   std::map<std::string, std::int64_t>& tassign,
                   std::map<std::string, Value>& dassign, const Database& db,
                   const std::vector<Value>& adomain) {
  switch (q.kind()) {
    case Query::Kind::kAtom: {
      GeneralizedRelation rel = db.Get(q.relation()).value();
      // Who(T, W): first arg temporal, second data.
      std::int64_t t = q.args()[0].kind == Term::Kind::kInt
                           ? q.args()[0].number
                           : tassign.at(q.args()[0].var) + q.args()[0].number;
      Value w = q.args()[1].kind == Term::Kind::kString
                    ? Value(q.args()[1].text)
                    : dassign.at(q.args()[1].var);
      return rel.Contains({{t}, {w}});
    }
    case Query::Kind::kCmp: {
      // Either a temporal comparison or a data equality.
      const Term& l = q.lhs();
      const Term& r = q.rhs();
      bool data = (l.kind == Term::Kind::kVariable && dassign.contains(l.var)) ||
                  (r.kind == Term::Kind::kVariable && dassign.contains(r.var)) ||
                  l.kind == Term::Kind::kString || r.kind == Term::Kind::kString;
      if (data) {
        Value lv = l.kind == Term::Kind::kString ? Value(l.text)
                                                 : dassign.at(l.var);
        Value rv = r.kind == Term::Kind::kString ? Value(r.text)
                                                 : dassign.at(r.var);
        return q.cmp() == QueryCmp::kEq ? lv == rv : lv != rv;
      }
      auto value = [&tassign](const Term& t) {
        return t.kind == Term::Kind::kInt ? t.number
                                          : tassign.at(t.var) + t.number;
      };
      std::int64_t lv = value(l);
      std::int64_t rv = value(r);
      switch (q.cmp()) {
        case QueryCmp::kEq:
          return lv == rv;
        case QueryCmp::kNe:
          return lv != rv;
        case QueryCmp::kLe:
          return lv <= rv;
        case QueryCmp::kLt:
          return lv < rv;
        case QueryCmp::kGe:
          return lv >= rv;
        case QueryCmp::kGt:
          return lv > rv;
      }
      return false;
    }
    case Query::Kind::kAnd:
      return BruteEvalData(*q.left(), tassign, dassign, db, adomain) &&
             BruteEvalData(*q.right(), tassign, dassign, db, adomain);
    case Query::Kind::kOr:
      return BruteEvalData(*q.left(), tassign, dassign, db, adomain) ||
             BruteEvalData(*q.right(), tassign, dassign, db, adomain);
    case Query::Kind::kExists: {
      const std::string& v = q.quantified_var();
      // Data variables in this suite are named w1/w2; temporal a/b.
      if (v[0] == 'w') {
        for (const Value& value : adomain) {
          dassign[v] = value;
          bool hit = BruteEvalData(*q.left(), tassign, dassign, db, adomain);
          dassign.erase(v);
          if (hit) return true;
        }
        return false;
      }
      for (std::int64_t t = -kOuterWindow; t <= kOuterWindow; ++t) {
        tassign[v] = t;
        bool hit = BruteEvalData(*q.left(), tassign, dassign, db, adomain);
        tassign.erase(v);
        if (hit) return true;
      }
      return false;
    }
    default:
      ADD_FAILURE() << "unexpected node";
      return false;
  }
}

class DataQueryPropertyTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(DataQueryPropertyTest, EngineAgreesWithBruteForce) {
  std::mt19937 rng(GetParam() + 5000);
  Database db = MakeDataDb(GetParam() + 20000);
  // Query shape: EXISTS w1 . EXISTS w2 . EXISTS b .
  //   Who(a, w1) AND Who(b, w2) AND <random extras>; free temporal var a.
  std::uniform_int_distribution<int> extra_pick(0, 3);
  QueryPtr body = Query::And(
      Query::Atom("Who", {Term::Variable("a"), Term::Variable("w1")}),
      Query::Atom("Who", {Term::Variable("b"), Term::Variable("w2")}));
  switch (extra_pick(rng)) {
    case 0:
      body = Query::And(std::move(body),
                        Query::Compare(Term::Variable("w1"), QueryCmp::kNe,
                                       Term::Variable("w2")));
      break;
    case 1:
      body = Query::And(std::move(body),
                        Query::Compare(Term::Variable("w1"), QueryCmp::kEq,
                                       Term::String("x")));
      break;
    case 2:
      body = Query::And(std::move(body),
                        Query::Compare(Term::Variable("a"), QueryCmp::kLe,
                                       Term::Variable("b", -1)));
      break;
    default:
      body = Query::Or(std::move(body),
                       Query::Atom("Who", {Term::Variable("a"),
                                           Term::String("y")}));
      break;
  }
  QueryPtr q = Query::Exists(
      "w1", Query::Exists("w2", Query::Exists("b", std::move(body))));

  Result<GeneralizedRelation> engine = EvalQuery(db, q);
  ASSERT_TRUE(engine.ok()) << engine.status() << "\n" << q->ToString();
  std::vector<Value> adomain = {Value("x"), Value("y"), Value("z")};
  for (std::int64_t a = -kInnerWindow; a <= kInnerWindow; ++a) {
    std::map<std::string, std::int64_t> tassign{{"a", a}};
    std::map<std::string, Value> dassign;
    bool brute = BruteEvalData(*q, tassign, dassign, db, adomain);
    bool symbolic = engine.value().Contains({{a}, {}});
    EXPECT_EQ(symbolic, brute) << q->ToString() << " at a=" << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataQueryPropertyTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{30}));

}  // namespace
}  // namespace query
}  // namespace itdb
