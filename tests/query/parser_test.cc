#include "query/parser.h"

#include <gtest/gtest.h>

namespace itdb {
namespace query {
namespace {

TEST(QueryParserTest, Atom) {
  Result<QueryPtr> q = ParseQuery(R"(Perform(t1, t2, "robot1", x))");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q.value()->kind(), Query::Kind::kAtom);
  EXPECT_EQ(q.value()->relation(), "Perform");
  ASSERT_EQ(q.value()->args().size(), 4u);
  EXPECT_EQ(q.value()->args()[0], Term::Variable("t1"));
  EXPECT_EQ(q.value()->args()[2], Term::String("robot1"));
  EXPECT_EQ(q.value()->args()[3], Term::Variable("x"));
}

TEST(QueryParserTest, TermsWithOffsetsAndConstants) {
  Result<QueryPtr> q = ParseQuery("P(t + 5, u - 3, 42, -7)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q.value()->args()[0], Term::Variable("t", 5));
  EXPECT_EQ(q.value()->args()[1], Term::Variable("u", -3));
  EXPECT_EQ(q.value()->args()[2], Term::Int(42));
  EXPECT_EQ(q.value()->args()[3], Term::Int(-7));
}

TEST(QueryParserTest, Comparison) {
  Result<QueryPtr> q = ParseQuery("t1 + 5 <= t2");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q.value()->kind(), Query::Kind::kCmp);
  EXPECT_EQ(q.value()->cmp(), QueryCmp::kLe);
  EXPECT_EQ(q.value()->lhs(), Term::Variable("t1", 5));
  EXPECT_EQ(q.value()->rhs(), Term::Variable("t2"));
}

TEST(QueryParserTest, ComparisonChain) {
  // t1 <= t2 <= t3 desugars to t1 <= t2 AND t2 <= t3.
  Result<QueryPtr> q = ParseQuery("t1 <= t2 <= t3");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q.value()->kind(), Query::Kind::kAnd);
  EXPECT_EQ(q.value()->left()->kind(), Query::Kind::kCmp);
  EXPECT_EQ(q.value()->right()->lhs(), Term::Variable("t2"));
  EXPECT_EQ(q.value()->right()->rhs(), Term::Variable("t3"));
}

TEST(QueryParserTest, PrecedenceAndOverOr) {
  Result<QueryPtr> q = ParseQuery("P() OR Q() AND R()");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q.value()->kind(), Query::Kind::kOr);
  EXPECT_EQ(q.value()->right()->kind(), Query::Kind::kAnd);
}

TEST(QueryParserTest, ImplicationDesugarsAndIsRightAssociative) {
  Result<QueryPtr> q = ParseQuery("P() -> Q() -> R()");
  ASSERT_TRUE(q.ok()) << q.status();
  // (NOT P) OR ((NOT Q) OR R).
  EXPECT_EQ(q.value()->kind(), Query::Kind::kOr);
  EXPECT_EQ(q.value()->left()->kind(), Query::Kind::kNot);
  EXPECT_EQ(q.value()->right()->kind(), Query::Kind::kOr);
}

TEST(QueryParserTest, QuantifierScopeExtendsRight) {
  Result<QueryPtr> q = ParseQuery("EXISTS t . P(t) AND t <= 5");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q.value()->kind(), Query::Kind::kExists);
  EXPECT_EQ(q.value()->left()->kind(), Query::Kind::kAnd);
  EXPECT_TRUE(q.value()->FreeVariables().empty());
}

TEST(QueryParserTest, LowercaseKeywords) {
  Result<QueryPtr> q =
      ParseQuery("exists t . forall u . not P(t) or t <= u");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q.value()->kind(), Query::Kind::kExists);
}

TEST(QueryParserTest, Example41Parses) {
  Result<QueryPtr> q = ParseQuery(R"(
    EXISTS x . EXISTS y . EXISTS t1 . EXISTS t2 .
      FORALL t3 . FORALL t4 . FORALL z .
        (Perform(t1, t2, x, "task2") AND t1 <= t3 <= t4 <= t2
           AND t1 + 5 <= t2)
        -> NOT Perform(t3, t4, y, z)
  )");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q.value()->FreeVariables().empty());
}

TEST(QueryParserTest, FreeVariables) {
  Result<QueryPtr> q = ParseQuery("EXISTS t . P(t, u) AND Q(v)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value()->FreeVariables(),
            (std::vector<std::string>{"u", "v"}));
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("P(").ok());
  EXPECT_FALSE(ParseQuery("EXISTS . P()").ok());
  EXPECT_FALSE(ParseQuery("EXISTS t P()").ok());   // Missing dot.
  EXPECT_FALSE(ParseQuery("P() Q()").ok());        // Trailing input.
  EXPECT_FALSE(ParseQuery("t1 t2").ok());          // No operator.
  EXPECT_FALSE(ParseQuery("AND P()").ok());
}

// Golden error messages: every parse failure names the offending token and
// its line:col position (the lexer threads spans through the token stream).
TEST(QueryParserTest, ErrorsCarryLineColAndOffendingToken) {
  auto message = [](const std::string& text) {
    Result<QueryPtr> q = ParseQuery(text);
    EXPECT_FALSE(q.ok()) << "unexpectedly parsed: " << text;
    return q.ok() ? std::string() : std::string(q.status().message());
  };
  EXPECT_EQ(message("t1 t2"),
            "expected comparison operator, got 't2' at 1:4 (offset 3)");
  EXPECT_EQ(message("EXISTS t P()"),
            "expected '.', got 'P' at 1:10 (offset 9)");
  EXPECT_EQ(message("P() Q()"),
            "trailing input after query, got 'Q' at 1:5 (offset 4)");
  EXPECT_EQ(message("P(,)"), "expected a term, got ',' at 1:3 (offset 2)");
  EXPECT_EQ(message("AND P()"),
            "expected a term, got 'AND' at 1:1 (offset 0)");
  EXPECT_EQ(message("P("),
            "expected a term, got end of input at 1:3 (offset 2)");
}

TEST(QueryParserTest, ErrorPositionsCountLines) {
  Result<QueryPtr> q = ParseQuery("P(t) AND\n  AND");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("at 2:3"), std::string::npos)
      << q.status();
}

TEST(QueryParserTest, SpansCoverTheSourceExtent) {
  Result<QueryPtr> q = ParseQuery("EXISTS t . R(t) AND t <= 5");
  ASSERT_TRUE(q.ok()) << q.status();
  // The quantifier spans the whole query.
  EXPECT_EQ(q.value()->span().line, 1);
  EXPECT_EQ(q.value()->span().col, 1);
  EXPECT_EQ(q.value()->span().begin, 0u);
  EXPECT_EQ(q.value()->span().end, 26u);
  // The atom's span starts at its own name.
  const Query& body = *q.value()->left();
  ASSERT_EQ(body.kind(), Query::Kind::kAnd);
  EXPECT_EQ(body.left()->span().col, 12);
  ASSERT_EQ(body.left()->args().size(), 1u);
  EXPECT_EQ(body.left()->TermSpan(0).col, 14);
}

TEST(QueryParserTest, ToStringRoundTripsThroughParser) {
  Result<QueryPtr> q =
      ParseQuery("EXISTS t . (P(t) OR t + 2 <= 7) AND NOT Q(t, \"a\")");
  ASSERT_TRUE(q.ok());
  Result<QueryPtr> again = ParseQuery(q.value()->ToString());
  ASSERT_TRUE(again.ok()) << q.value()->ToString();
  EXPECT_EQ(again.value()->ToString(), q.value()->ToString());
}

}  // namespace
}  // namespace query
}  // namespace itdb
