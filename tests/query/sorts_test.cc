#include "query/sorts.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace itdb {
namespace query {
namespace {

Database TestDb() {
  Result<Database> db = Database::FromText(R"(
    relation Perform(From: time, To: time, Robot: string, Task: string) {
      [2+2n, 4+2n | "robot1", "task2"] : From = To - 2;
    }
    relation Count(T: time, N: int) {
      [2n | 5];
    }
  )");
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

Result<SortMap> Infer(const std::string& text) {
  Result<QueryPtr> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return InferSorts(TestDb(), q.value());
}

TEST(SortsTest, AtomPositionsDictateSorts) {
  Result<SortMap> s = Infer("Perform(a, b, r, k)");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s.value().at("a"), Sort::kTime);
  EXPECT_EQ(s.value().at("b"), Sort::kTime);
  EXPECT_EQ(s.value().at("r"), Sort::kDataString);
  EXPECT_EQ(s.value().at("k"), Sort::kDataString);
  s = Infer("Count(t, c)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().at("c"), Sort::kDataInt);
}

TEST(SortsTest, ComparisonsForceTime) {
  Result<SortMap> s = Infer("a <= b AND c = 5");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s.value().at("a"), Sort::kTime);
  EXPECT_EQ(s.value().at("b"), Sort::kTime);
  EXPECT_EQ(s.value().at("c"), Sort::kTime);
}

TEST(SortsTest, StringConstantForcesDataString) {
  Result<SortMap> s = Infer("x = \"robot1\"");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s.value().at("x"), Sort::kDataString);
}

TEST(SortsTest, EqualityPropagatesAcrossLinks) {
  Result<SortMap> s = Infer("Perform(a, b, r, k) AND r = y AND y = z");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s.value().at("y"), Sort::kDataString);
  EXPECT_EQ(s.value().at("z"), Sort::kDataString);
}

TEST(SortsTest, ConflictsRejected) {
  // r is a string position but also order-compared.
  EXPECT_FALSE(Infer("Perform(a, b, r, k) AND r <= a").ok());
  // Same variable in temporal and string positions.
  EXPECT_FALSE(Infer("Perform(a, b, a, k)").ok());
  // Data-int variable compared with an integer constant (documented
  // limitation: integer comparison constants are temporal).
  EXPECT_FALSE(Infer("Count(t, c) AND c = 7").ok());
}

TEST(SortsTest, UndeterminedVariableRejected) {
  EXPECT_FALSE(Infer("x = y").ok());
}

TEST(SortsTest, ShadowingRejected) {
  EXPECT_FALSE(Infer("EXISTS t . Perform(t, t, r, k) AND "
                     "(EXISTS t . t <= 5)")
                   .ok());
}

TEST(SortsTest, ArityAndUnknownRelationChecked) {
  EXPECT_FALSE(Infer("Perform(a, b)").ok());
  EXPECT_FALSE(Infer("Nope(a)").ok());
  EXPECT_FALSE(Infer("Perform(a, b, 3, k)").ok());  // Int in string slot.
  EXPECT_FALSE(Infer("Perform(a, b, r, \"x\") AND Count(a, \"y\")").ok());
}

TEST(SortsTest, OffsetsOnlyOnTemporal) {
  EXPECT_FALSE(Infer("Perform(a, b, r + 1, k)").ok());
  EXPECT_TRUE(Infer("Perform(a + 1, b, r, k)").ok());
}

// The collecting entry point used by the analyzer: each failure mode maps
// to a specific stable code (the A-codes are pinned; see DESIGN.md).
SortDiagnostics Diagnose(const std::string& text) {
  Result<QueryPtr> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return InferSortsDiagnosed(TestDb(), q.value(),
                             /*strict_unused_quantified=*/true);
}

bool HasCode(const SortDiagnostics& d, std::string_view code) {
  for (const Diagnostic& diagnostic : d.diagnostics) {
    if (diagnostic.code == code) return true;
  }
  return false;
}

TEST(SortsDiagnosticsTest, UnknownRelationIsA001WithSpan) {
  SortDiagnostics d = Diagnose("Nope(a)");
  ASSERT_TRUE(HasCode(d, diag::kUnknownRelation));
  EXPECT_EQ(d.diagnostics[0].span.line, 1);
  EXPECT_EQ(d.diagnostics[0].span.col, 1);
}

TEST(SortsDiagnosticsTest, ArityMismatchIsA002) {
  EXPECT_TRUE(HasCode(Diagnose("Perform(a, b)"), diag::kArityMismatch));
}

TEST(SortsDiagnosticsTest, SortConflictsAreA003) {
  // Same variable in a temporal and a string position.
  EXPECT_TRUE(HasCode(Diagnose("Perform(a, b, a, k)"),
                      diag::kConflictingSorts));
  // A string position variable that is also order-compared.
  EXPECT_TRUE(HasCode(Diagnose("Perform(a, b, r, k) AND r <= a"),
                      diag::kConflictingSorts));
  // A successor offset on a data variable.
  EXPECT_TRUE(HasCode(Diagnose("Perform(a, b, r + 1, k)"),
                      diag::kConflictingSorts));
}

TEST(SortsDiagnosticsTest, ConstantConflictsAreA004) {
  // Int constant in a string slot of an atom.
  EXPECT_TRUE(HasCode(Diagnose("Perform(a, b, 3, k)"),
                      diag::kIncompatibleConstant));
  // String constant forcing a sort onto a temporal variable.
  EXPECT_TRUE(HasCode(Diagnose("Perform(a, b, r, k) AND a = \"x\""),
                      diag::kIncompatibleConstant));
  // Order comparison between string constants.
  EXPECT_TRUE(HasCode(Diagnose("Perform(a, b, r, k) AND \"x\" < \"y\""),
                      diag::kIncompatibleConstant));
}

TEST(SortsDiagnosticsTest, ShadowingIsA005) {
  SortDiagnostics d = Diagnose(
      "EXISTS t . Perform(t, t, r, k) AND (EXISTS t . t <= 5)");
  EXPECT_TRUE(HasCode(d, diag::kShadowedVariable));
}

TEST(SortsDiagnosticsTest, UndeterminedSortIsA006) {
  EXPECT_TRUE(HasCode(Diagnose("x = y"), diag::kUndeterminedSort));
}

TEST(SortsDiagnosticsTest, MixedSortLinkIsA007) {
  // r (string) equated with t (temporal): the link check fires after
  // propagation.
  SortDiagnostics d =
      Diagnose("Perform(a, b, r, k) AND Count(t, n) AND r != t");
  EXPECT_TRUE(HasCode(d, diag::kMixedSortComparison));
}

TEST(SortsDiagnosticsTest, CollectsMultipleFindingsInOnePass) {
  SortDiagnostics d = Diagnose("Nope(a) AND Perform(a, b) AND x = y");
  // The Result-based API stops at the first error; the collecting API
  // reports them all (A006 stays suppressed behind the real errors).
  EXPECT_TRUE(HasCode(d, diag::kUnknownRelation));
  EXPECT_TRUE(HasCode(d, diag::kArityMismatch));
  EXPECT_FALSE(HasCode(d, diag::kUndeterminedSort));
  EXPECT_GE(d.diagnostics.size(), 2u);
}

TEST(SortsDiagnosticsTest, CleanQueryHasNoDiagnostics) {
  SortDiagnostics d = Diagnose("Perform(a, b, r, k) AND a <= b");
  EXPECT_TRUE(d.diagnostics.empty());
  EXPECT_EQ(d.sorts.at("r"), Sort::kDataString);
  // var_spans lets later passes point at the first occurrence.
  ASSERT_TRUE(d.var_spans.contains("r"));
  EXPECT_EQ(d.var_spans.at("r").line, 1);
}

}  // namespace
}  // namespace query
}  // namespace itdb
