#include "query/sorts.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace itdb {
namespace query {
namespace {

Database TestDb() {
  Result<Database> db = Database::FromText(R"(
    relation Perform(From: time, To: time, Robot: string, Task: string) {
      [2+2n, 4+2n | "robot1", "task2"] : From = To - 2;
    }
    relation Count(T: time, N: int) {
      [2n | 5];
    }
  )");
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

Result<SortMap> Infer(const std::string& text) {
  Result<QueryPtr> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return InferSorts(TestDb(), q.value());
}

TEST(SortsTest, AtomPositionsDictateSorts) {
  Result<SortMap> s = Infer("Perform(a, b, r, k)");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s.value().at("a"), Sort::kTime);
  EXPECT_EQ(s.value().at("b"), Sort::kTime);
  EXPECT_EQ(s.value().at("r"), Sort::kDataString);
  EXPECT_EQ(s.value().at("k"), Sort::kDataString);
  s = Infer("Count(t, c)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().at("c"), Sort::kDataInt);
}

TEST(SortsTest, ComparisonsForceTime) {
  Result<SortMap> s = Infer("a <= b AND c = 5");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s.value().at("a"), Sort::kTime);
  EXPECT_EQ(s.value().at("b"), Sort::kTime);
  EXPECT_EQ(s.value().at("c"), Sort::kTime);
}

TEST(SortsTest, StringConstantForcesDataString) {
  Result<SortMap> s = Infer("x = \"robot1\"");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s.value().at("x"), Sort::kDataString);
}

TEST(SortsTest, EqualityPropagatesAcrossLinks) {
  Result<SortMap> s = Infer("Perform(a, b, r, k) AND r = y AND y = z");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s.value().at("y"), Sort::kDataString);
  EXPECT_EQ(s.value().at("z"), Sort::kDataString);
}

TEST(SortsTest, ConflictsRejected) {
  // r is a string position but also order-compared.
  EXPECT_FALSE(Infer("Perform(a, b, r, k) AND r <= a").ok());
  // Same variable in temporal and string positions.
  EXPECT_FALSE(Infer("Perform(a, b, a, k)").ok());
  // Data-int variable compared with an integer constant (documented
  // limitation: integer comparison constants are temporal).
  EXPECT_FALSE(Infer("Count(t, c) AND c = 7").ok());
}

TEST(SortsTest, UndeterminedVariableRejected) {
  EXPECT_FALSE(Infer("x = y").ok());
}

TEST(SortsTest, ShadowingRejected) {
  EXPECT_FALSE(Infer("EXISTS t . Perform(t, t, r, k) AND "
                     "(EXISTS t . t <= 5)")
                   .ok());
}

TEST(SortsTest, ArityAndUnknownRelationChecked) {
  EXPECT_FALSE(Infer("Perform(a, b)").ok());
  EXPECT_FALSE(Infer("Nope(a)").ok());
  EXPECT_FALSE(Infer("Perform(a, b, 3, k)").ok());  // Int in string slot.
  EXPECT_FALSE(Infer("Perform(a, b, r, \"x\") AND Count(a, \"y\")").ok());
}

TEST(SortsTest, OffsetsOnlyOnTemporal) {
  EXPECT_FALSE(Infer("Perform(a, b, r + 1, k)").ok());
  EXPECT_TRUE(Infer("Perform(a + 1, b, r, k)").ok());
}

}  // namespace
}  // namespace query
}  // namespace itdb
