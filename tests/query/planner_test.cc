#include "query/planner.h"

#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "query/eval.h"
#include "query/parser.h"
#include "query/sorts.h"

namespace itdb {
namespace query {
namespace {

// Big and Wide are large and share no variable in the test queries; Link is
// a small selective bridge between them.
Database SkewedDb() {
  std::ostringstream text;
  text << "relation Big(T: time) {";
  for (int i = 0; i < 40; ++i) text << " [" << 10 * i << "];";
  text << " }\n";
  text << "relation Wide(T: time) {";
  for (int i = 0; i < 40; ++i) text << " [" << 7 * i + 3 << "];";
  text << " }\n";
  text << "relation Link(A: time, B: time) { [0, 3]; [10, 10]; }\n";
  text << "relation Tiny(T: time) { [0]; }\n";
  Result<Database> db = Database::FromText(text.str());
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

PlannedQuery Plan(const Database& db, const std::string& text) {
  Result<QueryPtr> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  Result<SortMap> sorts = InferSorts(db, q.value());
  EXPECT_TRUE(sorts.ok()) << sorts.status();
  return PlanQuery(db, q.value(), sorts.value(), nullptr);
}

// The leaf reached by walking left() all the way down: the conjunct the
// planned left-deep chain evaluates first.
const Query& LeftmostLeaf(const Query& q) {
  const Query* node = &q;
  while (node->kind() != Query::Kind::kAtom &&
         node->kind() != Query::Kind::kCmp) {
    node = node->left().get();
  }
  return *node;
}

TEST(PlannerTest, SelectiveLinkSeedsTheChain) {
  Database db = SkewedDb();
  // Written order joins Big x Wide first: a 40 * 40 cross product.  The
  // planner must seed with the 2-tuple Link and keep every join connected.
  PlannedQuery planned = Plan(db, "Big(t) AND Wide(u) AND Link(t, u)");
  EXPECT_EQ(LeftmostLeaf(*planned.query).relation(), "Link")
      << planned.query->ToString();
}

TEST(PlannerTest, CrossProductsComeLast) {
  Database db = SkewedDb();
  // Tiny(u) shares nothing with the t-chain; it must not split the
  // connected prefix.  The final (topmost) join should be the one that
  // brings in the disconnected conjunct.
  PlannedQuery planned = Plan(db, "Tiny(u) AND Big(t) AND Wide(t)");
  const Query& root = *planned.query;
  ASSERT_EQ(root.kind(), Query::Kind::kAnd);
  // Right child of the root = last conjunct joined = the cross product.
  EXPECT_EQ(root.right()->relation(), "Tiny") << root.ToString();
}

TEST(PlannerTest, SelectionsJoinEarly) {
  Database db = SkewedDb();
  // The t <= 5 restriction is the cheapest conjunct; greedy ordering pins
  // it into the chain before the wide join materializes.
  PlannedQuery planned = Plan(db, "Big(t) AND Wide(t) AND t <= 5");
  const Query& first = LeftmostLeaf(*planned.query);
  // Either the comparison itself or the relation it was folded against
  // leads; the Big x Wide pair must not be the seed.  The seed pair is the
  // two deepest leaves: leftmost leaf plus its sibling.
  const Query* node = planned.query.get();
  while (node->left()->kind() == Query::Kind::kAnd) {
    node = node->left().get();
  }
  bool cmp_in_seed = node->left()->kind() == Query::Kind::kCmp ||
                     node->right()->kind() == Query::Kind::kCmp;
  EXPECT_TRUE(cmp_in_seed) << planned.query->ToString();
  (void)first;
}

TEST(PlannerTest, WideComplementsComeLast) {
  Database db = SkewedDb();
  // The chain is connected without the width-2 complement (Link bridges t
  // and u), so the complement -- whose estimate is exponential in its free
  // temporal width, the A010 signal -- must join last.
  PlannedQuery planned =
      Plan(db, "(NOT Link(t, u)) AND Big(t) AND Wide(u) AND Link(t, u)");
  const Query& root = *planned.query;
  ASSERT_EQ(root.kind(), Query::Kind::kAnd);
  EXPECT_EQ(root.right()->kind(), Query::Kind::kNot) << root.ToString();
}

TEST(PlannerTest, EveryPlannedNodeHasAnEstimate) {
  Database db = SkewedDb();
  PlannedQuery planned = Plan(db, "Big(t) AND Wide(u) AND Link(t, u)");
  int nodes = 0;
  auto walk = [&](auto&& self, const Query& q) -> void {
    ++nodes;
    EXPECT_TRUE(planned.estimates.contains(&q)) << q.ToString();
    switch (q.kind()) {
      case Query::Kind::kAnd:
      case Query::Kind::kOr:
        self(self, *q.left());
        self(self, *q.right());
        break;
      case Query::Kind::kNot:
      case Query::Kind::kExists:
      case Query::Kind::kForall:
        self(self, *q.left());
        break;
      default:
        break;
    }
  };
  walk(walk, *planned.query);
  EXPECT_EQ(nodes, 5);
  std::string rendered =
      FormatQueryPlanWithEstimates(planned.query, planned.estimates);
  EXPECT_NE(rendered.find("est_rows="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("est_cost="), std::string::npos) << rendered;
}

TEST(PlannerTest, UnknownRelationsPlanWithoutFailing) {
  Database db = SkewedDb();
  // Sort inference rejects unknown relations before evaluation, so hand
  // PlanQuery a sort map directly: it must estimate the unreadable atom as
  // empty rather than fail.
  Result<QueryPtr> q = ParseQuery("Big(t) AND Nope(t)");
  ASSERT_TRUE(q.ok());
  SortMap sorts{{"t", Sort::kTime}};
  PlannedQuery planned = PlanQuery(db, q.value(), sorts, nullptr);
  EXPECT_NE(planned.query, nullptr);
}

TEST(PlannerTest, PlannedEvaluationIsBitIdenticalToWrittenOrder) {
  Database db = SkewedDb();
  const std::string queries[] = {
      "Big(t) AND Wide(u) AND Link(t, u)",
      "Wide(t) AND Big(t) AND t <= 40",
      "(NOT Link(t, u)) AND Big(t) AND Wide(u) AND Link(t, u)",
      "EXISTS u . (Big(t) AND Link(t, u) AND Wide(u))",
      "Tiny(u) AND Big(t) AND Wide(t)",
  };
  for (const std::string& text : queries) {
    QueryOptions on;
    on.cost_plan = true;
    QueryOptions off;
    off.cost_plan = false;
    Result<GeneralizedRelation> with = EvalQueryString(db, text, on);
    Result<GeneralizedRelation> without = EvalQueryString(db, text, off);
    ASSERT_TRUE(with.ok()) << with.status() << " for " << text;
    ASSERT_TRUE(without.ok()) << without.status() << " for " << text;
    EXPECT_EQ(with.value().schema(), without.value().schema()) << text;
    EXPECT_EQ(with.value().tuples(), without.value().tuples()) << text;
  }
}

// The improvement certified bounds buy over the heuristic: the cost model
// prices joins from tuple counts and distinct-value estimates only, so two
// relations whose hulls are DISJOINT still price like any other join.  The
// certificate intersects the hulls, refutes the pair, clamps the estimate
// to zero rows, and the planner seeds the chain with the provably empty
// join instead of burying it.
TEST(PlannerTest, CertifiedHullRefutationZeroesAndReordersTheChain) {
  std::ostringstream text;
  text << "relation Big(T: time) {";
  for (int i = 0; i < 40; ++i) text << " [" << 10 * i << "];";
  text << " }\n";
  text << "relation Wide(T: time) {";
  for (int i = 0; i < 40; ++i) text << " [" << 7 * i + 3 << "];";
  text << " }\n";
  // Phantom's 40 tuples live in [1000, 1039] -- disjoint from Big's
  // certified hull [0, 390].
  text << "relation Phantom(T: time) {";
  for (int i = 0; i < 40; ++i) text << " [" << 1000 + i << "];";
  text << " }\n";
  Result<Database> db = Database::FromText(text.str());
  ASSERT_TRUE(db.ok()) << db.status();
  Result<QueryPtr> q = ParseQuery("Big(t) AND Wide(t) AND Phantom(t)");
  ASSERT_TRUE(q.ok());
  Result<SortMap> sorts = InferSorts(db.value(), q.value());
  ASSERT_TRUE(sorts.ok());

  // Heuristic-only plan: the root still expects rows.
  PlannedQuery heuristic =
      PlanQuery(db.value(), q.value(), sorts.value(), nullptr);
  EXPECT_GT(heuristic.estimates.at(heuristic.query.get()).rows, 0.0)
      << heuristic.query->ToString();

  // Certified plan: zero rows at the root, and the refuted Big-Phantom
  // pair seeds the chain (the deepest two leaves).
  analysis::AbstractInterpreter interp(db.value(), sorts.value());
  interp.Interpret(q.value());
  PlannedQuery certified =
      PlanQuery(db.value(), q.value(), sorts.value(), nullptr, &interp);
  EXPECT_EQ(certified.estimates.at(certified.query.get()).rows, 0.0)
      << certified.query->ToString();
  const Query* node = certified.query.get();
  while (node->left()->kind() == Query::Kind::kAnd) {
    node = node->left().get();
  }
  std::set<std::string> seed = {node->left()->relation(),
                                node->right()->relation()};
  EXPECT_TRUE(seed.count("Phantom")) << certified.query->ToString();
  EXPECT_FALSE(seed.count("Wide")) << certified.query->ToString();

  // Bit-identity: both plans evaluate to the same (empty) result.
  QueryOptions on;
  on.cost_plan = true;
  on.certified_bounds = true;
  QueryOptions off = on;
  off.certified_bounds = false;
  Result<GeneralizedRelation> with =
      EvalQueryString(db.value(), "Big(t) AND Wide(t) AND Phantom(t)", on);
  Result<GeneralizedRelation> without =
      EvalQueryString(db.value(), "Big(t) AND Wide(t) AND Phantom(t)", off);
  ASSERT_TRUE(with.ok()) << with.status();
  ASSERT_TRUE(without.ok()) << without.status();
  EXPECT_EQ(with.value().tuples(), without.value().tuples());
  EXPECT_TRUE(with.value().tuples().empty());
}

TEST(PlannerTest, StatsCacheHitsOnRepeatedPlans) {
  Database db = SkewedDb();
  StatsCache cache;
  Result<QueryPtr> q = ParseQuery("Big(t) AND Wide(u) AND Link(t, u)");
  ASSERT_TRUE(q.ok());
  Result<SortMap> sorts = InferSorts(db, q.value());
  ASSERT_TRUE(sorts.ok());
  PlanQuery(db, q.value(), sorts.value(), &cache);
  StatsCache::Stats first = cache.stats();
  EXPECT_EQ(first.hits, 0u);
  EXPECT_EQ(first.misses, 3u);  // Big, Wide, Link.
  PlanQuery(db, q.value(), sorts.value(), &cache);
  StatsCache::Stats second = cache.stats();
  EXPECT_EQ(second.hits, 3u);
  EXPECT_EQ(second.misses, 3u);
}

}  // namespace
}  // namespace query
}  // namespace itdb
