#include <algorithm>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "query/eval.h"
#include "query/parser.h"
#include "storage/text_format.h"

namespace itdb {
namespace query {
namespace {

/// A database whose atoms produce multi-tuple relations, so the AND nodes
/// drive real Join work (candidate pairs, prefilter pruning, closures).
Database JoinHeavyDb() {
  std::string text = R"(
    relation P(T: time) {
      [1+6n] : T >= 1;
      [2+10n] : T >= 2;
      [3+15n] : T >= 3;
      [4+21n];
    }
    relation Q(T: time) {
      [1+4n];
      [2+6n] : T <= 1000;
      [3+9n];
      [5+14n] : T >= 5;
    }
    relation R(A: time, B: time) {
      [2n, 3n] : A <= B + 10;
      [1+2n, 1+5n] : A >= -100;
      [7n, 2+7n];
    }
  )";
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

constexpr const char* kJoinQuery = "P(t) AND Q(t) AND R(t, u) AND Q(u)";

std::int64_t SumMetric(const obs::ProfileNode& node, std::string_view name) {
  std::int64_t total = node.Metric(name);
  for (const obs::ProfileNode& child : node.children) {
    total += SumMetric(child, name);
  }
  return total;
}

int CountNodes(const obs::ProfileNode& node) {
  int n = 1;
  for (const obs::ProfileNode& child : node.children) n += CountNodes(child);
  return n;
}

TEST(ProfileTest, JoinHeavyQueryReportsPerNodeMetrics) {
  Database db = JoinHeavyDb();
  Result<ProfiledResult> profiled = EvalQueryStringProfiled(db, kJoinQuery);
  ASSERT_TRUE(profiled.ok()) << profiled.status();
  const obs::Profile& profile = profiled->profile;
  ASSERT_FALSE(profile.empty());

  // The root is the whole-query span; the plan tree hangs beneath it.
  EXPECT_EQ(profile.root.label.rfind("query ", 0), 0u) << profile.root.label;
  EXPECT_GT(profile.total_wall_ns, 0);
  EXPECT_GT(CountNodes(profile.root), 4);  // Root + AND nodes + leaves.

  // Every plan node reports wall time and its result size.
  EXPECT_EQ(profile.root.Metric("tuples_out"),
            static_cast<std::int64_t>(profiled->relation.size()));
  for (const obs::ProfileNode& child : profile.root.children) {
    EXPECT_GE(child.wall_ns, 0);
    EXPECT_GE(child.Metric("tuples_out", -1), 0) << child.label;
  }

  // The joins visited candidate pairs and the prefilters / cache did work.
  EXPECT_GT(SumMetric(profile.root, "pairs_candidate"), 0);
  EXPECT_GT(SumMetric(profile.root, "pairs_pruned_residue") +
                SumMetric(profile.root, "pairs_pruned_hull"),
            0);
  EXPECT_GT(SumMetric(profile.root, "cache_hits"), 0);
  EXPECT_GT(SumMetric(profile.root, "cache_misses"), 0);

  // Inclusive times: every node covers its children, and the top plan node
  // accounts for (almost) all of the root's wall time -- the work between
  // the two spans is a label + two counter snapshots.
  std::int64_t child_sum = 0;
  for (const obs::ProfileNode& child : profile.root.children) {
    EXPECT_LE(child.wall_ns, profile.root.wall_ns);
    child_sum += child.wall_ns;
  }
  EXPECT_LE(child_sum, profile.root.wall_ns);
  EXPECT_GE(child_sum, profile.root.wall_ns -
                           std::max<std::int64_t>(profile.root.wall_ns / 10,
                                                  2000000));

  // The rendered profile carries the headline fields.
  std::string text = profile.ToText();
  EXPECT_NE(text.find("wall="), std::string::npos);
  EXPECT_NE(text.find("tuples_out="), std::string::npos);
  EXPECT_NE(text.find("pairs_candidate="), std::string::npos);
}

TEST(ProfileTest, TracingChangesNoResultBit) {
  Database db = JoinHeavyDb();
  QueryOptions plain;
  Result<GeneralizedRelation> baseline = EvalQueryString(db, kJoinQuery, plain);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::string expect = PrintRelation("r", baseline.value());

  for (int threads : {1, 4}) {
    QueryOptions options;
    options.algebra.threads = threads;
    options.algebra.normalize.threads = threads;
    // Traced, untraced, and profiled evaluation must agree bit for bit.
    Result<GeneralizedRelation> untraced =
        EvalQueryString(db, kJoinQuery, options);
    ASSERT_TRUE(untraced.ok()) << untraced.status();
    EXPECT_EQ(PrintRelation("r", untraced.value()), expect)
        << "untraced, threads=" << threads;

    Result<ProfiledResult> profiled =
        EvalQueryStringProfiled(db, kJoinQuery, options);
    ASSERT_TRUE(profiled.ok()) << profiled.status();
    EXPECT_EQ(PrintRelation("r", profiled->relation), expect)
        << "profiled, threads=" << threads;

    options.trace = true;
    obs::Tracer tracer;
    options.tracer = &tracer;
    Result<GeneralizedRelation> traced =
        EvalQueryString(db, kJoinQuery, options);
    ASSERT_TRUE(traced.ok()) << traced.status();
    EXPECT_EQ(PrintRelation("r", traced.value()), expect)
        << "traced, threads=" << threads;
    EXPECT_GT(tracer.size(), 0u);
  }
}

TEST(ProfileTest, ExplicitTracerEmitsValidChromeTrace) {
  Database db = JoinHeavyDb();
  QueryOptions options;
  options.trace = true;
  obs::Tracer tracer;
  options.tracer = &tracer;
  Result<GeneralizedRelation> result = EvalQueryString(db, kJoinQuery, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(tracer.size(), 0u);
  // Plan spans and algebra spans share the tracer.
  bool saw_plan = false;
  bool saw_algebra = false;
  for (const obs::SpanRecord& s : tracer.records()) {
    saw_plan |= s.category == "plan";
    saw_algebra |= s.category == "algebra";
  }
  EXPECT_TRUE(saw_plan);
  EXPECT_TRUE(saw_algebra);
  Status valid = obs::ValidateChromeTrace(tracer.ToChromeTraceJson());
  EXPECT_TRUE(valid.ok()) << valid;
}

TEST(ProfileTest, UntracedEvalOpensNoSpans) {
  Database db = JoinHeavyDb();
  obs::Tracer tracer;
  QueryOptions options;
  options.tracer = &tracer;  // Present but trace == false: ignored.
  Result<GeneralizedRelation> result = EvalQueryString(db, kJoinQuery, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(FormatQueryPlanTest, RendersTheTreeExplainPrints) {
  Result<QueryPtr> q =
      ParseQuery("(EXISTS t . (P(t) AND NOT Q(t))) OR P(0)");
  ASSERT_TRUE(q.ok()) << q.status();
  std::string plan = FormatQueryPlan(q.value());
  EXPECT_EQ(plan,
            "OR\n"
            "  EXISTS t\n"
            "    AND\n"
            "      ATOM P(t)\n"
            "      NOT\n"
            "        ATOM Q(t)\n"
            "  ATOM P(0)\n");
}

}  // namespace
}  // namespace query
}  // namespace itdb
