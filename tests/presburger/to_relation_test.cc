#include "presburger/to_relation.h"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace itdb {
namespace presburger {
namespace {

constexpr std::int64_t kWindow = 15;

std::set<std::int64_t> UnarySetOf(const GeneralizedRelation& r) {
  std::set<std::int64_t> out;
  for (const ConcreteRow& row : r.Enumerate(-kWindow, kWindow)) {
    out.insert(row.temporal[0]);
  }
  return out;
}

std::set<std::int64_t> UnarySetOf(const FormulaPtr& f) {
  std::set<std::int64_t> out;
  for (std::int64_t x = -kWindow; x <= kWindow; ++x) {
    if (f->Evaluate({x})) out.insert(x);
  }
  return out;
}

void ExpectUnaryMatch(const FormulaPtr& f) {
  Result<GeneralizedRelation> r = UnaryToRelation(f);
  ASSERT_TRUE(r.ok()) << r.status() << " for " << f->ToString();
  EXPECT_EQ(UnarySetOf(r.value()), UnarySetOf(f)) << f->ToString();
}

TEST(SolveUnaryCongruenceTest, BasicSolutions) {
  // 3v === 1 (mod 5): v === 2 (mod 5).
  Result<std::optional<Lrp>> s = SolveUnaryCongruence(3, 5, 1);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s.value().has_value());
  EXPECT_EQ(*s.value(), Lrp::Make(2, 5));
  // 2v === 1 (mod 4): no solution.
  s = SolveUnaryCongruence(2, 4, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s.value().has_value());
  // 2v === 2 (mod 4): v === 1 (mod 2).
  s = SolveUnaryCongruence(2, 4, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s.value(), Lrp::Make(1, 2));
  // mod 0 means equality: 3v = 12 -> v = 4; 3v = 13 -> none.
  EXPECT_EQ(*SolveUnaryCongruence(3, 0, 12).value(), Lrp::Singleton(4));
  EXPECT_FALSE(SolveUnaryCongruence(3, 0, 13).value().has_value());
  // mod 1: everything.
  EXPECT_EQ(*SolveUnaryCongruence(7, 1, 3).value(), Lrp::Make(0, 1));
}

TEST(UnaryToRelationTest, Theorem21BasicFormulas) {
  ExpectUnaryMatch(Formula::UnaryCmp(3, 0, Cmp::kEq, 12));
  ExpectUnaryMatch(Formula::UnaryCmp(3, 0, Cmp::kEq, 13));  // Empty.
  ExpectUnaryMatch(Formula::UnaryCmp(3, 0, Cmp::kLt, 7));
  ExpectUnaryMatch(Formula::UnaryCmp(3, 0, Cmp::kGt, 7));
  ExpectUnaryMatch(Formula::UnaryCmp(-3, 0, Cmp::kLt, 7));
  ExpectUnaryMatch(Formula::UnaryCmp(-3, 0, Cmp::kGt, 7));
  ExpectUnaryMatch(Formula::UnaryCong(3, 0, 5, 1));
  ExpectUnaryMatch(Formula::UnaryCong(2, 0, 4, 1));  // Empty.
  ExpectUnaryMatch(Formula::UnaryCong(2, 0, 4, 2));
  ExpectUnaryMatch(Formula::UnaryCmp(0, 0, Cmp::kLt, 1));   // Always true.
  ExpectUnaryMatch(Formula::UnaryCmp(0, 0, Cmp::kGt, 1));   // Always false.
}

TEST(UnaryToRelationTest, BooleanCombinations) {
  FormulaPtr even = Formula::UnaryCong(1, 0, 2, 0);
  FormulaPtr pos = Formula::UnaryCmp(1, 0, Cmp::kGt, 0);
  FormulaPtr mult3 = Formula::UnaryCong(1, 0, 3, 0);
  ExpectUnaryMatch(Formula::And(even, pos));
  ExpectUnaryMatch(Formula::Or(even, mult3));
  ExpectUnaryMatch(Formula::Not(even));
  ExpectUnaryMatch(Formula::Not(Formula::And(even, pos)));
  ExpectUnaryMatch(
      Formula::And(Formula::Not(mult3), Formula::Or(even, Formula::Not(pos))));
}

TEST(UnaryToRelationTest, RejectsBinaryFormulas) {
  FormulaPtr f = Formula::BinaryCmp(1, 0, Cmp::kEq, 1, 1, 0);
  EXPECT_FALSE(UnaryToRelation(f).ok());
}

using Pair = std::vector<std::int64_t>;

std::set<Pair> BinarySetOf(const GeneralRelation& r) {
  std::set<Pair> out;
  for (const Pair& p : r.Enumerate(-kWindow, kWindow)) out.insert(p);
  return out;
}

std::set<Pair> BinarySetOf(const FormulaPtr& f) {
  std::set<Pair> out;
  for (std::int64_t x = -kWindow; x <= kWindow; ++x) {
    for (std::int64_t y = -kWindow; y <= kWindow; ++y) {
      if (f->Evaluate({x, y})) out.insert({x, y});
    }
  }
  return out;
}

void ExpectBinaryMatch(const FormulaPtr& f) {
  Result<GeneralRelation> r = BinaryToGeneralRelation(f);
  ASSERT_TRUE(r.ok()) << r.status() << " for " << f->ToString();
  EXPECT_EQ(BinarySetOf(r.value()), BinarySetOf(f)) << f->ToString();
}

TEST(BinaryToGeneralRelationTest, Theorem22BasicFormulas) {
  ExpectBinaryMatch(Formula::BinaryCmp(2, 0, Cmp::kEq, 3, 1, 1));
  ExpectBinaryMatch(Formula::BinaryCmp(2, 0, Cmp::kLt, 3, 1, 1));
  ExpectBinaryMatch(Formula::BinaryCmp(2, 0, Cmp::kGt, 3, 1, 1));
  ExpectBinaryMatch(Formula::BinaryCmp(-2, 0, Cmp::kLt, 3, 1, 0));
  ExpectBinaryMatch(Formula::BinaryCong(1, 0, 4, 1, 1, 2));
  ExpectBinaryMatch(Formula::BinaryCong(2, 0, 6, 3, 1, 1));
  ExpectBinaryMatch(Formula::BinaryCong(3, 0, 5, 2, 1, 0));
}

TEST(BinaryToGeneralRelationTest, UnaryAtomsInsideBinaryFormulas) {
  ExpectBinaryMatch(Formula::And(Formula::UnaryCmp(1, 0, Cmp::kGt, 0),
                                 Formula::UnaryCong(1, 1, 3, 2)));
  ExpectBinaryMatch(Formula::UnaryCmp(2, 1, Cmp::kEq, 6));
}

TEST(BinaryToGeneralRelationTest, BooleanCombinationsWithNegation) {
  FormulaPtr diag = Formula::BinaryCmp(1, 0, Cmp::kEq, 1, 1, 0);
  FormulaPtr cong = Formula::BinaryCong(1, 0, 3, 1, 1, 1);
  FormulaPtr lt = Formula::BinaryCmp(1, 0, Cmp::kLt, 1, 1, -2);
  ExpectBinaryMatch(Formula::And(diag, Formula::UnaryCmp(1, 0, Cmp::kGt, 2)));
  ExpectBinaryMatch(Formula::Or(cong, lt));
  ExpectBinaryMatch(Formula::Not(diag));
  ExpectBinaryMatch(Formula::Not(cong));
  ExpectBinaryMatch(Formula::Not(Formula::Or(Formula::Not(lt), cong)));
}

TEST(BinaryToGeneralRelationTest, PaperProofShape) {
  // The congruence construction materializes at most `mod` residue tuples.
  Result<GeneralRelation> r =
      BinaryToGeneralRelation(Formula::BinaryCong(1, 0, 4, 1, 1, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value().size(), 4);
  for (const GeneralTuple& t : r.value().tuples()) {
    EXPECT_TRUE(t.constraints().empty());  // Pure free extensions.
  }
}

TEST(BinaryToGeneralRelationTest, RejectsTernary) {
  FormulaPtr f = Formula::BinaryCmp(1, 0, Cmp::kEq, 1, 2, 0);
  EXPECT_FALSE(BinaryToGeneralRelation(f).ok());
}

TEST(GeneralRelationTest, ContainsAndToString) {
  GeneralRelation r(2);
  GeneralTuple t({Lrp::Make(0, 2), Lrp::Make(0, 1)});
  t.AddConstraint(GeneralConstraint{2, 0, 1, 1, 0});  // 2*X0 <= X1.
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  EXPECT_TRUE(r.Contains({2, 4}));
  EXPECT_FALSE(r.Contains({2, 3}));
  EXPECT_FALSE(r.Contains({1, 100}));  // Odd X0 not on the lrp.
  EXPECT_NE(r.ToString().find("2*X0 <= 1*X1"), std::string::npos);
}

}  // namespace
}  // namespace presburger
}  // namespace itdb
