#include "presburger/formula.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace itdb {
namespace presburger {
namespace {

TEST(FormulaTest, ConstantsEvaluate) {
  EXPECT_TRUE(Formula::True()->Evaluate({}));
  EXPECT_FALSE(Formula::False()->Evaluate({}));
}

TEST(FormulaTest, UnaryCmpEvaluates) {
  // 3*v = 12.
  FormulaPtr eq = Formula::UnaryCmp(3, 0, Cmp::kEq, 12);
  EXPECT_TRUE(eq->Evaluate({4}));
  EXPECT_FALSE(eq->Evaluate({5}));
  // -2*v < 5.
  FormulaPtr lt = Formula::UnaryCmp(-2, 0, Cmp::kLt, 5);
  EXPECT_TRUE(lt->Evaluate({0}));
  EXPECT_TRUE(lt->Evaluate({10}));
  EXPECT_FALSE(lt->Evaluate({-3}));  // -2*-3 = 6 >= 5.
  // 2*v > -4.
  FormulaPtr gt = Formula::UnaryCmp(2, 0, Cmp::kGt, -4);
  EXPECT_TRUE(gt->Evaluate({0}));
  EXPECT_FALSE(gt->Evaluate({-2}));  // -4 > -4 is false.
}

TEST(FormulaTest, UnaryCongEvaluates) {
  // 3*v ===_5 1: v = 2 -> 6 === 1 (mod 5) true.
  FormulaPtr f = Formula::UnaryCong(3, 0, 5, 1);
  EXPECT_TRUE(f->Evaluate({2}));
  EXPECT_TRUE(f->Evaluate({7}));
  EXPECT_TRUE(f->Evaluate({-3}));  // -9 - 1 = -10, divisible by 5.
  EXPECT_FALSE(f->Evaluate({0}));
}

TEST(FormulaTest, BinaryAtomsEvaluate) {
  // 2*v0 = 3*v1 + 1.
  FormulaPtr eq = Formula::BinaryCmp(2, 0, Cmp::kEq, 3, 1, 1);
  EXPECT_TRUE(eq->Evaluate({2, 1}));
  EXPECT_FALSE(eq->Evaluate({2, 2}));
  // v0 ===_4 v1 + 2.
  FormulaPtr cong = Formula::BinaryCong(1, 0, 4, 1, 1, 2);
  EXPECT_TRUE(cong->Evaluate({6, 0}));
  EXPECT_TRUE(cong->Evaluate({-2, 0}));
  EXPECT_FALSE(cong->Evaluate({5, 0}));
}

TEST(FormulaTest, BooleanStructure) {
  FormulaPtr pos = Formula::UnaryCmp(1, 0, Cmp::kGt, 0);
  FormulaPtr even = Formula::UnaryCong(1, 0, 2, 0);
  FormulaPtr both = Formula::And(pos, even);
  EXPECT_TRUE(both->Evaluate({4}));
  EXPECT_FALSE(both->Evaluate({3}));
  EXPECT_FALSE(both->Evaluate({-4}));
  FormulaPtr either = Formula::Or(pos, even);
  EXPECT_TRUE(either->Evaluate({3}));
  EXPECT_TRUE(either->Evaluate({-4}));
  EXPECT_FALSE(either->Evaluate({-3}));
  FormulaPtr neither = Formula::Not(either);
  EXPECT_TRUE(neither->Evaluate({-3}));
  EXPECT_FALSE(neither->Evaluate({4}));
}

TEST(FormulaTest, MaxVar) {
  EXPECT_EQ(Formula::True()->MaxVar(), -1);
  EXPECT_EQ(Formula::UnaryCmp(1, 0, Cmp::kEq, 0)->MaxVar(), 0);
  EXPECT_EQ(Formula::BinaryCmp(1, 0, Cmp::kEq, 1, 1, 0)->MaxVar(), 1);
  EXPECT_EQ(Formula::Not(Formula::BinaryCong(1, 1, 3, 1, 0, 0))->MaxVar(), 1);
}

class NnfPropertyTest : public ::testing::TestWithParam<int> {};

FormulaPtr BuildFormula(int variant) {
  FormulaPtr a = Formula::UnaryCmp(2, 0, Cmp::kLt, 7);
  FormulaPtr b = Formula::UnaryCong(1, 0, 3, 1);
  FormulaPtr c = Formula::BinaryCmp(1, 0, Cmp::kGt, 2, 1, -1);
  FormulaPtr d = Formula::BinaryCong(2, 0, 4, 1, 1, 1);
  switch (variant % 6) {
    case 0:
      return Formula::Not(Formula::And(a, b));
    case 1:
      return Formula::Not(Formula::Or(Formula::Not(a), c));
    case 2:
      return Formula::And(Formula::Not(d), Formula::Or(a, Formula::Not(b)));
    case 3:
      return Formula::Not(Formula::Not(Formula::And(c, d)));
    case 4:
      return Formula::Or(Formula::Not(c), Formula::Not(d));
    default:
      return Formula::Not(
          Formula::And(Formula::Or(a, d), Formula::Not(Formula::Or(b, c))));
  }
}

TEST_P(NnfPropertyTest, NnfPreservesSemantics) {
  FormulaPtr f = BuildFormula(GetParam());
  FormulaPtr nnf = NegationNormalForm(f);
  for (std::int64_t x = -8; x <= 8; ++x) {
    for (std::int64_t y = -8; y <= 8; ++y) {
      EXPECT_EQ(f->Evaluate({x, y}), nnf->Evaluate({x, y}))
          << f->ToString() << " vs " << nnf->ToString() << " at (" << x << ","
          << y << ")";
    }
  }
}

// NNF must not contain Not nodes.
bool HasNot(const FormulaPtr& f) {
  switch (f->kind()) {
    case Formula::Kind::kNot:
      return true;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      return HasNot(f->left()) || HasNot(f->right());
    default:
      return false;
  }
}

TEST_P(NnfPropertyTest, NnfHasNoNegation) {
  EXPECT_FALSE(HasNot(NegationNormalForm(BuildFormula(GetParam()))));
}

INSTANTIATE_TEST_SUITE_P(Variants, NnfPropertyTest, ::testing::Range(0, 6));

TEST(FormulaTest, ToStringReadable) {
  FormulaPtr f = Formula::And(Formula::UnaryCmp(2, 0, Cmp::kLt, 7),
                              Formula::UnaryCong(1, 0, 3, 1));
  EXPECT_EQ(f->ToString(), "(2*v0 < 7 && 1*v0 ===_3 1)");
}

}  // namespace
}  // namespace presburger
}  // namespace itdb
