// Randomized Theorem 2.1 / 2.2 sweeps: arbitrary boolean combinations of
// random basic Presburger formulas must translate into relations whose
// extensions match direct formula evaluation on a window.

#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "presburger/to_relation.h"

namespace itdb {
namespace presburger {
namespace {

constexpr std::int64_t kWindow = 12;

FormulaPtr RandomAtom(std::mt19937& rng, int max_var) {
  std::uniform_int_distribution<int> kind_pick(0, 3);
  std::uniform_int_distribution<std::int64_t> coeff_pick(-3, 3);
  std::uniform_int_distribution<std::int64_t> const_pick(-6, 6);
  std::uniform_int_distribution<std::int64_t> mod_pick(1, 6);
  std::uniform_int_distribution<int> var_pick(0, max_var);
  std::uniform_int_distribution<int> cmp_pick(0, 2);
  std::int64_t k1 = coeff_pick(rng);
  if (k1 == 0) k1 = 1;
  Cmp cmp = static_cast<Cmp>(cmp_pick(rng));
  int v1 = var_pick(rng);
  switch (kind_pick(rng)) {
    case 0:
      return Formula::UnaryCmp(k1, v1, cmp, const_pick(rng));
    case 1:
      return Formula::UnaryCong(k1, v1, mod_pick(rng), const_pick(rng));
    case 2: {
      if (max_var == 0) return Formula::UnaryCmp(k1, v1, cmp, const_pick(rng));
      std::int64_t k2 = coeff_pick(rng);
      if (k2 == 0) k2 = -1;
      int v2 = 1 - v1;
      return Formula::BinaryCmp(k1, v1, cmp, k2, v2, const_pick(rng));
    }
    default: {
      if (max_var == 0) {
        return Formula::UnaryCong(k1, v1, mod_pick(rng), const_pick(rng));
      }
      std::int64_t k2 = coeff_pick(rng);
      if (k2 == 0) k2 = 1;
      int v2 = 1 - v1;
      return Formula::BinaryCong(k1, v1, mod_pick(rng), k2, v2,
                                 const_pick(rng));
    }
  }
}

FormulaPtr RandomFormula(std::mt19937& rng, int max_var, int depth) {
  if (depth == 0) return RandomAtom(rng, max_var);
  std::uniform_int_distribution<int> pick(0, 3);
  switch (pick(rng)) {
    case 0:
      return Formula::And(RandomFormula(rng, max_var, depth - 1),
                          RandomFormula(rng, max_var, depth - 1));
    case 1:
      return Formula::Or(RandomFormula(rng, max_var, depth - 1),
                         RandomFormula(rng, max_var, depth - 1));
    case 2:
      return Formula::Not(RandomFormula(rng, max_var, depth - 1));
    default:
      return RandomAtom(rng, max_var);
  }
}

class UnarySweepTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(UnarySweepTest, TranslationMatchesEvaluation) {
  std::mt19937 rng(GetParam());
  FormulaPtr f = RandomFormula(rng, /*max_var=*/0, /*depth=*/3);
  AlgebraOptions options;
  options.max_complement_universe = std::int64_t{1} << 24;
  options.max_tuples = std::int64_t{1} << 24;
  Result<GeneralizedRelation> r = UnaryToRelation(f, options);
  ASSERT_TRUE(r.ok()) << r.status() << " for " << f->ToString();
  std::set<std::int64_t> expect;
  for (std::int64_t x = -kWindow; x <= kWindow; ++x) {
    if (f->Evaluate({x})) expect.insert(x);
  }
  std::set<std::int64_t> got;
  for (const ConcreteRow& row : r.value().Enumerate(-kWindow, kWindow)) {
    got.insert(row.temporal[0]);
  }
  EXPECT_EQ(got, expect) << f->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnarySweepTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{50}));

class BinarySweepTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BinarySweepTest, TranslationMatchesEvaluation) {
  std::mt19937 rng(GetParam() + 999);
  FormulaPtr f = RandomFormula(rng, /*max_var=*/1, /*depth=*/3);
  Result<GeneralRelation> r = BinaryToGeneralRelation(f);
  ASSERT_TRUE(r.ok()) << r.status() << " for " << f->ToString();
  std::set<std::vector<std::int64_t>> expect;
  for (std::int64_t x = -kWindow; x <= kWindow; ++x) {
    for (std::int64_t y = -kWindow; y <= kWindow; ++y) {
      if (f->Evaluate({x, y})) expect.insert({x, y});
    }
  }
  std::set<std::vector<std::int64_t>> got;
  for (const std::vector<std::int64_t>& p :
       r.value().Enumerate(-kWindow, kWindow)) {
    got.insert(p);
  }
  EXPECT_EQ(got, expect) << f->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinarySweepTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{50}));

}  // namespace
}  // namespace presburger
}  // namespace itdb
