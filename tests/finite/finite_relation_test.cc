#include "finite/finite_relation.h"

#include <gtest/gtest.h>

namespace itdb {
namespace {

FiniteRelation UnaryFinite(std::initializer_list<std::int64_t> xs) {
  FiniteRelation r(Schema::Temporal(1));
  for (std::int64_t x : xs) {
    EXPECT_TRUE(r.AddRow(ConcreteRow{{x}, {}}).ok());
  }
  return r;
}

TEST(FiniteRelationTest, AddRowKeepsSortedUnique) {
  FiniteRelation r = UnaryFinite({5, 1, 3, 1, 5});
  ASSERT_EQ(r.size(), 3);
  EXPECT_EQ(r.rows()[0].temporal[0], 1);
  EXPECT_EQ(r.rows()[2].temporal[0], 5);
  EXPECT_TRUE(r.Contains(ConcreteRow{{3}, {}}));
  EXPECT_FALSE(r.Contains(ConcreteRow{{4}, {}}));
}

TEST(FiniteRelationTest, AddRowChecksArity) {
  FiniteRelation r(Schema::Temporal(1));
  EXPECT_FALSE(r.AddRow(ConcreteRow{{1, 2}, {}}).ok());
  EXPECT_FALSE(r.AddRow(ConcreteRow{{1}, {Value("x")}}).ok());
}

TEST(FiniteRelationTest, MaterializeMatchesEnumerate) {
  GeneralizedRelation g(Schema::Temporal(1));
  ASSERT_TRUE(g.AddTuple(GeneralizedTuple({Lrp::Make(1, 3)})).ok());
  FiniteRelation f = FiniteRelation::Materialize(g, -10, 10);
  EXPECT_EQ(f.rows(), g.Enumerate(-10, 10));
}

TEST(FiniteRelationTest, SetOps) {
  FiniteRelation a = UnaryFinite({1, 2, 3, 4});
  FiniteRelation b = UnaryFinite({3, 4, 5});
  EXPECT_EQ(FiniteRelation::Union(a, b).value().size(), 5);
  EXPECT_EQ(FiniteRelation::Intersect(a, b).value().size(), 2);
  EXPECT_EQ(FiniteRelation::Subtract(a, b).value().size(), 2);
  FiniteRelation other(Schema::Temporal(2));
  EXPECT_FALSE(FiniteRelation::Union(a, other).ok());
}

TEST(FiniteRelationTest, ComplementWithinWindow) {
  FiniteRelation a = UnaryFinite({0, 2});
  Result<FiniteRelation> c = a.Complement(0, 4, {});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().rows(),
            (std::vector<ConcreteRow>{{{1}, {}}, {{3}, {}}, {{4}, {}}}));
}

TEST(FiniteRelationTest, ComplementWithDomains) {
  Schema schema({"T"}, {"d"}, {DataType::kString});
  FiniteRelation a(schema);
  ASSERT_TRUE(a.AddRow(ConcreteRow{{0}, {Value("x")}}).ok());
  Result<FiniteRelation> c =
      a.Complement(0, 1, {{Value("x"), Value("y")}});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().size(), 3);  // (0,y), (1,x), (1,y).
  EXPECT_FALSE(c.value().Contains(ConcreteRow{{0}, {Value("x")}}));
}

TEST(FiniteRelationTest, ProjectAndSelect) {
  Schema schema({"T1", "T2"}, {"d"}, {DataType::kInt});
  FiniteRelation a(schema);
  ASSERT_TRUE(a.AddRow(ConcreteRow{{1, 2}, {Value(std::int64_t{7})}}).ok());
  ASSERT_TRUE(a.AddRow(ConcreteRow{{1, 3}, {Value(std::int64_t{8})}}).ok());
  Result<FiniteRelation> p = a.Project({"T1"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().size(), 1);
  Result<FiniteRelation> s =
      a.SelectTemporal(TemporalCondition{1, 0, CmpOp::kEq, 1});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().size(), 1);  // Only (1, 2): T2 == T1 + 1.
  Result<FiniteRelation> sd =
      a.SelectData(0, CmpOp::kGt, Value(std::int64_t{7}));
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd.value().size(), 1);
}

TEST(FiniteRelationTest, JoinOnSharedAttribute) {
  FiniteRelation a(Schema({"T", "A"}, {}, {}));
  ASSERT_TRUE(a.AddRow(ConcreteRow{{1, 10}, {}}).ok());
  ASSERT_TRUE(a.AddRow(ConcreteRow{{2, 20}, {}}).ok());
  FiniteRelation b(Schema({"T", "B"}, {}, {}));
  ASSERT_TRUE(b.AddRow(ConcreteRow{{1, 100}, {}}).ok());
  Result<FiniteRelation> j = FiniteRelation::Join(a, b);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j.value().size(), 1);
  EXPECT_EQ(j.value().rows()[0].temporal,
            (std::vector<std::int64_t>{1, 10, 100}));
}

TEST(FiniteRelationTest, CrossProductSizes) {
  FiniteRelation a(Schema({"A"}, {}, {}));
  ASSERT_TRUE(a.AddRow(ConcreteRow{{1}, {}}).ok());
  ASSERT_TRUE(a.AddRow(ConcreteRow{{2}, {}}).ok());
  FiniteRelation b(Schema({"B"}, {}, {}));
  ASSERT_TRUE(b.AddRow(ConcreteRow{{7}, {}}).ok());
  Result<FiniteRelation> x = FiniteRelation::CrossProduct(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x.value().size(), 2);
}

TEST(FiniteRelationTest, ApproxBytesGrowsWithRows) {
  FiniteRelation small = UnaryFinite({1});
  FiniteRelation large = UnaryFinite({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_GT(large.ApproxBytes(), small.ApproxBytes());
}

}  // namespace
}  // namespace itdb
