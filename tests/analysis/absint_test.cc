#include "analysis/absint.h"

#include <string>

#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/sorts.h"
#include "storage/database.h"

namespace itdb {
namespace analysis {
namespace {

using query::ParseQuery;
using query::QueryPtr;

Database SmallDb() {
  Result<Database> db = Database::FromText(R"(
    relation P(T: time) { [3+10n] : T >= 3; }
    relation Q(T: time) { [4n]; }
    relation Wide(T: time) { [0+2n] : T >= 0 && T <= 100; }
  )");
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

QueryPtr Parse(const std::string& text) {
  Result<QueryPtr> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status() << " for " << text;
  return std::move(q).value();
}

query::SortMap SortsFor(const Database& db, const QueryPtr& q) {
  Result<query::SortMap> sorts = query::InferSorts(db, q);
  EXPECT_TRUE(sorts.ok()) << sorts.status();
  return std::move(sorts).value();
}

// ---------------------------------------------------------------- Interval

TEST(IntervalTest, IntersectUnionAndEmptiness) {
  Interval a{0, 10};
  Interval b{5, 20};
  EXPECT_EQ(a.Intersect(b), (Interval{5, 10}));
  EXPECT_EQ(a.Union(b), (Interval{0, 20}));
  Interval disjoint{30, 40};
  EXPECT_TRUE(a.Intersect(disjoint).empty());
  EXPECT_FALSE(Interval::Top().empty());
  EXPECT_TRUE(Interval::Empty().empty());
  EXPECT_EQ(FormatInterval(Interval::Empty()), "empty");
}

TEST(IntervalTest, ShiftClampsAtTheSentinels) {
  // A bound pushed past int64 clamps to +-kInf instead of wrapping.
  Interval near_top{Dbm::kInf - 5, Dbm::kInf - 5};
  Interval shifted = near_top.Shift(100);
  EXPECT_GE(shifted.hi, Dbm::kInf);
  Interval top = Interval::Top().Shift(-7);
  EXPECT_TRUE(top.top());
}

// ---------------------------------------------------------------- Widening

TEST(WideningTest, StableBoundsKeepTheirValues) {
  Interval prev{0, 10};
  Interval next{0, 10};
  EXPECT_EQ(WidenInterval(prev, next), (Interval{0, 10}));
}

TEST(WideningTest, MovedBoundsJumpToInfinity) {
  Interval prev{0, 10};
  Interval grew_hi{0, 11};
  Interval widened = WidenInterval(prev, grew_hi);
  EXPECT_EQ(widened.lo, 0);
  EXPECT_GE(widened.hi, Dbm::kInf);
  Interval grew_lo{-1, 10};
  widened = WidenInterval(prev, grew_lo);
  EXPECT_LE(widened.lo, -Dbm::kInf);
  EXPECT_EQ(widened.hi, 10);
}

TEST(WideningTest, DivergentMonotoneChainConvergesWithinDelayPlusThree) {
  // step grows the upper bound by 10 forever: without widening the
  // ascending chain [0,0] c= [0,10] c= [0,20] c= ... never stabilizes.
  FixpointBudget budget;  // widening_delay = 3
  auto step = [](Interval v) { return v.Union(v.Shift(10)); };
  FixpointResult r = IterateToFixpoint(Interval::Point(0), step, budget);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.widened);
  EXPECT_LE(r.iterations, budget.widening_delay + 3);
  // Sound: the fixpoint contains every iterate of the concrete chain.
  EXPECT_EQ(r.value.lo, 0);
  EXPECT_GE(r.value.hi, Dbm::kInf);
}

TEST(WideningTest, BothSidedDivergenceAlsoConverges) {
  FixpointBudget budget;
  auto step = [](Interval v) {
    return v.Union(v.Shift(3)).Union(v.Shift(-7));
  };
  FixpointResult r = IterateToFixpoint(Interval::Point(0), step, budget);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, budget.widening_delay + 3);
  EXPECT_TRUE(r.value.top());
}

TEST(WideningTest, StableStepConvergesWithoutWidening) {
  FixpointBudget budget;
  auto step = [](Interval v) { return v.Intersect(Interval{0, 100}); };
  FixpointResult r = IterateToFixpoint(Interval{0, 50}, step, budget);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.widened);
  EXPECT_EQ(r.value, (Interval{0, 50}));
}

TEST(WideningTest, LargerDelayStillTerminates) {
  FixpointBudget budget;
  budget.widening_delay = 7;
  auto step = [](Interval v) { return v.Union(v.Shift(1)); };
  FixpointResult r = IterateToFixpoint(Interval::Point(0), step, budget);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, budget.widening_delay + 3);
}

TEST(WideningTest, IterationCapBelowTheWideningDelayStopsUnconverged) {
  // With max_iterations below widening_delay the diverging chain runs out
  // of budget before widening can stabilize it; the loop must stop at the
  // cap and report non-convergence rather than spin.
  FixpointBudget budget;
  budget.max_iterations = 2;  // < widening_delay (3).
  auto step = [](Interval v) { return v.Union(v.Shift(10)); };
  FixpointResult r = IterateToFixpoint(Interval::Point(0), step, budget);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, budget.max_iterations);
}

// ------------------------------------------------------------ Certificates

TEST(AbsintTest, AtomCertificateMatchesStoredStats) {
  Database db = SmallDb();
  QueryPtr q = Parse("P(t)");
  AbstractInterpreter interp(db, SortsFor(db, q));
  const Certificate& cert = interp.Interpret(q);
  ASSERT_TRUE(cert.rows.has_value());
  EXPECT_EQ(*cert.rows, 1);  // One stored generalized tuple.
  ASSERT_TRUE(cert.lcm.has_value());
  EXPECT_EQ(*cert.lcm, 10);
  ASSERT_TRUE(cert.hull.count("t"));
  EXPECT_EQ(cert.hull.at("t").lo, 3);  // T >= 3 constraint.
}

TEST(AbsintTest, ConjunctionMultipliesRowsAndComposesLcm) {
  Database db = SmallDb();
  QueryPtr q = Parse("P(t) AND Q(t)");
  AbstractInterpreter interp(db, SortsFor(db, q));
  const Certificate& cert = interp.Interpret(q);
  ASSERT_TRUE(cert.rows.has_value());
  EXPECT_EQ(*cert.rows, 1);  // 1 x 1.
  ASSERT_TRUE(cert.lcm.has_value());
  EXPECT_EQ(*cert.lcm, 20);  // lcm(10, 4).
}

TEST(AbsintTest, ComparisonsNarrowTheHull) {
  Database db = SmallDb();
  QueryPtr q = Parse("Wide(t) AND t >= 10 AND t <= 20");
  AbstractInterpreter interp(db, SortsFor(db, q));
  const Certificate& cert = interp.Interpret(q);
  ASSERT_TRUE(cert.hull.count("t"));
  EXPECT_EQ(cert.hull.at("t"), (Interval{10, 20}));
  EXPECT_FALSE(cert.HullRefuted());
}

TEST(AbsintTest, ContradictoryComparisonsRefuteTheHull) {
  Database db = SmallDb();
  QueryPtr q = Parse("Wide(t) AND t > 200");
  AbstractInterpreter interp(db, SortsFor(db, q));
  const Certificate& cert = interp.Interpret(q);
  // Stored hull is [0, 100]; t > 200 empties the intersection.
  EXPECT_TRUE(cert.HullRefuted());
}

TEST(AbsintTest, ComplementIsRowsUnboundedButKeepsTheLcm) {
  Database db = SmallDb();
  QueryPtr q = Parse("NOT P(t)");
  AbstractInterpreter interp(db, SortsFor(db, q));
  const Certificate& cert = interp.Interpret(q);
  EXPECT_FALSE(cert.rows.has_value());
  EXPECT_FALSE(cert.bounded());
  ASSERT_TRUE(cert.lcm.has_value());
  EXPECT_EQ(*cert.lcm, 10);
}

TEST(AbsintTest, LcmPastTheBudgetReportsUnbounded) {
  Result<Database> db = Database::FromText(R"(
    relation A(T: time) { [10007n]; }
    relation B(T: time) { [10009n]; }
  )");
  ASSERT_TRUE(db.ok()) << db.status();
  QueryPtr q = Parse("A(t) AND B(t)");
  FixpointBudget budget;
  budget.max_period_lcm = 1'000'000;  // lcm = 10007 * 10009 > budget.
  AbstractInterpreter interp(db.value(), SortsFor(db.value(), q),
                             /*stats_cache=*/nullptr, budget);
  const Certificate& cert = interp.Interpret(q);
  EXPECT_FALSE(cert.lcm.has_value());
}

TEST(AbsintTest, ConjoinAlgebraMatchesInterpretedAnd) {
  Database db = SmallDb();
  QueryPtr q = Parse("P(t) AND Q(t)");
  AbstractInterpreter interp(db, SortsFor(db, q));
  const Certificate& whole = interp.Interpret(q);
  const Certificate* l = interp.Find(q->left().get());
  const Certificate* r = interp.Find(q->right().get());
  ASSERT_NE(l, nullptr);
  ASSERT_NE(r, nullptr);
  Certificate joined = interp.Conjoin(*l, *r);
  EXPECT_EQ(joined.rows, whole.rows);
  EXPECT_EQ(joined.lcm, whole.lcm);
  EXPECT_EQ(joined.hull, whole.hull);
}

TEST(AbsintTest, RegisterAttachesCertificatesToRebuiltNodes) {
  Database db = SmallDb();
  QueryPtr q = Parse("P(t)");
  AbstractInterpreter interp(db, SortsFor(db, q));
  Certificate cert = interp.Interpret(q);
  QueryPtr rebuilt = Parse("P(t)");
  EXPECT_EQ(interp.Find(rebuilt.get()), nullptr);
  interp.Register(rebuilt.get(), cert);
  const Certificate* found = interp.Find(rebuilt.get());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->rows, cert.rows);
}

TEST(AbsintTest, FormatCertificateRendersBoundsAndEmptiness) {
  Certificate cert;
  cert.rows = 12;
  cert.lcm = 6;
  EXPECT_EQ(FormatCertificate(cert), "cert_rows=12, cert_lcm=6");
  cert.rows.reset();
  cert.hull["t"] = Interval::Empty();
  EXPECT_EQ(FormatCertificate(cert),
            "cert_rows=unbounded, cert_lcm=6, cert_empty=set");
}

}  // namespace
}  // namespace analysis
}  // namespace itdb
