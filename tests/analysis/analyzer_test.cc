#include "analysis/analyzer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/eval.h"
#include "query/parser.h"
#include "storage/database.h"
#include "util/diagnostic.h"

namespace itdb {
namespace analysis {
namespace {

using query::EvalQueryStringAnalyzed;
using query::ParseQuery;
using query::QueryPtr;

Database SmallDb() {
  Result<Database> db = Database::FromText(R"(
    relation P(T: time) { [3+10n] : T >= 3; }
    relation Q(T: time) { [10n]; }
    relation Less(A: time, B: time) { [n, n] : A <= B - 1; }
    relation Who(T: time, W: string) { [2n | "alice"]; [1+2n | "bob"]; }
    relation Seven(T: time) { [7n]; }
    relation Eleven(T: time) { [11n]; }
    relation Thirteen(T: time) { [13n]; }
  )");
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

QueryPtr Parse(const std::string& text) {
  Result<QueryPtr> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status() << " for " << text;
  return std::move(q).value();
}

bool HasCode(const AnalysisResult& r, std::string_view code) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

TEST(AnalyzerTest, CleanQueryHasNoFindings) {
  Database db = SmallDb();
  AnalysisResult r = Analyze(db, Parse("P(t) AND t <= 20"));
  EXPECT_FALSE(r.HasErrors());
  EXPECT_TRUE(r.diagnostics.empty())
      << FormatDiagnosticList(r.diagnostics);
  EXPECT_FALSE(r.root_proven_empty);
}

TEST(AnalyzerTest, SortErrorsSuppressLaterPasses) {
  Database db = SmallDb();
  // Unknown relation: A001, and no pass-2..4 findings on garbage input.
  AnalysisResult r = Analyze(db, Parse("Zq(t) AND P(t) AND Q(u)"));
  EXPECT_TRUE(r.HasErrors());
  EXPECT_TRUE(HasCode(r, diag::kUnknownRelation));
  EXPECT_FALSE(HasCode(r, diag::kCrossProduct));
  EXPECT_TRUE(r.proven_empty.empty());
}

TEST(AnalyzerTest, UnsafeDataVariableWarns) {
  Database db = SmallDb();
  // w occurs only under negation: it ranges over the whole active domain.
  AnalysisResult r = Analyze(db, Parse("P(t) AND NOT Who(t, w)"));
  EXPECT_FALSE(r.HasErrors());
  EXPECT_TRUE(HasCode(r, diag::kUnsafeDataVariable))
      << FormatDiagnosticList(r.diagnostics);
  // A positive binding occurrence silences it.
  AnalysisResult safe =
      Analyze(db, Parse("Who(t, w) AND NOT Who(t + 2, w)"));
  EXPECT_FALSE(HasCode(safe, diag::kUnsafeDataVariable))
      << FormatDiagnosticList(safe.diagnostics);
}

TEST(AnalyzerTest, DbmContradictionProvesEmptiness) {
  Database db = SmallDb();
  AnalysisResult r = Analyze(db, Parse("P(t) AND t > 5 AND t < 4"));
  EXPECT_FALSE(r.HasErrors());
  EXPECT_TRUE(HasCode(r, diag::kStaticallyEmpty))
      << FormatDiagnosticList(r.diagnostics);
  EXPECT_TRUE(r.root_proven_empty);
}

TEST(AnalyzerTest, OffsetChainsFeedTheDbm) {
  Database db = SmallDb();
  // t + 1 <= u and u <= t - 1 close to an infeasible cycle.
  AnalysisResult r =
      Analyze(db, Parse("Less(t, u) AND t + 1 <= u AND u <= t - 1"));
  EXPECT_TRUE(r.root_proven_empty)
      << FormatDiagnosticList(r.diagnostics);
  // The one-sided variant is satisfiable: no emptiness claim.
  AnalysisResult sat = Analyze(db, Parse("Less(t, u) AND t + 1 <= u"));
  EXPECT_FALSE(sat.root_proven_empty);
  EXPECT_FALSE(HasCode(sat, diag::kStaticallyEmpty));
}

TEST(AnalyzerTest, GroundFalseComparisonProvesEmptiness) {
  Database db = SmallDb();
  AnalysisResult r = Analyze(db, Parse("P(t) AND 3 < 2"));
  EXPECT_TRUE(r.root_proven_empty);
  // Negation blocks the claim: NOT over an empty subplan is the universe.
  AnalysisResult n = Analyze(db, Parse("P(t) AND NOT (Q(t) AND 3 < 2)"));
  EXPECT_FALSE(n.root_proven_empty);
}

TEST(AnalyzerTest, ExpensiveComplementWarns) {
  Database db = SmallDb();
  AnalysisResult r =
      Analyze(db, Parse("Less(a, b) AND NOT Less(b, a)"));
  EXPECT_TRUE(HasCode(r, diag::kExpensiveComplement))
      << FormatDiagnosticList(r.diagnostics);
  // One free temporal variable is under the default width threshold.
  AnalysisResult cheap = Analyze(db, Parse("P(t) AND NOT Q(t)"));
  EXPECT_FALSE(HasCode(cheap, diag::kExpensiveComplement))
      << FormatDiagnosticList(cheap.diagnostics);
}

TEST(AnalyzerTest, CrossProductWarns) {
  Database db = SmallDb();
  AnalysisResult r = Analyze(db, Parse("P(t) AND Q(u)"));
  EXPECT_TRUE(HasCode(r, diag::kCrossProduct))
      << FormatDiagnosticList(r.diagnostics);
  AnalysisResult joined = Analyze(db, Parse("P(t) AND Q(u) AND t <= u"));
  EXPECT_FALSE(HasCode(joined, diag::kCrossProduct))
      << FormatDiagnosticList(joined.diagnostics);
}

TEST(AnalyzerTest, PeriodBlowupWarns) {
  Database db = SmallDb();
  // lcm(7, 11, 13) = 1001 > 720.
  AnalysisResult r = Analyze(
      db, Parse("Seven(t) AND Eleven(t) AND Thirteen(t)"));
  EXPECT_TRUE(HasCode(r, diag::kPeriodBlowup))
      << FormatDiagnosticList(r.diagnostics);
  // lcm(7, 11) = 77: fine.
  AnalysisResult ok = Analyze(db, Parse("Seven(t) AND Eleven(t)"));
  EXPECT_FALSE(HasCode(ok, diag::kPeriodBlowup))
      << FormatDiagnosticList(ok.diagnostics);
}

TEST(AnalyzerTest, VacuousQuantifierWarns) {
  Database db = SmallDb();
  AnalysisResult r = Analyze(db, Parse("EXISTS u . P(t)"));
  EXPECT_FALSE(r.HasErrors()) << FormatDiagnosticList(r.diagnostics);
  EXPECT_TRUE(HasCode(r, diag::kVacuousQuantifier));
}

TEST(AnalyzerTest, MixedConstantComparisonIsAnError) {
  Database db = SmallDb();
  AnalysisResult r = Analyze(db, Parse("P(t) AND \"a\" = 3"));
  EXPECT_TRUE(r.HasErrors());
  EXPECT_TRUE(HasCode(r, diag::kIncompatibleConstant))
      << FormatDiagnosticList(r.diagnostics);
}

TEST(AnalyzerTest, DataSelfComparisonIsAnError) {
  Database db = SmallDb();
  AnalysisResult r = Analyze(db, Parse("Who(t, w) AND w < w"));
  EXPECT_TRUE(r.HasErrors());
  EXPECT_TRUE(HasCode(r, diag::kMixedSortComparison))
      << FormatDiagnosticList(r.diagnostics);
}

TEST(RewriteTest, DeadOrBranchIsEliminated) {
  Database db = SmallDb();
  // The ground-false conjunct makes the branch BIT-empty (the evaluator
  // joins against zero tuples), so dropping it is representation-safe.
  QueryPtr q = Parse("(P(t) AND 3 < 2) OR Q(t)");
  AnalysisResult r = Analyze(db, q);
  ASSERT_FALSE(r.HasErrors());
  int removed = 0;
  QueryPtr rewritten = ApplySoundRewrites(q, r, &removed);
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(rewritten->ToString(), "Q(t)");
}

TEST(RewriteTest, SetLevelProofDoesNotRewrite) {
  Database db = SmallDb();
  // DBM-refuted branch: provably the empty SET, but its evaluation can
  // keep infeasible tuples, so elimination would be visible in the
  // union's representation.  Diagnostics fire; the rewrite must not.
  QueryPtr q = Parse("(P(t) AND t > 5 AND t < 4) OR Q(t)");
  AnalysisResult r = Analyze(db, q);
  ASSERT_FALSE(r.HasErrors());
  EXPECT_FALSE(r.proven_empty.empty());
  int removed = 0;
  QueryPtr rewritten = ApplySoundRewrites(q, r, &removed);
  EXPECT_EQ(removed, 0);
  EXPECT_EQ(rewritten.get(), q.get());
}

TEST(RewriteTest, NothingToRewriteReturnsSameTree) {
  Database db = SmallDb();
  QueryPtr q = Parse("P(t) OR Q(t)");
  AnalysisResult r = Analyze(db, q);
  int removed = 0;
  QueryPtr rewritten = ApplySoundRewrites(q, r, &removed);
  EXPECT_EQ(removed, 0);
  EXPECT_EQ(rewritten.get(), q.get());
}

TEST(RewriteTest, NegatedContextBlocksElimination) {
  Database db = SmallDb();
  // Under NOT, dropping the empty branch is semantically a no-op but not
  // representation-preserving; the rewriter must leave it alone.
  QueryPtr q = Parse("NOT ((P(t) AND 3 < 2) OR Q(t)) AND P(t)");
  AnalysisResult r = Analyze(db, q);
  ASSERT_FALSE(r.HasErrors());
  int removed = 0;
  QueryPtr rewritten = ApplySoundRewrites(q, r, &removed);
  EXPECT_EQ(removed, 0);
  EXPECT_EQ(rewritten.get(), q.get());
}

TEST(RewriteTest, FreeVariableSupersetBlocksElimination) {
  Database db = SmallDb();
  // The dead branch mentions u, which the surviving branch does not; the
  // union's schema would change, so elimination must not fire.
  QueryPtr q = Parse("(Less(t, u) AND 3 < 2) OR Q(t)");
  AnalysisResult r = Analyze(db, q);
  ASSERT_FALSE(r.HasErrors());
  int removed = 0;
  QueryPtr rewritten = ApplySoundRewrites(q, r, &removed);
  EXPECT_EQ(removed, 0);
}

bool SameRepresentation(const GeneralizedRelation& a,
                        const GeneralizedRelation& b) {
  return a.schema() == b.schema() && a.tuples() == b.tuples();
}

TEST(AnalyzedEvalTest, AnalysisIsBitIdentical) {
  Database db = SmallDb();
  const char* queries[] = {
      "P(t) AND t <= 40",
      "(P(t) AND t > 5 AND t < 4) OR Q(t)",
      "P(t) AND t > 5 AND t < 4",
      "Who(t, w) AND Who(t + 2, w)",
      "NOT ((P(t) AND 3 < 2) OR Q(t)) AND P(t) AND t <= 50",
  };
  for (const char* text : queries) {
    query::QueryOptions off;
    off.analyze = false;
    query::QueryOptions on;
    on.analyze = true;
    Result<GeneralizedRelation> base = EvalQueryString(db, text, off);
    Result<GeneralizedRelation> got = EvalQueryString(db, text, on);
    ASSERT_TRUE(base.ok()) << base.status() << " for " << text;
    ASSERT_TRUE(got.ok()) << got.status() << " for " << text;
    EXPECT_TRUE(SameRepresentation(*base, *got)) << text;
  }
}

TEST(AnalyzedEvalTest, ErrorsAbortEvaluationWithDiagnostics) {
  Database db = SmallDb();
  query::QueryOptions options;  // analyze defaults to true
  Result<GeneralizedRelation> r = EvalQueryString(db, "Who(t, w) AND w < w",
                                                  options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("A007"), std::string::npos)
      << r.status();
  // Unknown relations keep their historical kNotFound code.
  Result<GeneralizedRelation> nf = EvalQueryString(db, "Zq(t)", options);
  ASSERT_FALSE(nf.ok());
  EXPECT_EQ(nf.status().code(), StatusCode::kNotFound);
}

TEST(AnalyzedEvalTest, EvalQueryAnalyzedReturnsStructuredFindings) {
  Database db = SmallDb();
  Result<query::AnalyzedResult> ok =
      EvalQueryStringAnalyzed(db, "P(t) AND t <= 20");
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_TRUE(ok->relation.has_value());
  EXPECT_TRUE(ok->analysis.diagnostics.empty());

  Result<query::AnalyzedResult> bad =
      EvalQueryStringAnalyzed(db, "Zq(t) AND P(t)");
  ASSERT_TRUE(bad.ok()) << bad.status();  // Diagnostics ARE the result.
  EXPECT_FALSE(bad->relation.has_value());
  EXPECT_TRUE(bad->analysis.HasErrors());

  Result<query::AnalyzedResult> warn =
      EvalQueryStringAnalyzed(db, "P(t) AND Q(u)");
  ASSERT_TRUE(warn.ok()) << warn.status();
  EXPECT_TRUE(warn->relation.has_value());
  EXPECT_GT(warn->analysis.warnings(), 0);
}

TEST(AnalyzedEvalTest, ProvenEmptyRootShortCircuits) {
  Database db = SmallDb();
  // Bit-level proof (ground-false conjunct): served without evaluating.
  Result<query::AnalyzedResult> r =
      EvalQueryStringAnalyzed(db, "P(t) AND 3 < 2");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->analysis.root_proven_bit_empty);
  ASSERT_TRUE(r->relation.has_value());
  EXPECT_EQ(r->relation->size(), 0);
  EXPECT_EQ(r->relation->schema().temporal_names(),
            std::vector<std::string>{"t"});
}

TEST(AnalyzedEvalTest, SetLevelEmptyRootStillEvaluates) {
  Database db = SmallDb();
  // DBM-level proof only: the evaluator runs (its representation of the
  // empty set is its own business), but the diagnostics still flag it.
  Result<query::AnalyzedResult> r =
      EvalQueryStringAnalyzed(db, "P(t) AND t > 5 AND t < 4");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->analysis.root_proven_empty);
  EXPECT_FALSE(r->analysis.root_proven_bit_empty);
  ASSERT_TRUE(r->relation.has_value());
}

}  // namespace
}  // namespace analysis
}  // namespace itdb
