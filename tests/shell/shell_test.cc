#include "shell/shell.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace itdb {
namespace {

std::string RunScript(const std::string& script, Database* db = nullptr) {
  Database local;
  Database& target = db == nullptr ? local : *db;
  std::istringstream in(script);
  std::ostringstream out;
  Status s = RunShell(in, out, target);
  EXPECT_TRUE(s.ok()) << s;
  return out.str();
}

constexpr const char* kDefineP = R"(
define relation P(T: time) {
  [3+10n] : T >= 3;
}
)";

TEST(ShellTest, HelpListsCommands) {
  std::string out = RunScript("help\n");
  EXPECT_NE(out.find("enumerate"), std::string::npos);
  EXPECT_NE(out.find("ask"), std::string::npos);
}

TEST(ShellTest, DefineListShow) {
  std::string out = RunScript(std::string(kDefineP) + "list\nshow P\n");
  EXPECT_NE(out.find("P\n"), std::string::npos);
  EXPECT_NE(out.find("relation P(T: time)"), std::string::npos);
  EXPECT_NE(out.find("3+10n"), std::string::npos);
}

TEST(ShellTest, EnumerateWindow) {
  std::string out = RunScript(std::string(kDefineP) + "enumerate P 0 25\n");
  EXPECT_NE(out.find("(3)"), std::string::npos);
  EXPECT_NE(out.find("(13)"), std::string::npos);
  EXPECT_NE(out.find("(23)"), std::string::npos);
  EXPECT_NE(out.find("3 row(s)"), std::string::npos);
}

TEST(ShellTest, AskAndQuery) {
  std::string out = RunScript(std::string(kDefineP) +
                        "ask EXISTS t . P(t)\n"
                        "ask P(4)\n"
                        "query P(t) AND t <= 20\n");
  EXPECT_NE(out.find("true"), std::string::npos);
  EXPECT_NE(out.find("false"), std::string::npos);
  EXPECT_NE(out.find("relation result"), std::string::npos);
}

TEST(ShellTest, DropRemovesRelation) {
  std::string out = RunScript(std::string(kDefineP) + "drop P\nlist\nshow P\n");
  EXPECT_NE(out.find("error:"), std::string::npos);
}

constexpr const char* kDefineQ = R"(
define relation Q(T: time) {
  [4n];
}
)";

TEST(ShellTest, ExplainPrintsGoldenPlanTree) {
  std::string out = RunScript(std::string(kDefineP) + kDefineQ +
                              "explain EXISTS u . P(t) AND Q(u)\n");
  // Golden: the miniscoped optimizer pushes EXISTS u onto the Q conjunct.
  EXPECT_NE(out.find("query:     EXISTS u . ((P(t) AND Q(u)))"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("optimized: (P(t) AND EXISTS u . (Q(u)))"),
            std::string::npos)
      << out;
  // Analyzer findings print before the plan (severity-ordered; this case
  // has a single cross-product warning).
  EXPECT_NE(out.find("analysis:\n"
                     "warning[A011] at 1:12: conjunction operands share no "
                     "attributes; the join degenerates to a cross product\n"),
            std::string::npos)
      << out;
  // The cost planner annotates every node with its estimates and the
  // abstract interpreter's certified bounds.
  EXPECT_NE(out.find("plan:\n"
                     "AND  (est_rows=1, est_cost=5, cert_rows=1, "
                     "cert_lcm=20)\n"
                     "  ATOM P(t)  (est_rows=1, est_cost=1, cert_rows=1, "
                     "cert_lcm=10)\n"
                     "  EXISTS u  (est_rows=1, est_cost=2, cert_rows=1, "
                     "cert_lcm=4)\n"
                     "    ATOM Q(u)  (est_rows=1, est_cost=1, cert_rows=1, "
                     "cert_lcm=4)\n"),
            std::string::npos)
      << out;
}

TEST(ShellTest, ExplainPrintsAnalyzerFindingsInSeverityOrder) {
  // R/S force one error-free query with findings at every severity:
  // A012/A015 warnings (lcm 10403 > 720) and an A017 note under NOT.
  std::string out = RunScript(
      "define relation R(T: time) {\n  [3+101n];\n}\n"
      "define relation S(T: time) {\n  [4+103n];\n}\n"
      "explain R(t) AND S(t) AND NOT R(t)\n");
  // Golden: warnings strictly before notes, pass order within a severity
  // (the cost pass's A012, then the certificate pass's A015), and the
  // block cleanly separated from "plan:".
  EXPECT_NE(
      out.find(
          "analysis:\n"
          "warning[A012] at 1:1: the periods reachable from this query "
          "compose to lcm 10403 (threshold 720); normalization may expand "
          "each tuple by that factor\n"
          "warning[A015] at 1:1: certified period lcm 10403 exceeds the "
          "blowup threshold 720\n"
          "note[A017] at 1:1: no finite certificate: the result's "
          "cardinality cannot be bounded statically\n"
          "plan:\n"),
      std::string::npos)
      << out;
  // The unbounded complement surfaces in the annotations too.
  EXPECT_NE(out.find("cert_rows=unbounded"), std::string::npos) << out;
}

TEST(ShellTest, ExplainAcceptsUppercaseAndRejectsParseErrors) {
  std::string out =
      RunScript(std::string(kDefineP) + "EXPLAIN P(t)\nexplain P(\n");
  EXPECT_NE(out.find("ATOM P(t)"), std::string::npos) << out;
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
}

TEST(ShellTest, ProfileReportsPerNodeTimings) {
  std::string out = RunScript(std::string(kDefineP) + kDefineQ +
                              "profile P(t) AND Q(t)\n"
                              "PROFILE P(t) AND Q(t)\n");
  // The root spans the whole query; plan nodes carry times and counters.
  EXPECT_NE(out.find("query (P(t) AND Q(t))"), std::string::npos) << out;
  EXPECT_NE(out.find("ATOM P(t)"), std::string::npos) << out;
  EXPECT_NE(out.find("ATOM Q(t)"), std::string::npos) << out;
  EXPECT_NE(out.find("wall="), std::string::npos) << out;
  EXPECT_NE(out.find("cpu="), std::string::npos) << out;
  EXPECT_NE(out.find("tuples_out="), std::string::npos) << out;
  EXPECT_NE(out.find("pairs_candidate="), std::string::npos) << out;
  EXPECT_NE(out.find("cache_hits="), std::string::npos) << out;
  EXPECT_NE(out.find("generalized tuple(s)"), std::string::npos) << out;
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(ShellTest, ProfileMatchesQueryResult) {
  // PROFILE evaluates the same query `query` does -- same tuple count line.
  std::string script = std::string(kDefineP) +
                       "query P(t) AND t <= 23\n"
                       "profile P(t) AND t <= 23\n";
  std::string out = RunScript(script);
  // Both commands report the same "N generalized tuple(s)" footer.
  std::size_t first = out.find("generalized tuple(s)");
  ASSERT_NE(first, std::string::npos) << out;
  std::size_t second = out.find("generalized tuple(s)", first + 1);
  ASSERT_NE(second, std::string::npos) << out;
  auto count_before = [&out](std::size_t pos) {
    std::size_t line = out.rfind('\n', pos);
    return out.substr(line + 1, pos - line - 1);
  };
  EXPECT_EQ(count_before(first), count_before(second)) << out;
}

TEST(ShellTest, MetricsDumpsRegistry) {
  std::string out =
      RunScript(std::string(kDefineP) + "query P(t)\nmetrics\n");
  EXPECT_NE(out.find("query.evaluations"), std::string::npos) << out;
  EXPECT_NE(out.find("thread_pool.workers"), std::string::npos) << out;
}

TEST(ShellTest, HelpListsObservabilityCommands) {
  std::string out = RunScript("help\n");
  EXPECT_NE(out.find("explain"), std::string::npos);
  EXPECT_NE(out.find("profile"), std::string::npos);
  EXPECT_NE(out.find("metrics"), std::string::npos);
}

TEST(ShellTest, UnknownCommandReportsError) {
  std::string out = RunScript("frobnicate\n");
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST(ShellTest, CommentsAndBlankLinesIgnored) {
  std::string out = RunScript("# nothing here\n\n   \nlist\n");
  EXPECT_EQ(out.find("error"), std::string::npos);
}

TEST(ShellTest, QuitStopsProcessing) {
  std::string out = RunScript("quit\nfrobnicate\n");
  EXPECT_EQ(out.find("unknown command"), std::string::npos);
}

TEST(ShellTest, StopOnErrorPropagates) {
  Database db;
  std::istringstream in("show missing\nlist\n");
  std::ostringstream out;
  ShellOptions options;
  options.stop_on_error = true;
  Status s = RunShell(in, out, db, options);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(ShellTest, SaveAndLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/shell_roundtrip.itdb";
  RunScript(std::string(kDefineP) + "save " + path + "\n");
  Database db;
  std::string out = RunScript("load " + path + "\nask P(13)\n", &db);
  EXPECT_NE(out.find("true"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ShellTest, CheckReportsCaretDiagnostics) {
  // "R" does not exist: A001 at the atom, with the caret under it.
  std::string out = RunScript("check EXISTS t . R(t)\n");
  EXPECT_NE(out.find("error[A001]"), std::string::npos) << out;
  EXPECT_NE(out.find("--> 1:12"), std::string::npos) << out;
  EXPECT_NE(out.find("^"), std::string::npos) << out;
  EXPECT_NE(out.find("check: 1 error(s), 0 warning(s)"), std::string::npos)
      << out;
}

TEST(ShellTest, CheckAcceptsCleanQueryAndFlagsEmptyOnes) {
  std::string out = RunScript(std::string(kDefineP) +
                              "check P(t) AND t <= 20\n"
                              "check P(t) AND t > 5 AND t < 4\n");
  EXPECT_NE(out.find("check: ok"), std::string::npos) << out;
  EXPECT_NE(out.find("warning[A009]"), std::string::npos) << out;
  EXPECT_NE(out.find("statically empty"), std::string::npos) << out;
}

TEST(ShellTest, CheckReportsParseErrorsWithoutFailing) {
  std::string out = RunScript("check P(\nlist\n");
  EXPECT_NE(out.find("error[parse]"), std::string::npos) << out;
  // The shell keeps going: `list` still ran without an "error:" line.
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(ShellTest, CheckAndSatCommands) {
  std::string script = R"(
define relation req(T: time) {
  [10n];
}
define relation ack(T: time) {
  [3+10n];
}
tlcheck G(req -> F[0,5](ack))
tlcheck G(req -> F[0,2](ack))
sat F[0,3](req)
)";
  std::string out = RunScript(script);
  EXPECT_NE(out.find("PASS"), std::string::npos) << out;
  EXPECT_NE(out.find("FAIL"), std::string::npos) << out;
  EXPECT_NE(out.find("violations"), std::string::npos) << out;
  EXPECT_NE(out.find("relation sat"), std::string::npos) << out;
}

TEST(ShellTest, CoalesceSimplifyWitnessCommands) {
  std::string script = R"(
define relation R(T: time) {
  [6n];
  [3+6n];
  [2+4n];
  [2+4n];
}
coalesce R
simplify R
show R
witness R
)";
  std::string out = RunScript(script);
  // {6n, 3+6n} merge to 3n; the duplicate 2+4n collapses.
  EXPECT_NE(out.find("4 -> 2 tuple(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("0+3n"), std::string::npos) << out;
  // Witness prints some concrete member.
  EXPECT_NE(out.find("("), std::string::npos) << out;
  // Unknown relation errors cleanly.
  std::string err = RunScript("witness nope\n");
  EXPECT_NE(err.find("error:"), std::string::npos);
}

TEST(ShellTest, DefineRejectsDuplicates) {
  std::string out = RunScript(std::string(kDefineP) + kDefineP);
  EXPECT_NE(out.find("already exists"), std::string::npos);
}

TEST(ShellTest, EofMidDefineUnwindsWithoutPartialState) {
  // Ctrl-D (or a dropped pipe) in the middle of a define block: the partial
  // statement is abandoned, the catalog is untouched, and the shell reports
  // the unbalanced braces instead of hanging or half-defining.
  Database db;
  std::istringstream in("define relation X(T: time) {\n  [2n];\n");
  std::ostringstream out;
  Status s = RunShell(in, out, db);
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_NE(out.str().find("unbalanced braces in definition"),
            std::string::npos)
      << out.str();
  EXPECT_FALSE(db.Has("X"));
}

TEST(ShellTest, EofMidDefinePropagatesUnderStopOnError) {
  Database db;
  std::istringstream in("define relation X(T: time) {\n");
  std::ostringstream out;
  ShellOptions options;
  options.stop_on_error = true;
  Status s = RunShell(in, out, db, options);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_FALSE(db.Has("X"));
}

TEST(ShellTest, InterruptedBlockThenNewStatementRecovers) {
  // A closing-brace typo ends the block early; the statement fails at the
  // parser but the shell keeps accepting statements afterwards.
  std::string out = RunScript(
      "define relation Y(T: time) {\n  [2n];\n}\nlist\n");
  EXPECT_NE(out.find("Y"), std::string::npos);
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

}  // namespace
}  // namespace itdb
