#include "shell/shell.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace itdb {
namespace {

std::string RunScript(const std::string& script, Database* db = nullptr) {
  Database local;
  Database& target = db == nullptr ? local : *db;
  std::istringstream in(script);
  std::ostringstream out;
  Status s = RunShell(in, out, target);
  EXPECT_TRUE(s.ok()) << s;
  return out.str();
}

constexpr const char* kDefineP = R"(
define relation P(T: time) {
  [3+10n] : T >= 3;
}
)";

TEST(ShellTest, HelpListsCommands) {
  std::string out = RunScript("help\n");
  EXPECT_NE(out.find("enumerate"), std::string::npos);
  EXPECT_NE(out.find("ask"), std::string::npos);
}

TEST(ShellTest, DefineListShow) {
  std::string out = RunScript(std::string(kDefineP) + "list\nshow P\n");
  EXPECT_NE(out.find("P\n"), std::string::npos);
  EXPECT_NE(out.find("relation P(T: time)"), std::string::npos);
  EXPECT_NE(out.find("3+10n"), std::string::npos);
}

TEST(ShellTest, EnumerateWindow) {
  std::string out = RunScript(std::string(kDefineP) + "enumerate P 0 25\n");
  EXPECT_NE(out.find("(3)"), std::string::npos);
  EXPECT_NE(out.find("(13)"), std::string::npos);
  EXPECT_NE(out.find("(23)"), std::string::npos);
  EXPECT_NE(out.find("3 row(s)"), std::string::npos);
}

TEST(ShellTest, AskAndQuery) {
  std::string out = RunScript(std::string(kDefineP) +
                        "ask EXISTS t . P(t)\n"
                        "ask P(4)\n"
                        "query P(t) AND t <= 20\n");
  EXPECT_NE(out.find("true"), std::string::npos);
  EXPECT_NE(out.find("false"), std::string::npos);
  EXPECT_NE(out.find("relation result"), std::string::npos);
}

TEST(ShellTest, DropRemovesRelation) {
  std::string out = RunScript(std::string(kDefineP) + "drop P\nlist\nshow P\n");
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(ShellTest, UnknownCommandReportsError) {
  std::string out = RunScript("frobnicate\n");
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST(ShellTest, CommentsAndBlankLinesIgnored) {
  std::string out = RunScript("# nothing here\n\n   \nlist\n");
  EXPECT_EQ(out.find("error"), std::string::npos);
}

TEST(ShellTest, QuitStopsProcessing) {
  std::string out = RunScript("quit\nfrobnicate\n");
  EXPECT_EQ(out.find("unknown command"), std::string::npos);
}

TEST(ShellTest, StopOnErrorPropagates) {
  Database db;
  std::istringstream in("show missing\nlist\n");
  std::ostringstream out;
  ShellOptions options;
  options.stop_on_error = true;
  Status s = RunShell(in, out, db, options);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(ShellTest, SaveAndLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/shell_roundtrip.itdb";
  RunScript(std::string(kDefineP) + "save " + path + "\n");
  Database db;
  std::string out = RunScript("load " + path + "\nask P(13)\n", &db);
  EXPECT_NE(out.find("true"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ShellTest, CheckAndSatCommands) {
  std::string script = R"(
define relation req(T: time) {
  [10n];
}
define relation ack(T: time) {
  [3+10n];
}
check G(req -> F[0,5](ack))
check G(req -> F[0,2](ack))
sat F[0,3](req)
)";
  std::string out = RunScript(script);
  EXPECT_NE(out.find("PASS"), std::string::npos) << out;
  EXPECT_NE(out.find("FAIL"), std::string::npos) << out;
  EXPECT_NE(out.find("violations"), std::string::npos) << out;
  EXPECT_NE(out.find("relation sat"), std::string::npos) << out;
}

TEST(ShellTest, CoalesceSimplifyWitnessCommands) {
  std::string script = R"(
define relation R(T: time) {
  [6n];
  [3+6n];
  [2+4n];
  [2+4n];
}
coalesce R
simplify R
show R
witness R
)";
  std::string out = RunScript(script);
  // {6n, 3+6n} merge to 3n; the duplicate 2+4n collapses.
  EXPECT_NE(out.find("4 -> 2 tuple(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("0+3n"), std::string::npos) << out;
  // Witness prints some concrete member.
  EXPECT_NE(out.find("("), std::string::npos) << out;
  // Unknown relation errors cleanly.
  std::string err = RunScript("witness nope\n");
  EXPECT_NE(err.find("error:"), std::string::npos);
}

TEST(ShellTest, DefineRejectsDuplicates) {
  std::string out = RunScript(std::string(kDefineP) + kDefineP);
  EXPECT_NE(out.find("already exists"), std::string::npos);
}

}  // namespace
}  // namespace itdb
