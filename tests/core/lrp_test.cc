#include "core/lrp.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace itdb {
namespace {

// Brute-force reference: the elements of {c + k n} in [lo, hi].
std::set<std::int64_t> ReferenceElements(std::int64_t c, std::int64_t k,
                                         std::int64_t lo, std::int64_t hi) {
  std::set<std::int64_t> out;
  for (std::int64_t x = lo; x <= hi; ++x) {
    if (k == 0 ? x == c : ((x - c) % k + k) % k == 0) out.insert(x);
  }
  return out;
}

std::set<std::int64_t> AsSet(const Lrp& l, std::int64_t lo, std::int64_t hi) {
  std::vector<std::int64_t> v = l.ElementsInRange(lo, hi);
  return std::set<std::int64_t>(v.begin(), v.end());
}

TEST(LrpTest, CanonicalForm) {
  Lrp a = Lrp::Make(3, 5);
  EXPECT_EQ(a.offset(), 3);
  EXPECT_EQ(a.period(), 5);
  // Negative period flips; offset reduced mod period.
  EXPECT_EQ(Lrp::Make(3, -5), a);
  EXPECT_EQ(Lrp::Make(8, 5), a);
  EXPECT_EQ(Lrp::Make(-2, 5), a);
  EXPECT_EQ(Lrp::Make(-17, 5), a);
  // Singletons keep their raw value.
  EXPECT_EQ(Lrp::Singleton(-42).offset(), -42);
  EXPECT_EQ(Lrp::Singleton(-42).period(), 0);
}

TEST(LrpTest, PaperExample21) {
  // "The lrp 3 + 5n represents {..., -17, -12, 3 ... wait, -2, 3, 8, 13, ...}"
  Lrp a = Lrp::Make(3, 5);
  for (std::int64_t x : {-17L, -12L, 3L, 8L, 13L, 18L, 23L}) {
    EXPECT_TRUE(a.Contains(x)) << x;
  }
  for (std::int64_t x : {-16L, 0L, 1L, 2L, 4L, 9L}) {
    EXPECT_FALSE(a.Contains(x)) << x;
  }
}

TEST(LrpTest, SingletonContains) {
  Lrp s = Lrp::Singleton(7);
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(6));
  EXPECT_TRUE(s.IsSingleton());
  EXPECT_FALSE(Lrp::Make(0, 2).IsSingleton());
}

TEST(LrpTest, Includes) {
  EXPECT_TRUE(Lrp::Make(1, 3).Includes(Lrp::Make(4, 6)));    // 4+6n in 1+3n
  EXPECT_FALSE(Lrp::Make(1, 3).Includes(Lrp::Make(5, 6)));   // 5 not === 1 mod 3
  EXPECT_TRUE(Lrp::Make(0, 1).Includes(Lrp::Make(17, 23)));  // Z includes all
  EXPECT_TRUE(Lrp::Make(2, 4).Includes(Lrp::Singleton(10)));
  EXPECT_FALSE(Lrp::Make(2, 4).Includes(Lrp::Singleton(11)));
  EXPECT_FALSE(Lrp::Singleton(2).Includes(Lrp::Make(2, 4)));
  EXPECT_TRUE(Lrp::Singleton(2).Includes(Lrp::Singleton(2)));
}

TEST(LrpIntersectTest, PaperExample31) {
  // From Example 3.1:  2n+1  ^  5n  ==  10n+5,   3n-4 ^ 5n+2 == 15n+2.
  Result<std::optional<Lrp>> r1 =
      Lrp::Intersect(Lrp::Make(1, 2), Lrp::Make(0, 5));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r1.value().has_value());
  EXPECT_EQ(*r1.value(), Lrp::Make(5, 10));

  Result<std::optional<Lrp>> r2 =
      Lrp::Intersect(Lrp::Make(-4, 3), Lrp::Make(2, 5));
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r2.value().has_value());
  EXPECT_EQ(*r2.value(), Lrp::Make(2, 15));
}

TEST(LrpIntersectTest, EmptyWhenIncompatibleResidues) {
  // 0+2n and 1+2n never meet.
  Result<std::optional<Lrp>> r =
      Lrp::Intersect(Lrp::Make(0, 2), Lrp::Make(1, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());
  // gcd(4,6)=2 does not divide 1-0=1.
  r = Lrp::Intersect(Lrp::Make(0, 4), Lrp::Make(1, 6));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());
}

TEST(LrpIntersectTest, SingletonCases) {
  Result<std::optional<Lrp>> r =
      Lrp::Intersect(Lrp::Singleton(10), Lrp::Make(2, 4));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().has_value());
  EXPECT_EQ(*r.value(), Lrp::Singleton(10));

  r = Lrp::Intersect(Lrp::Make(2, 4), Lrp::Singleton(11));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());

  r = Lrp::Intersect(Lrp::Singleton(5), Lrp::Singleton(5));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().has_value());
  r = Lrp::Intersect(Lrp::Singleton(5), Lrp::Singleton(6));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());
}

// Property sweep: intersection agrees with brute-force set intersection.
class LrpIntersectPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t>> {
};

TEST_P(LrpIntersectPropertyTest, MatchesSetSemantics) {
  auto [c1, k1, c2, k2] = GetParam();
  Lrp a = Lrp::Make(c1, k1);
  Lrp b = Lrp::Make(c2, k2);
  Result<std::optional<Lrp>> r = Lrp::Intersect(a, b);
  ASSERT_TRUE(r.ok());
  constexpr std::int64_t kLo = -60, kHi = 60;
  std::set<std::int64_t> expect;
  std::set<std::int64_t> sa = ReferenceElements(c1, k1, kLo, kHi);
  std::set<std::int64_t> sb = ReferenceElements(c2, k2, kLo, kHi);
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(expect, expect.begin()));
  std::set<std::int64_t> got =
      r.value().has_value() ? AsSet(*r.value(), kLo, kHi)
                            : std::set<std::int64_t>();
  EXPECT_EQ(got, expect) << "a=" << a.ToString() << " b=" << b.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LrpIntersectPropertyTest,
    ::testing::Combine(::testing::Values(-7, -1, 0, 2, 3, 5),
                       ::testing::Values(0, 1, 2, 3, 4, 6, 10),
                       ::testing::Values(-5, 0, 1, 4),
                       ::testing::Values(0, 1, 2, 5, 6, 9)));

TEST(LrpSubtractTest, DisjointGivesOriginal) {
  Result<LrpDifference> d =
      Lrp::Subtract(Lrp::Make(0, 2), Lrp::Make(1, 2));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.value().parts.size(), 1u);
  EXPECT_EQ(d.value().parts[0], Lrp::Make(0, 2));
  EXPECT_FALSE(d.value().punctured.has_value());
}

TEST(LrpSubtractTest, IncludedGivesEmpty) {
  Result<LrpDifference> d =
      Lrp::Subtract(Lrp::Make(4, 6), Lrp::Make(1, 3));  // 4+6n subset 1+3n
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().IsEmpty());
}

TEST(LrpSubtractTest, ResidueClassesRemoved) {
  // (1+3n) - (4+6n) = 1+6n  (the odd-index residue class).
  Result<LrpDifference> d =
      Lrp::Subtract(Lrp::Make(1, 3), Lrp::Make(4, 6));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.value().parts.size(), 1u);
  EXPECT_EQ(d.value().parts[0], Lrp::Make(1, 6));
}

TEST(LrpSubtractTest, PuncturedPointReported) {
  Result<LrpDifference> d =
      Lrp::Subtract(Lrp::Make(0, 5), Lrp::Singleton(10));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().parts.empty());
  ASSERT_TRUE(d.value().punctured.has_value());
  EXPECT_EQ(d.value().punctured->base, Lrp::Make(0, 5));
  EXPECT_EQ(d.value().punctured->point, 10);
}

TEST(LrpSubtractTest, SingletonMinusAnything) {
  Result<LrpDifference> d =
      Lrp::Subtract(Lrp::Singleton(10), Lrp::Make(0, 5));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().IsEmpty());
  d = Lrp::Subtract(Lrp::Singleton(11), Lrp::Make(0, 5));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.value().parts.size(), 1u);
  EXPECT_EQ(d.value().parts[0], Lrp::Singleton(11));
}

class LrpSubtractPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t>> {
};

TEST_P(LrpSubtractPropertyTest, MatchesSetSemantics) {
  auto [c1, k1, c2, k2] = GetParam();
  Lrp a = Lrp::Make(c1, k1);
  Lrp b = Lrp::Make(c2, k2);
  Result<LrpDifference> r = Lrp::Subtract(a, b);
  ASSERT_TRUE(r.ok());
  constexpr std::int64_t kLo = -60, kHi = 60;
  std::set<std::int64_t> expect;
  std::set<std::int64_t> sa = ReferenceElements(c1, k1, kLo, kHi);
  std::set<std::int64_t> sb = ReferenceElements(c2, k2, kLo, kHi);
  std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                      std::inserter(expect, expect.begin()));
  std::set<std::int64_t> got;
  for (const Lrp& part : r.value().parts) {
    for (std::int64_t x : part.ElementsInRange(kLo, kHi)) got.insert(x);
  }
  if (r.value().punctured.has_value()) {
    for (std::int64_t x :
         r.value().punctured->base.ElementsInRange(kLo, kHi)) {
      if (x != r.value().punctured->point) got.insert(x);
    }
  }
  EXPECT_EQ(got, expect) << "a=" << a.ToString() << " b=" << b.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LrpSubtractPropertyTest,
    ::testing::Combine(::testing::Values(-7, 0, 2, 5),
                       ::testing::Values(0, 1, 2, 3, 6),
                       ::testing::Values(-5, 0, 1, 4, 10),
                       ::testing::Values(0, 1, 2, 6, 12)));

TEST(LrpSubtractTest, PathologicalPeriodRatioBudgeted) {
  Result<LrpDifference> d = Lrp::Subtract(
      Lrp::Make(0, 1), Lrp::Make(0, std::int64_t{1} << 30));
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kResourceExhausted);
}

TEST(LrpSplitTest, Lemma31) {
  // 1+3n split to period 6: {1+6n, 4+6n}.
  Result<std::vector<Lrp>> r = Lrp::Make(1, 3).SplitToPeriod(6);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0], Lrp::Make(1, 6));
  EXPECT_EQ(r.value()[1], Lrp::Make(4, 6));
}

TEST(LrpSplitTest, UnionOfSplitEqualsOriginal) {
  Lrp a = Lrp::Make(2, 4);
  Result<std::vector<Lrp>> r = a.SplitToPeriod(12);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 3u);
  std::set<std::int64_t> whole = AsSet(a, -50, 50);
  std::set<std::int64_t> pieces;
  for (const Lrp& p : r.value()) {
    for (std::int64_t x : p.ElementsInRange(-50, 50)) {
      EXPECT_TRUE(pieces.insert(x).second) << "pieces overlap at " << x;
    }
  }
  EXPECT_EQ(pieces, whole);
}

TEST(LrpSplitTest, InvalidTargets) {
  EXPECT_FALSE(Lrp::Make(1, 3).SplitToPeriod(7).ok());   // Not a multiple.
  EXPECT_FALSE(Lrp::Make(1, 3).SplitToPeriod(0).ok());   // Not positive.
  EXPECT_FALSE(Lrp::Make(1, 3).SplitToPeriod(-6).ok());  // Not positive.
  EXPECT_FALSE(Lrp::Singleton(1).SplitToPeriod(6).ok()); // Singleton.
}

TEST(LrpTest, FirstAtLeast) {
  Lrp a = Lrp::Make(3, 5);
  EXPECT_EQ(a.FirstAtLeast(3), 3);
  EXPECT_EQ(a.FirstAtLeast(4), 8);
  EXPECT_EQ(a.FirstAtLeast(-100), -97);
  EXPECT_EQ(Lrp::Singleton(5).FirstAtLeast(5), 5);
  EXPECT_EQ(Lrp::Singleton(5).FirstAtLeast(6), std::nullopt);
}

TEST(LrpTest, FirstAtLeastNearInt64Max) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  Lrp a = Lrp::Make(0, 10);
  // The next multiple of 10 after kMax - 3 does not fit in int64.
  EXPECT_EQ(a.FirstAtLeast(kMax - 3), std::nullopt);
  // But one that fits is returned exactly (kMax ends in 7, so kMax - 17 is
  // itself a multiple of 10).
  EXPECT_EQ(a.FirstAtLeast(kMax - 17), kMax - 17);
  EXPECT_EQ(a.FirstAtLeast(kMax - 16), kMax - 7);
  // And enumeration near the edge stays safe.
  EXPECT_TRUE(a.ElementsInRange(kMax - 3, kMax).empty());
}

TEST(LrpTest, ElementsInRange) {
  EXPECT_EQ(Lrp::Make(3, 5).ElementsInRange(0, 20),
            (std::vector<std::int64_t>{3, 8, 13, 18}));
  EXPECT_EQ(Lrp::Make(3, 5).ElementsInRange(4, 7),
            (std::vector<std::int64_t>()));
  EXPECT_EQ(Lrp::Singleton(5).ElementsInRange(0, 10),
            (std::vector<std::int64_t>{5}));
  EXPECT_EQ(Lrp::Singleton(5).ElementsInRange(6, 10),
            (std::vector<std::int64_t>()));
}

TEST(LrpTest, ToString) {
  EXPECT_EQ(Lrp::Make(3, 5).ToString(), "3+5n");
  EXPECT_EQ(Lrp::Singleton(-4).ToString(), "-4");
  EXPECT_EQ(Lrp::Make(8, 5).ToString(), "3+5n");  // Canonicalized.
}

}  // namespace
}  // namespace itdb
