#include "core/tuple.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace itdb {
namespace {

using Point = std::vector<std::int64_t>;

std::set<Point> EnumSet(const GeneralizedTuple& t, std::int64_t lo,
                        std::int64_t hi) {
  std::vector<Point> v = t.EnumerateTemporal(lo, hi);
  return std::set<Point>(v.begin(), v.end());
}

TEST(TupleTest, PaperExample22First) {
  // [1, 1+2n] && X2 >= 0  represents  {[1,1], [1,3], [1,5], ...}.
  GeneralizedTuple t({Lrp::Singleton(1), Lrp::Make(1, 2)});
  t.mutable_constraints().AddLowerBound(1, 0);
  std::set<Point> expect;
  for (std::int64_t x = 1; x <= 19; x += 2) expect.insert({1, x});
  EXPECT_EQ(EnumSet(t, 0, 20), expect);
  EXPECT_TRUE(t.ContainsTemporal({1, 1}));
  EXPECT_TRUE(t.ContainsTemporal({1, 2001}));
  EXPECT_FALSE(t.ContainsTemporal({1, -1}));
  EXPECT_FALSE(t.ContainsTemporal({1, 2}));
  EXPECT_FALSE(t.ContainsTemporal({2, 3}));
}

TEST(TupleTest, PaperExample22Second) {
  // [3+2n1, 5+2n2] && X1 = X2 - 2: all pairs (x, x+2) with x odd.
  GeneralizedTuple t({Lrp::Make(3, 2), Lrp::Make(5, 2)});
  t.mutable_constraints().AddDifferenceEquality(0, 1, -2);
  std::set<Point> expect;
  for (std::int64_t x = -19; x <= 17; x += 2) expect.insert({x, x + 2});
  EXPECT_EQ(EnumSet(t, -20, 20), expect);
  EXPECT_TRUE(t.ContainsTemporal({3, 5}));
  EXPECT_TRUE(t.ContainsTemporal({-7, -5}));
  EXPECT_FALSE(t.ContainsTemporal({3, 7}));
  EXPECT_FALSE(t.ContainsTemporal({4, 6}));
}

TEST(TupleTest, FreeExtensionDropsConstraints) {
  GeneralizedTuple t({Lrp::Make(0, 3)});
  t.mutable_constraints().AddLowerBound(0, 100);
  GeneralizedTuple free = t.FreeExtension();
  EXPECT_TRUE(free.ContainsTemporal({0}));
  EXPECT_FALSE(t.ContainsTemporal({0}));
  EXPECT_EQ(free.temporal(), t.temporal());
}

TEST(TupleTest, DataValuesCarried) {
  GeneralizedTuple t({Lrp::Make(0, 2)},
                     {Value("robot1"), Value(std::int64_t{7})});
  EXPECT_EQ(t.data_arity(), 2);
  EXPECT_EQ(t.value(0).AsString(), "robot1");
  EXPECT_EQ(t.value(1).AsInt(), 7);
}

TEST(TupleIntersectTest, PaperExample31) {
  // [2n1+1, 3n2-4] X1 <= X2 && 3 <= X1   ^   [5n3, 5n4+2] X1 = X2 - 2
  //   ==  [10n+5, 15n'+2] with all constraints conjoined.
  GeneralizedTuple a({Lrp::Make(1, 2), Lrp::Make(-4, 3)});
  a.mutable_constraints().AddDifferenceUpperBound(0, 1, 0);
  a.mutable_constraints().AddLowerBound(0, 3);
  GeneralizedTuple b({Lrp::Make(0, 5), Lrp::Make(2, 5)});
  b.mutable_constraints().AddDifferenceEquality(0, 1, -2);

  Result<std::optional<GeneralizedTuple>> r = GeneralizedTuple::Intersect(a, b);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().has_value());
  const GeneralizedTuple& t = *r.value();
  EXPECT_EQ(t.lrp(0), Lrp::Make(5, 10));
  EXPECT_EQ(t.lrp(1), Lrp::Make(2, 15));
  // Semantics: x1 in 5+10n, x2 in 2+15n, x1 = x2 - 2, x1 >= 3.
  // x1 = x2 - 2 with x1 === 5 (mod 10) and x2 === 2 (mod 15): x2 = x1 + 2
  // === 7 (mod 10) and === 2 (mod 15) -> x2 === 17 (mod 30).
  std::set<Point> expect;
  for (std::int64_t x2 = 17; x2 <= 100; x2 += 30) expect.insert({x2 - 2, x2});
  EXPECT_EQ(EnumSet(t, 0, 100), expect);
}

TEST(TupleIntersectTest, EmptyOnDisjointLrps) {
  GeneralizedTuple a({Lrp::Make(0, 2)});
  GeneralizedTuple b({Lrp::Make(1, 2)});
  Result<std::optional<GeneralizedTuple>> r = GeneralizedTuple::Intersect(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());
}

TEST(TupleIntersectTest, EmptyOnContradictoryConstraints) {
  GeneralizedTuple a({Lrp::Make(0, 1)});
  a.mutable_constraints().AddUpperBound(0, 5);
  GeneralizedTuple b({Lrp::Make(0, 1)});
  b.mutable_constraints().AddLowerBound(0, 6);
  Result<std::optional<GeneralizedTuple>> r = GeneralizedTuple::Intersect(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());
}

TEST(TupleIntersectTest, EmptyOnDataMismatch) {
  GeneralizedTuple a({Lrp::Make(0, 1)}, {Value("x")});
  GeneralizedTuple b({Lrp::Make(0, 1)}, {Value("y")});
  Result<std::optional<GeneralizedTuple>> r = GeneralizedTuple::Intersect(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());
}

TEST(TupleIntersectTest, ArityMismatchRejected) {
  GeneralizedTuple a({Lrp::Make(0, 1)});
  GeneralizedTuple b({Lrp::Make(0, 1), Lrp::Make(0, 1)});
  EXPECT_FALSE(GeneralizedTuple::Intersect(a, b).ok());
}

TEST(TupleTest, ToStringMatchesPaperNotation) {
  GeneralizedTuple t({Lrp::Make(2, 2), Lrp::Make(4, 2)});
  t.mutable_constraints().AddDifferenceEquality(0, 1, -2);
  t.mutable_constraints().AddLowerBound(0, -1);
  std::string s = t.ToString();
  EXPECT_NE(s.find("[0+2n, 0+2n]"), std::string::npos) << s;
  EXPECT_NE(s.find("X0"), std::string::npos) << s;
}

TEST(TupleTest, ZeroArityTuple) {
  GeneralizedTuple t(std::vector<Lrp>{});
  EXPECT_EQ(t.EnumerateTemporal(-5, 5).size(), 1u);
  EXPECT_TRUE(t.ContainsTemporal({}));
}

}  // namespace
}  // namespace itdb
