// Property tests: every generalized-algebra operation must agree with plain
// set semantics, using the finite baseline as the oracle.
//
// For window-stable operations (union, intersection, subtraction, selection,
// cross product, join, complement-in-window) we check exact equality of
// materializations.  For projection, whose witnesses may lie outside the
// observation window, we enumerate the input on a wider window and compare
// inside the narrow one.

#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "common/random_relations.h"
#include "core/algebra.h"
#include "finite/finite_relation.h"

namespace itdb {
namespace {

using testing_util::MakeRandomRelation;
using testing_util::RandomRelationConfig;

constexpr std::int64_t kWindow = 12;

FiniteRelation Mat(const GeneralizedRelation& r,
                   std::int64_t window = kWindow) {
  return FiniteRelation::Materialize(r, -window, window);
}

class BinaryOpPropertyTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  GeneralizedRelation A() {
    RandomRelationConfig cfg;
    return MakeRandomRelation(GetParam() * 2 + 1, cfg);
  }
  GeneralizedRelation B() {
    RandomRelationConfig cfg;
    return MakeRandomRelation(GetParam() * 2 + 2, cfg);
  }
};

TEST_P(BinaryOpPropertyTest, UnionMatchesSetSemantics) {
  GeneralizedRelation a = A(), b = B();
  Result<GeneralizedRelation> u = Union(a, b);
  ASSERT_TRUE(u.ok()) << u.status();
  Result<FiniteRelation> expect = FiniteRelation::Union(Mat(a), Mat(b));
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(Mat(u.value()).rows(), expect.value().rows());
}

TEST_P(BinaryOpPropertyTest, IntersectMatchesSetSemantics) {
  GeneralizedRelation a = A(), b = B();
  Result<GeneralizedRelation> i = Intersect(a, b);
  ASSERT_TRUE(i.ok()) << i.status();
  Result<FiniteRelation> expect = FiniteRelation::Intersect(Mat(a), Mat(b));
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(Mat(i.value()).rows(), expect.value().rows());
}

TEST_P(BinaryOpPropertyTest, SubtractMatchesSetSemantics) {
  GeneralizedRelation a = A(), b = B();
  Result<GeneralizedRelation> d = Subtract(a, b);
  ASSERT_TRUE(d.ok()) << d.status();
  Result<FiniteRelation> expect = FiniteRelation::Subtract(Mat(a), Mat(b));
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(Mat(d.value()).rows(), expect.value().rows())
      << "a:\n" << a.ToString() << "b:\n" << b.ToString();
}

TEST_P(BinaryOpPropertyTest, SubtractThenAddBackCoversOriginal) {
  // (a - b) U (a ^ b) == a.
  GeneralizedRelation a = A(), b = B();
  Result<GeneralizedRelation> d = Subtract(a, b);
  ASSERT_TRUE(d.ok());
  Result<GeneralizedRelation> i = Intersect(a, b);
  ASSERT_TRUE(i.ok());
  Result<GeneralizedRelation> u = Union(d.value(), i.value());
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(Mat(u.value()).rows(), Mat(a).rows());
}

TEST_P(BinaryOpPropertyTest, ComplementMatchesSetSemantics) {
  GeneralizedRelation a = A();
  AlgebraOptions options;
  Result<GeneralizedRelation> c = Complement(a, options);
  ASSERT_TRUE(c.ok()) << c.status();
  Result<FiniteRelation> expect = Mat(a).Complement(-kWindow, kWindow, {});
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(Mat(c.value()).rows(), expect.value().rows())
      << "a:\n" << a.ToString();
}

TEST_P(BinaryOpPropertyTest, ComplementIsDisjointAndCovering) {
  GeneralizedRelation a = A();
  Result<GeneralizedRelation> c = Complement(a);
  ASSERT_TRUE(c.ok());
  Result<GeneralizedRelation> overlap = Intersect(a, c.value());
  ASSERT_TRUE(overlap.ok());
  EXPECT_TRUE(IsEmpty(overlap.value()).value());
  Result<GeneralizedRelation> cover = Union(a, c.value());
  ASSERT_TRUE(cover.ok());
  FiniteRelation all = Mat(cover.value());
  EXPECT_EQ(all.size(), (2 * kWindow + 1) * (2 * kWindow + 1));
}

TEST_P(BinaryOpPropertyTest, SelectionMatchesSetSemantics) {
  GeneralizedRelation a = A();
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    TemporalCondition cond{0, 1, op, static_cast<std::int64_t>(GetParam() % 5) - 2};
    Result<GeneralizedRelation> s = SelectTemporal(a, cond);
    ASSERT_TRUE(s.ok()) << s.status();
    Result<FiniteRelation> expect = Mat(a).SelectTemporal(cond);
    ASSERT_TRUE(expect.ok());
    EXPECT_EQ(Mat(s.value()).rows(), expect.value().rows());
  }
}

TEST_P(BinaryOpPropertyTest, ProjectionMatchesSetSemanticsOnInnerWindow) {
  GeneralizedRelation a = A();
  Result<GeneralizedRelation> p = Project(a, {"T1"});
  ASSERT_TRUE(p.ok()) << p.status();
  // Witness margin: bounds <= 6, offsets <= 8, periods <= 6 -> any projected
  // point in [-12, 12] has a witness within +-40.
  std::set<std::int64_t> expect;
  for (const ConcreteRow& row : a.Enumerate(-40, 40)) {
    if (row.temporal[0] >= -kWindow && row.temporal[0] <= kWindow) {
      expect.insert(row.temporal[0]);
    }
  }
  std::set<std::int64_t> got;
  for (const ConcreteRow& row : p.value().Enumerate(-kWindow, kWindow)) {
    got.insert(row.temporal[0]);
  }
  EXPECT_EQ(got, expect) << "a:\n" << a.ToString();
}

TEST_P(BinaryOpPropertyTest, ProjectionPartialAndFullAgree) {
  GeneralizedRelation a = A();
  AlgebraOptions partial;
  partial.partial_normalization = true;
  AlgebraOptions full;
  full.partial_normalization = false;
  for (const std::vector<std::string>& attrs :
       std::vector<std::vector<std::string>>{{"T1"}, {"T2"}, {"T2", "T1"}}) {
    Result<GeneralizedRelation> p = Project(a, attrs, partial);
    Result<GeneralizedRelation> f = Project(a, attrs, full);
    ASSERT_TRUE(p.ok()) << p.status();
    ASSERT_TRUE(f.ok()) << f.status();
    EXPECT_EQ(Mat(p.value()).rows(), Mat(f.value()).rows())
        << "a:\n" << a.ToString();
  }
}

TEST_P(BinaryOpPropertyTest, JoinMatchesSetSemantics) {
  RandomRelationConfig cfg;
  GeneralizedRelation a0 = MakeRandomRelation(GetParam() * 2 + 1, cfg);
  GeneralizedRelation b0 = MakeRandomRelation(GetParam() * 2 + 2, cfg);
  // a: (T, A); b: (T, B) -- join on shared "T".
  Result<GeneralizedRelation> a = Rename(a0, {{"T1", "T"}, {"T2", "A"}});
  ASSERT_TRUE(a.ok());
  Result<GeneralizedRelation> b = Rename(b0, {{"T1", "T"}, {"T2", "B"}});
  ASSERT_TRUE(b.ok());
  Result<GeneralizedRelation> j = Join(a.value(), b.value());
  ASSERT_TRUE(j.ok()) << j.status();
  Result<FiniteRelation> expect =
      FiniteRelation::Join(Mat(a.value()), Mat(b.value()));
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(Mat(j.value()).rows(), expect.value().rows());
}

TEST_P(BinaryOpPropertyTest, CrossProductMatchesSetSemantics) {
  RandomRelationConfig cfg;
  cfg.temporal_arity = 1;
  GeneralizedRelation a0 = MakeRandomRelation(GetParam() * 2 + 1, cfg);
  GeneralizedRelation b0 = MakeRandomRelation(GetParam() * 2 + 2, cfg);
  Result<GeneralizedRelation> a = Rename(a0, {{"T1", "A"}});
  ASSERT_TRUE(a.ok());
  Result<GeneralizedRelation> b = Rename(b0, {{"T1", "B"}});
  ASSERT_TRUE(b.ok());
  Result<GeneralizedRelation> x = CrossProduct(a.value(), b.value());
  ASSERT_TRUE(x.ok()) << x.status();
  Result<FiniteRelation> expect =
      FiniteRelation::CrossProduct(Mat(a.value()), Mat(b.value()));
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(Mat(x.value()).rows(), expect.value().rows());
}

TEST_P(BinaryOpPropertyTest, EmptinessAgreesWithEnumerationOnWideWindow) {
  GeneralizedRelation a = A();
  Result<bool> empty = IsEmpty(a);
  ASSERT_TRUE(empty.ok());
  bool enumerated_empty = a.Enumerate(-60, 60).empty();
  // IsEmpty is exact; an empty wide enumeration of these small-period
  // relations implies true emptiness and vice versa.
  EXPECT_EQ(empty.value(), enumerated_empty) << a.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryOpPropertyTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{40}));

// Relations with data columns exercise the data paths of the same ops.
class DataOpPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DataOpPropertyTest, OpsRespectDataColumns) {
  RandomRelationConfig cfg;
  cfg.data_values = {Value("a"), Value("b")};
  GeneralizedRelation a = MakeRandomRelation(GetParam() * 2 + 1, cfg);
  GeneralizedRelation b = MakeRandomRelation(GetParam() * 2 + 2, cfg);
  Result<GeneralizedRelation> i = Intersect(a, b);
  ASSERT_TRUE(i.ok());
  Result<FiniteRelation> fi = FiniteRelation::Intersect(Mat(a), Mat(b));
  ASSERT_TRUE(fi.ok());
  EXPECT_EQ(Mat(i.value()).rows(), fi.value().rows());

  Result<GeneralizedRelation> d = Subtract(a, b);
  ASSERT_TRUE(d.ok());
  Result<FiniteRelation> fd = FiniteRelation::Subtract(Mat(a), Mat(b));
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(Mat(d.value()).rows(), fd.value().rows());

  Result<GeneralizedRelation> s = SelectData(a, 0, CmpOp::kEq, Value("a"));
  ASSERT_TRUE(s.ok());
  Result<FiniteRelation> fs = Mat(a).SelectData(0, CmpOp::kEq, Value("a"));
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(Mat(s.value()).rows(), fs.value().rows());
}

TEST_P(DataOpPropertyTest, ComplementWithDomainsMatchesSetSemantics) {
  RandomRelationConfig cfg;
  cfg.temporal_arity = 1;
  cfg.data_values = {Value("a"), Value("b")};
  GeneralizedRelation a = MakeRandomRelation(GetParam() + 100, cfg);
  std::vector<std::vector<Value>> domains = {{Value("a"), Value("b")}};
  Result<GeneralizedRelation> c = ComplementWithDataDomains(a, domains);
  ASSERT_TRUE(c.ok()) << c.status();
  Result<FiniteRelation> expect = Mat(a).Complement(-kWindow, kWindow, domains);
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(Mat(c.value()).rows(), expect.value().rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataOpPropertyTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{20}));

}  // namespace
}  // namespace itdb
