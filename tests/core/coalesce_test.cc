#include "core/coalesce.h"

#include <gtest/gtest.h>

#include "common/random_relations.h"
#include "core/algebra.h"

namespace itdb {
namespace {

using testing_util::MakeRandomRelation;
using testing_util::RandomRelationConfig;

GeneralizedRelation Unary(std::initializer_list<Lrp> lrps) {
  GeneralizedRelation r(Schema::Temporal(1));
  for (const Lrp& l : lrps) {
    EXPECT_TRUE(r.AddTuple(GeneralizedTuple({l})).ok());
  }
  return r;
}

TEST(CoalesceTest, FullResidueFamilyCollapsesToZ) {
  GeneralizedRelation r =
      Unary({Lrp::Make(0, 3), Lrp::Make(1, 3), Lrp::Make(2, 3)});
  Result<GeneralizedRelation> c = CoalesceResidues(r);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().size(), 1);
  EXPECT_EQ(c.value().tuples()[0].lrp(0), Lrp::Make(0, 1));
}

TEST(CoalesceTest, PartialFamilyCollapsesToCoarserPeriod) {
  // {1+6n, 4+6n} == 1+3n; the third class 2+6n stays apart.
  GeneralizedRelation r =
      Unary({Lrp::Make(1, 6), Lrp::Make(4, 6), Lrp::Make(2, 6)});
  Result<GeneralizedRelation> c = CoalesceResidues(r);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().size(), 2);
  Result<bool> same = Equivalent(c.value(), r);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same.value());
}

TEST(CoalesceTest, DifferentConstraintsDoNotMerge) {
  GeneralizedRelation r(Schema::Temporal(1));
  GeneralizedTuple a({Lrp::Make(0, 2)});
  a.mutable_constraints().AddLowerBound(0, 0);
  ASSERT_TRUE(r.AddTuple(std::move(a)).ok());
  GeneralizedTuple b({Lrp::Make(1, 2)});
  b.mutable_constraints().AddLowerBound(0, 5);
  ASSERT_TRUE(r.AddTuple(std::move(b)).ok());
  Result<GeneralizedRelation> c = CoalesceResidues(r);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().size(), 2);
}

TEST(CoalesceTest, EqualConstraintsMerge) {
  GeneralizedRelation r(Schema::Temporal(1));
  for (std::int64_t offset : {0, 1}) {
    GeneralizedTuple t({Lrp::Make(offset, 2)});
    t.mutable_constraints().AddLowerBound(0, 3);
    ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  }
  Result<GeneralizedRelation> c = CoalesceResidues(r);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().size(), 1);
  EXPECT_EQ(c.value().tuples()[0].lrp(0), Lrp::Make(0, 1));
  EXPECT_TRUE(Equivalent(c.value(), r).value());
}

TEST(CoalesceTest, MultiColumnCascade) {
  // 2x2 grid of residues mod 2 on both columns collapses to [Z, Z] --
  // requires merging one column, then the other.
  GeneralizedRelation r(Schema::Temporal(2));
  for (std::int64_t a : {0, 1}) {
    for (std::int64_t b : {0, 1}) {
      ASSERT_TRUE(
          r.AddTuple(GeneralizedTuple({Lrp::Make(a, 2), Lrp::Make(b, 2)}))
              .ok());
    }
  }
  Result<GeneralizedRelation> c = CoalesceResidues(r);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().size(), 1);
  EXPECT_EQ(c.value().tuples()[0].lrp(0), Lrp::Make(0, 1));
  EXPECT_EQ(c.value().tuples()[0].lrp(1), Lrp::Make(0, 1));
}

TEST(CoalesceTest, DropsEmptyAndDuplicateTuples) {
  GeneralizedRelation r(Schema::Temporal(1));
  GeneralizedTuple dead({Lrp::Make(0, 2)});
  dead.mutable_constraints().AddUpperBound(0, 0);
  dead.mutable_constraints().AddLowerBound(0, 1);
  ASSERT_TRUE(r.AddTuple(std::move(dead)).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(1, 3)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(1, 3)})).ok());
  Result<GeneralizedRelation> c = CoalesceResidues(r);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().size(), 1);
}

TEST(CoalesceTest, ComplementOutputCompresses) {
  // The complement of a sparse periodic set is emitted as many residue
  // tuples; coalescing collapses the untouched residues.
  GeneralizedRelation r = Unary({Lrp::Make(3, 30)});
  Result<GeneralizedRelation> comp = Complement(r);
  ASSERT_TRUE(comp.ok());
  ASSERT_GE(comp.value().size(), 29);
  Result<GeneralizedRelation> packed = CoalesceResidues(comp.value());
  ASSERT_TRUE(packed.ok());
  EXPECT_LT(packed.value().size(), comp.value().size() / 2);
  EXPECT_TRUE(Equivalent(packed.value(), comp.value()).value());
}

TEST(CoalesceTest, ComplementOptionAppliesThePass) {
  GeneralizedRelation r = Unary({Lrp::Make(3, 30)});
  AlgebraOptions plain;
  Result<GeneralizedRelation> raw = Complement(r, plain);
  ASSERT_TRUE(raw.ok());
  AlgebraOptions with_coalesce;
  with_coalesce.coalesce = true;
  Result<GeneralizedRelation> packed = Complement(r, with_coalesce);
  ASSERT_TRUE(packed.ok());
  EXPECT_LT(packed.value().size(), raw.value().size());
  EXPECT_TRUE(Equivalent(packed.value(), raw.value()).value());
}

class CoalescePropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CoalescePropertyTest, PreservesSemanticsAndNeverGrows) {
  RandomRelationConfig cfg;
  cfg.num_tuples = 6;
  cfg.periods = {1, 2, 3, 4, 6};
  GeneralizedRelation r = MakeRandomRelation(GetParam() + 300, cfg);
  Result<GeneralizedRelation> c = CoalesceResidues(r);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_LE(c.value().size(), r.size());
  EXPECT_EQ(c.value().Enumerate(-25, 25), r.Enumerate(-25, 25))
      << r.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescePropertyTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{40}));

}  // namespace
}  // namespace itdb
