#include "core/normalize.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/lrp.h"
#include "core/tuple.h"

namespace itdb {
namespace {

using Point = std::vector<std::int64_t>;

std::set<Point> EnumSet(const GeneralizedTuple& t, std::int64_t lo,
                        std::int64_t hi) {
  std::vector<Point> v = t.EnumerateTemporal(lo, hi);
  return std::set<Point>(v.begin(), v.end());
}

std::set<Point> EnumSetAll(const std::vector<GeneralizedTuple>& ts,
                           std::int64_t lo, std::int64_t hi) {
  std::set<Point> out;
  for (const GeneralizedTuple& t : ts) {
    std::set<Point> s = EnumSet(t, lo, hi);
    out.insert(s.begin(), s.end());
  }
  return out;
}

// The tuple of Figure 2 / Example 3.2:
//   [4n1+3, 8n2+1]  X1 >= X2 && X1 <= X2+5 && X2 >= 2.
GeneralizedTuple Figure2Tuple() {
  GeneralizedTuple t({Lrp::Make(3, 4), Lrp::Make(1, 8)});
  Dbm& c = t.mutable_constraints();
  c.AddDifferenceUpperBound(1, 0, 0);  // X2 - X1 <= 0, i.e. X1 >= X2.
  c.AddDifferenceUpperBound(0, 1, 5);  // X1 <= X2 + 5.
  c.AddLowerBound(1, 2);               // X2 >= 2.
  return t;
}

TEST(IsNormalFormTest, Detection) {
  std::int64_t k = 0;
  GeneralizedTuple mixed({Lrp::Make(3, 4), Lrp::Make(1, 8)});
  EXPECT_FALSE(IsNormalForm(mixed, &k));

  GeneralizedTuple same({Lrp::Make(3, 8), Lrp::Make(1, 8)});
  EXPECT_TRUE(IsNormalForm(same, &k));
  EXPECT_EQ(k, 8);

  GeneralizedTuple with_const({Lrp::Singleton(5), Lrp::Make(1, 8)});
  EXPECT_TRUE(IsNormalForm(with_const, &k));
  EXPECT_EQ(k, 8);

  GeneralizedTuple all_const({Lrp::Singleton(5), Lrp::Singleton(2)});
  EXPECT_TRUE(IsNormalForm(all_const, &k));
  EXPECT_EQ(k, 1);
}

TEST(CommonPeriodTest, LcmOfPeriods) {
  GeneralizedTuple t({Lrp::Make(3, 4), Lrp::Make(1, 6), Lrp::Singleton(0)});
  Result<std::int64_t> k = CommonPeriod(t);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value(), 12);

  GeneralizedTuple all_const({Lrp::Singleton(5)});
  EXPECT_EQ(CommonPeriod(all_const).value(), 1);
}

TEST(NormalizeTest, PaperExample32SurvivingTuple) {
  // Normalizing Figure 2's tuple to period 8 splits column 1 into
  // {3+8n, 7+8n}; the paper shows the 7+8n combination is contradictory, so
  // exactly one normal-form tuple survives: [8n+3, 8n+1] with
  // X1 = X2 + 2 && X2 >= 9.
  Result<std::vector<GeneralizedTuple>> r = NormalizeTuple(Figure2Tuple());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  const GeneralizedTuple& t = r.value()[0];
  EXPECT_EQ(t.lrp(0), Lrp::Make(3, 8));
  EXPECT_EQ(t.lrp(1), Lrp::Make(1, 8));
  // Semantics preserved: points are (x2+2, x2) for x2 = 9, 17, 25, ...
  std::set<Point> expect;
  for (std::int64_t x2 = 9; x2 <= 48; x2 += 8) expect.insert({x2 + 2, x2});
  EXPECT_EQ(EnumSet(t, 0, 50), expect);
}

TEST(NormalizeTest, PreservesSemantics) {
  GeneralizedTuple t({Lrp::Make(1, 3), Lrp::Make(0, 2)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, 2);
  t.mutable_constraints().AddLowerBound(0, -10);
  t.mutable_constraints().AddUpperBound(1, 10);
  Result<std::vector<GeneralizedTuple>> r = NormalizeTuple(t);
  ASSERT_TRUE(r.ok());
  for (const GeneralizedTuple& nt : r.value()) {
    std::int64_t k = 0;
    EXPECT_TRUE(IsNormalForm(nt, &k));
    EXPECT_EQ(k, 6);
  }
  EXPECT_EQ(EnumSetAll(r.value(), -20, 20), EnumSet(t, -20, 20));
}

TEST(NormalizeTest, ConstantColumnsStayConstant) {
  GeneralizedTuple t({Lrp::Singleton(7), Lrp::Make(0, 3)});
  Result<std::vector<GeneralizedTuple>> r = NormalizeTuple(t);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].lrp(0), Lrp::Singleton(7));
}

TEST(NormalizeTest, ExplicitPeriodSplitsCorrectCount) {
  GeneralizedTuple t({Lrp::Make(0, 2), Lrp::Make(0, 3)});
  Result<std::vector<GeneralizedTuple>> r = NormalizeTupleToPeriod(t, 12);
  ASSERT_TRUE(r.ok());
  // 12/2 * 12/3 = 6 * 4 = 24 combinations, all feasible (no constraints).
  EXPECT_EQ(r.value().size(), 24u);
  EXPECT_EQ(EnumSetAll(r.value(), -15, 15), EnumSet(t, -15, 15));
}

TEST(NormalizeTest, BudgetEnforced) {
  GeneralizedTuple t({Lrp::Make(0, 2), Lrp::Make(0, 3), Lrp::Make(0, 5)});
  NormalizeOptions options;
  options.max_split_product = 10;  // 15 * 10 * 6 = 900 > 10.
  Result<std::vector<GeneralizedTuple>> r = NormalizeTuple(t, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(NormalizeTest, InvalidPeriodRejected) {
  GeneralizedTuple t({Lrp::Make(0, 2)});
  EXPECT_FALSE(NormalizeTupleToPeriod(t, 0).ok());
  EXPECT_FALSE(NormalizeTupleToPeriod(t, 3).ok());  // Not a multiple of 2.
}

TEST(NSpaceTest, RequiresNormalForm) {
  GeneralizedTuple mixed({Lrp::Make(3, 4), Lrp::Make(1, 8)});
  EXPECT_FALSE(NSpaceTuple::Build(mixed).ok());
}

TEST(NSpaceTest, FeasibilityIsLatticeExact) {
  // X1 in 0+8n, X2 in 1+8n with X1 = X2 + 3: real-feasible (e.g. x1=4.0,
  // x2=1.0 -- wait, that IS on the grid of reals) but lattice-infeasible:
  // x1 - x2 === -1 (mod 8), never 3.
  GeneralizedTuple t({Lrp::Make(0, 8), Lrp::Make(1, 8)});
  t.mutable_constraints().AddDifferenceEquality(0, 1, 3);
  Result<NSpaceTuple> ns = NSpaceTuple::Build(t);
  ASSERT_TRUE(ns.ok());
  EXPECT_FALSE(ns.value().feasible());
  EXPECT_TRUE(t.EnumerateTemporal(-50, 50).empty());
}

TEST(NSpaceTest, FeasibleWhenResidueMatches) {
  GeneralizedTuple t({Lrp::Make(4, 8), Lrp::Make(1, 8)});
  t.mutable_constraints().AddDifferenceEquality(0, 1, 3);
  Result<NSpaceTuple> ns = NSpaceTuple::Build(t);
  ASSERT_TRUE(ns.ok());
  EXPECT_TRUE(ns.value().feasible());
}

TEST(NSpaceTest, ConstantColumnsFoldIntoBounds) {
  // X1 = 5 (constant), X2 in 0+3n, X2 >= X1  =>  X2 >= 6 on the lattice.
  GeneralizedTuple t({Lrp::Singleton(5), Lrp::Make(0, 3)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, 0);  // X1 <= X2.
  Result<NSpaceTuple> ns = NSpaceTuple::Build(t);
  ASSERT_TRUE(ns.ok());
  ASSERT_TRUE(ns.value().feasible());
  ASSERT_TRUE(ns.value().EliminateColumn(0).ok());
  Result<GeneralizedTuple> rebuilt = ns.value().Rebuild({1}, {});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value().lrp(0), Lrp::Make(0, 3));
  // First admissible lattice point at or above 5 is 6.
  std::set<Point> expect;
  for (std::int64_t x = 6; x <= 30; x += 3) expect.insert({x});
  EXPECT_EQ(EnumSet(rebuilt.value(), -30, 30), expect);
}

TEST(NSpaceTest, ConstantConstantContradictionDetected) {
  GeneralizedTuple t({Lrp::Singleton(5), Lrp::Singleton(3)});
  t.mutable_constraints().AddDifferenceUpperBound(1, 0, -5);  // X2 <= X1 - 5.
  Result<NSpaceTuple> ns = NSpaceTuple::Build(t);
  ASSERT_TRUE(ns.ok());
  EXPECT_FALSE(ns.value().feasible());
}

TEST(NSpaceTest, RebuildRoundTripsSemantics) {
  GeneralizedTuple t({Lrp::Make(3, 8), Lrp::Make(1, 8)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, 4);
  t.mutable_constraints().AddLowerBound(1, -7);
  Result<NSpaceTuple> ns = NSpaceTuple::Build(t);
  ASSERT_TRUE(ns.ok());
  Result<GeneralizedTuple> rebuilt = ns.value().RebuildAll({});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(EnumSet(rebuilt.value(), -40, 40), EnumSet(t, -40, 40));
}

TEST(NSpaceTest, RebuildReordersColumns) {
  GeneralizedTuple t({Lrp::Make(3, 8), Lrp::Make(1, 8)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, -1);  // X0 < X1.
  Result<NSpaceTuple> ns = NSpaceTuple::Build(t);
  ASSERT_TRUE(ns.ok());
  Result<GeneralizedTuple> swapped = ns.value().Rebuild({1, 0}, {});
  ASSERT_TRUE(swapped.ok());
  // Now column 0 is the old X1, so the constraint flips direction.
  for (const Point& p : swapped.value().EnumerateTemporal(-20, 20)) {
    EXPECT_GT(p[0], p[1]);
  }
  EXPECT_FALSE(swapped.value().EnumerateTemporal(-20, 20).empty());
}

}  // namespace
}  // namespace itdb
