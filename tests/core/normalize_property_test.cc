// Randomized properties of Theorem 3.2 normalization:
//   * the normal-form set represents exactly the original extension;
//   * every output tuple is in normal form with the tuple's lcm period;
//   * the free extensions of the outputs are pairwise disjoint (the cross
//     product of Lemma 3.1 splits partitions the original lattice);
//   * every output is feasible (step 4 pruned the contradictions).

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random_relations.h"
#include "core/normalize.h"

namespace itdb {
namespace {

using testing_util::MakeRandomRelation;
using testing_util::RandomRelationConfig;

class NormalizePropertyTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(NormalizePropertyTest, NormalFormInvariants) {
  RandomRelationConfig cfg;
  cfg.num_tuples = 4;
  cfg.periods = {0, 1, 2, 3, 4, 6};
  GeneralizedRelation r = MakeRandomRelation(GetParam() + 4200, cfg);
  for (const GeneralizedTuple& t : r.tuples()) {
    Result<std::vector<GeneralizedTuple>> normal = NormalizeTuple(t);
    ASSERT_TRUE(normal.ok()) << normal.status() << " for " << t.ToString();
    Result<std::int64_t> k = CommonPeriod(t);
    ASSERT_TRUE(k.ok());

    // (1) Same extension on a window.
    std::set<std::vector<std::int64_t>> original;
    for (const std::vector<std::int64_t>& p : t.EnumerateTemporal(-20, 20)) {
      original.insert(p);
    }
    std::set<std::vector<std::int64_t>> rebuilt;
    for (const GeneralizedTuple& nt : normal.value()) {
      // (2) Normal form with the right period.
      std::int64_t period = 0;
      EXPECT_TRUE(IsNormalForm(nt, &period)) << nt.ToString();
      bool all_const = true;
      for (const Lrp& l : nt.temporal()) {
        if (l.period() != 0) all_const = false;
      }
      if (!all_const) {
        EXPECT_EQ(period, k.value()) << nt.ToString();
      }
      // (4) Feasible.
      Result<NSpaceTuple> ns = NSpaceTuple::Build(nt);
      ASSERT_TRUE(ns.ok());
      EXPECT_TRUE(ns.value().feasible()) << nt.ToString();
      for (const std::vector<std::int64_t>& p :
           nt.EnumerateTemporal(-20, 20)) {
        // (3) Disjoint free extensions: no point seen twice.
        EXPECT_TRUE(rebuilt.insert(p).second)
            << "duplicate point in normal form of " << t.ToString();
      }
    }
    EXPECT_EQ(rebuilt, original) << t.ToString();
  }
}

TEST_P(NormalizePropertyTest, ExplicitPeriodMultiplesAlsoWork) {
  RandomRelationConfig cfg;
  cfg.num_tuples = 2;
  cfg.periods = {1, 2, 3};
  GeneralizedRelation r = MakeRandomRelation(GetParam() + 7700, cfg);
  for (const GeneralizedTuple& t : r.tuples()) {
    Result<std::int64_t> k = CommonPeriod(t);
    ASSERT_TRUE(k.ok());
    // Normalize to twice the natural period: still exact.
    Result<std::vector<GeneralizedTuple>> normal =
        NormalizeTupleToPeriod(t, k.value() * 2);
    ASSERT_TRUE(normal.ok()) << normal.status();
    std::set<std::vector<std::int64_t>> original;
    for (const std::vector<std::int64_t>& p : t.EnumerateTemporal(-15, 15)) {
      original.insert(p);
    }
    std::set<std::vector<std::int64_t>> rebuilt;
    for (const GeneralizedTuple& nt : normal.value()) {
      for (const std::vector<std::int64_t>& p :
           nt.EnumerateTemporal(-15, 15)) {
        rebuilt.insert(p);
      }
    }
    EXPECT_EQ(rebuilt, original) << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizePropertyTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{30}));

}  // namespace
}  // namespace itdb
