// Tests for the algebra APIs beyond the paper's core operations: column
// shifting (successor function), witness extraction, and symbolic
// subset/equivalence decisions.

#include <set>

#include <gtest/gtest.h>

#include "common/random_relations.h"
#include "core/algebra.h"

namespace itdb {
namespace {

using testing_util::MakeRandomRelation;
using testing_util::RandomRelationConfig;

GeneralizedRelation Unary(std::initializer_list<Lrp> lrps) {
  GeneralizedRelation r(Schema::Temporal(1));
  for (const Lrp& l : lrps) {
    EXPECT_TRUE(r.AddTuple(GeneralizedTuple({l})).ok());
  }
  return r;
}

TEST(ShiftTemporalColumnTest, ShiftsLrpAndConstraints) {
  GeneralizedRelation r(Schema::Temporal(2));
  GeneralizedTuple t({Lrp::Make(0, 5), Lrp::Make(1, 5)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, -1);  // X0 < X1.
  t.mutable_constraints().AddLowerBound(0, 0);
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  Result<GeneralizedRelation> shifted = ShiftTemporalColumn(r, 0, 7);
  ASSERT_TRUE(shifted.ok());
  // Every (x, y) of the original becomes (x + 7, y); compare on windows
  // aligned so the shift maps one exactly onto the other.
  std::set<std::vector<std::int64_t>> expect;
  for (const ConcreteRow& row : r.Enumerate(-40, 40)) {
    if (row.temporal[0] <= 33) {
      expect.insert({row.temporal[0] + 7, row.temporal[1]});
    }
  }
  std::set<std::vector<std::int64_t>> got;
  for (const ConcreteRow& row : shifted.value().Enumerate(-40, 40)) {
    if (row.temporal[0] >= -33) got.insert(row.temporal);
  }
  EXPECT_EQ(got, expect);
}

TEST(ShiftTemporalColumnTest, NegativeShiftRoundTrips) {
  GeneralizedRelation r(Schema::Temporal(1));
  GeneralizedTuple t({Lrp::Make(2, 6)});
  t.mutable_constraints().AddLowerBound(0, 2);
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  Result<GeneralizedRelation> there = ShiftTemporalColumn(r, 0, 13);
  ASSERT_TRUE(there.ok());
  Result<GeneralizedRelation> back = ShiftTemporalColumn(there.value(), 0, -13);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Enumerate(-30, 30), r.Enumerate(-30, 30));
}

TEST(ShiftTemporalColumnTest, BadColumnRejected) {
  GeneralizedRelation r(Schema::Temporal(1));
  EXPECT_FALSE(ShiftTemporalColumn(r, 1, 5).ok());
  EXPECT_FALSE(ShiftTemporalColumn(r, -1, 5).ok());
}

TEST(FindWitnessTest, WitnessOfConstrainedTuple) {
  GeneralizedTuple t({Lrp::Make(3, 8), Lrp::Make(1, 8)});
  t.mutable_constraints().AddDifferenceEquality(0, 1, 2);
  t.mutable_constraints().AddLowerBound(1, 5);
  Result<std::optional<std::vector<std::int64_t>>> w = FindTemporalWitness(t);
  ASSERT_TRUE(w.ok()) << w.status();
  ASSERT_TRUE(w.value().has_value());
  EXPECT_TRUE(t.ContainsTemporal(*w.value()));
}

TEST(FindWitnessTest, NoWitnessForLatticeEmptyTuple) {
  GeneralizedTuple t({Lrp::Make(0, 8), Lrp::Make(1, 8)});
  t.mutable_constraints().AddDifferenceEquality(0, 1, 3);
  Result<std::optional<std::vector<std::int64_t>>> w = FindTemporalWitness(t);
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_FALSE(w.value().has_value());
}

TEST(FindWitnessTest, UnboundedTupleStillYieldsAPoint) {
  GeneralizedTuple t({Lrp::Make(0, 1), Lrp::Make(0, 1)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, -3);  // X0 <= X1 - 3.
  Result<std::optional<std::vector<std::int64_t>>> w = FindTemporalWitness(t);
  ASSERT_TRUE(w.ok()) << w.status();
  ASSERT_TRUE(w.value().has_value());
  EXPECT_TRUE(t.ContainsTemporal(*w.value()));
}

class FindWitnessPropertyTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(FindWitnessPropertyTest, WitnessIffNonEmpty) {
  RandomRelationConfig cfg;
  GeneralizedRelation r = MakeRandomRelation(GetParam() + 500, cfg);
  for (const GeneralizedTuple& t : r.tuples()) {
    Result<bool> empty = TupleIsEmpty(t);
    ASSERT_TRUE(empty.ok());
    Result<std::optional<std::vector<std::int64_t>>> w =
        FindTemporalWitness(t);
    ASSERT_TRUE(w.ok()) << w.status() << " for " << t.ToString();
    EXPECT_EQ(!empty.value(), w.value().has_value()) << t.ToString();
    if (w.value().has_value()) {
      EXPECT_TRUE(t.ContainsTemporal(*w.value())) << t.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FindWitnessPropertyTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{25}));

TEST(FindWitnessTest, RelationWitnessCarriesData) {
  Schema schema({"T"}, {"who"}, {DataType::kString});
  GeneralizedRelation r(schema);
  GeneralizedTuple dead({Lrp::Make(0, 4)}, {Value("a")});
  dead.mutable_constraints().AddUpperBound(0, 0);
  dead.mutable_constraints().AddLowerBound(0, 1);
  ASSERT_TRUE(r.AddTuple(std::move(dead)).ok());
  GeneralizedTuple live({Lrp::Make(1, 4)}, {Value("b")});
  ASSERT_TRUE(r.AddTuple(std::move(live)).ok());
  Result<std::optional<ConcreteRow>> w = FindWitness(r);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w.value().has_value());
  EXPECT_EQ(w.value()->data[0].AsString(), "b");
  EXPECT_TRUE(r.Contains(*w.value()));
}

TEST(ZeroArityTest, EmptinessAndComplement) {
  // Zero-arity relations encode booleans: nonempty == true.
  GeneralizedRelation truth((Schema()));
  ASSERT_TRUE(truth.AddTuple(GeneralizedTuple(std::vector<Lrp>{})).ok());
  EXPECT_FALSE(IsEmpty(truth).value());
  GeneralizedRelation falsity((Schema()));
  EXPECT_TRUE(IsEmpty(falsity).value());
  // Complement flips the boolean.
  Result<GeneralizedRelation> not_true = Complement(truth);
  ASSERT_TRUE(not_true.ok());
  EXPECT_TRUE(IsEmpty(not_true.value()).value());
  Result<GeneralizedRelation> not_false = Complement(falsity);
  ASSERT_TRUE(not_false.ok());
  EXPECT_FALSE(IsEmpty(not_false.value()).value());
  // And double complement round-trips.
  Result<GeneralizedRelation> again = Complement(not_true.value());
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(IsEmpty(again.value()).value());
}

TEST(ZeroArityTest, ContradictoryConstraintsDetected) {
  // A zero-variable DBM can only become infeasible through the degenerate
  // ground-contradiction path; emptiness must still be exact.
  GeneralizedTuple t(std::vector<Lrp>{});
  t.mutable_constraints().AddAtomic(AtomicConstraint{kZeroVar, kZeroVar, -1});
  Result<bool> empty = TupleIsEmpty(t);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value());
  EXPECT_FALSE(t.ContainsTemporal({}));
}

TEST(SubsetTest, ResidueContainment) {
  GeneralizedRelation evens = Unary({Lrp::Make(0, 2)});
  GeneralizedRelation mult4 = Unary({Lrp::Make(0, 4)});
  EXPECT_TRUE(Subset(mult4, evens).value());
  EXPECT_FALSE(Subset(evens, mult4).value());
}

TEST(SubsetTest, EmptyIsSubsetOfEverything) {
  GeneralizedRelation empty(Schema::Temporal(1));
  GeneralizedRelation evens = Unary({Lrp::Make(0, 2)});
  EXPECT_TRUE(Subset(empty, evens).value());
  EXPECT_TRUE(Subset(empty, empty).value());
  EXPECT_FALSE(Subset(evens, empty).value());
}

TEST(EquivalentTest, DifferentRepresentationsOfOneSet) {
  // Z as one tuple vs. as residues mod 3.
  GeneralizedRelation whole = Unary({Lrp::Make(0, 1)});
  GeneralizedRelation split =
      Unary({Lrp::Make(0, 3), Lrp::Make(1, 3), Lrp::Make(2, 3)});
  EXPECT_TRUE(Equivalent(whole, split).value());
  GeneralizedRelation missing = Unary({Lrp::Make(0, 3), Lrp::Make(1, 3)});
  EXPECT_FALSE(Equivalent(whole, missing).value());
  EXPECT_TRUE(Subset(missing, whole).value());
}

class IntersectionIndexTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(IntersectionIndexTest, IndexedPathMatchesPairScan) {
  // Uniform-period relations (the Appendix A.3 shape): both strategies
  // must produce the same set.
  RandomRelationConfig cfg;
  cfg.periods = {6};
  cfg.num_tuples = 6;
  GeneralizedRelation a = MakeRandomRelation(GetParam() * 2 + 1500, cfg);
  GeneralizedRelation b = MakeRandomRelation(GetParam() * 2 + 1501, cfg);
  AlgebraOptions plain;
  AlgebraOptions indexed;
  indexed.use_intersection_index = true;
  Result<GeneralizedRelation> slow = Intersect(a, b, plain);
  Result<GeneralizedRelation> fast = Intersect(a, b, indexed);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_EQ(fast.value().Enumerate(-20, 20), slow.value().Enumerate(-20, 20));
}

TEST_P(IntersectionIndexTest, MixedPeriodsFallBackCorrectly) {
  RandomRelationConfig cfg;
  cfg.periods = {2, 3, 6};
  GeneralizedRelation a = MakeRandomRelation(GetParam() * 2 + 1700, cfg);
  GeneralizedRelation b = MakeRandomRelation(GetParam() * 2 + 1701, cfg);
  AlgebraOptions indexed;
  indexed.use_intersection_index = true;
  Result<GeneralizedRelation> fast = Intersect(a, b, indexed);
  Result<GeneralizedRelation> slow = Intersect(a, b);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast.value().Enumerate(-20, 20), slow.value().Enumerate(-20, 20));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectionIndexTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{20}));

class EquivalenceChecksEnumerationTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EquivalenceChecksEnumerationTest, SubsetAgreesWithWindowSemantics) {
  RandomRelationConfig cfg;
  GeneralizedRelation a = MakeRandomRelation(GetParam() * 2 + 900, cfg);
  GeneralizedRelation b = MakeRandomRelation(GetParam() * 2 + 901, cfg);
  Result<bool> subset = Subset(a, b);
  ASSERT_TRUE(subset.ok()) << subset.status();
  // Symbolic subset implies window containment; and window violation
  // implies symbolic non-subset.  (The converse needs an unbounded window,
  // so only this direction is asserted.)
  bool window_contained = true;
  for (const ConcreteRow& row : a.Enumerate(-30, 30)) {
    if (!b.Contains(row)) {
      window_contained = false;
      break;
    }
  }
  if (subset.value()) {
    EXPECT_TRUE(window_contained);
  }
  if (!window_contained) {
    EXPECT_FALSE(subset.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceChecksEnumerationTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{25}));

}  // namespace
}  // namespace itdb
