#include "util/arena.h"

#include <cstdint>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

namespace itdb {
namespace {

bool IsAligned(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, alignof(std::max_align_t)}) {
    for (int i = 0; i < 16; ++i) {
      // Odd sizes force the bump pointer off alignment between requests.
      void* p = arena.Allocate(3, align);
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(IsAligned(p, align)) << "align " << align;
    }
  }
  std::int64_t* a = arena.AllocateArray<std::int64_t>(7);
  EXPECT_TRUE(IsAligned(a, alignof(std::int64_t)));
  // Over-aligned requests take the dedicated-block path and still satisfy
  // the alignment.
  void* wide = arena.Allocate(64, 64);
  EXPECT_TRUE(IsAligned(wide, 64));
}

TEST(ArenaTest, ZeroSizeIsValidAndDistinctCallsAreUsable) {
  Arena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
  std::int64_t* a = arena.AllocateArray<std::int64_t>(4);
  std::int64_t* b = arena.AllocateArray<std::int64_t>(4);
  for (int i = 0; i < 4; ++i) {
    a[i] = i;
    b[i] = 100 + i;
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], 100 + i);
  }
}

TEST(ArenaTest, ResetRewindsAndReusesChunks) {
  Arena arena;
  (void)arena.AllocateArray<std::byte>(1000);
  void* first = arena.Allocate(8);
  Arena::Stats before = arena.stats();
  EXPECT_GT(before.bytes_allocated, 0);
  EXPECT_GT(before.chunks, 0);

  arena.Reset();
  Arena::Stats cleared = arena.stats();
  EXPECT_EQ(cleared.bytes_allocated, 0);
  EXPECT_EQ(cleared.allocations, 0);
  // Chunks survive the reset so steady-state reuse does not re-reserve.
  EXPECT_EQ(cleared.chunks, before.chunks);
  EXPECT_EQ(cleared.bytes_reserved, before.bytes_reserved);

  (void)arena.AllocateArray<std::byte>(1000);
  void* again = arena.Allocate(8);
  EXPECT_EQ(again, first);  // Same bump position: the chunk was rewound.
  EXPECT_EQ(arena.stats().bytes_reserved, before.bytes_reserved);
}

TEST(ArenaTest, LargeAllocationFallback) {
  Arena arena;
  // Far beyond the chunk cap: must come from a dedicated block, leaving the
  // bump chunks (and their reuse) untouched.
  std::size_t big = Arena::kMaxChunkBytes + 1024;
  std::byte* p = static_cast<std::byte*>(arena.Allocate(big));
  ASSERT_NE(p, nullptr);
  p[0] = std::byte{1};
  p[big - 1] = std::byte{2};  // The whole range is addressable.
  EXPECT_EQ(arena.stats().large_blocks, 1);

  void* small = arena.Allocate(16);
  EXPECT_NE(small, nullptr);
  EXPECT_EQ(arena.stats().large_blocks, 1);

  // Reset releases dedicated blocks (they would otherwise pin peak memory).
  arena.Reset();
  EXPECT_EQ(arena.stats().large_blocks, 0);
}

TEST(ArenaTest, GlobalStatsAccumulate) {
  Arena::GlobalStats before = Arena::TotalStats();
  {
    Arena arena;
    (void)arena.Allocate(512);
    arena.Reset();
  }
  Arena::GlobalStats after = Arena::TotalStats();
  EXPECT_GE(after.bytes_allocated, before.bytes_allocated + 512);
  EXPECT_GE(after.allocations, before.allocations + 1);
  EXPECT_GE(after.resets, before.resets + 1);
}

TEST(ArenaTest, ThreadLocalScratchIsPerThread) {
  Arena* main_arena = &Arena::ThreadLocalScratch();
  EXPECT_EQ(main_arena, &Arena::ThreadLocalScratch());
  Arena* other_arena = nullptr;
  std::thread t([&] { other_arena = &Arena::ThreadLocalScratch(); });
  t.join();
  EXPECT_NE(other_arena, nullptr);
  EXPECT_NE(other_arena, main_arena);
}

TEST(ArenaScopeTest, ScopeResetsOnEntryAndExit) {
  Arena arena;
  (void)arena.Allocate(64);
  {
    ArenaScope scope(arena);
    EXPECT_EQ(arena.stats().bytes_allocated, 0);  // Entry reset.
    (void)arena.Allocate(32);
    EXPECT_EQ(arena.stats().bytes_allocated, 32);
  }
  EXPECT_EQ(arena.stats().bytes_allocated, 0);  // Exit reset.
}

}  // namespace
}  // namespace itdb
