#include "core/relation.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/schema.h"

namespace itdb {
namespace {

// Table 1 of the paper: the activities of robots.
//   [2+2n1,  4+2n2 ]  X1 = X2 - 2 && X1 >= -1 ; robot1
//   [6+10n1, 7+10n2]  X1 = X2 - 1 && X1 >= 10 ; robot2
//   [10n1,   3+10n2]  X1 = X2 - 3             ; robot2
GeneralizedRelation RobotsRelation() {
  Schema schema({"From", "To"}, {"Robot"}, {DataType::kString});
  GeneralizedRelation r(schema);
  {
    GeneralizedTuple t({Lrp::Make(2, 2), Lrp::Make(4, 2)}, {Value("robot1")});
    t.mutable_constraints().AddDifferenceEquality(0, 1, -2);
    t.mutable_constraints().AddLowerBound(0, -1);
    EXPECT_TRUE(r.AddTuple(std::move(t)).ok());
  }
  {
    GeneralizedTuple t({Lrp::Make(6, 10), Lrp::Make(7, 10)},
                       {Value("robot2")});
    t.mutable_constraints().AddDifferenceEquality(0, 1, -1);
    t.mutable_constraints().AddLowerBound(0, 10);
    EXPECT_TRUE(r.AddTuple(std::move(t)).ok());
  }
  {
    GeneralizedTuple t({Lrp::Make(0, 10), Lrp::Make(3, 10)},
                       {Value("robot2")});
    t.mutable_constraints().AddDifferenceEquality(0, 1, -3);
    EXPECT_TRUE(r.AddTuple(std::move(t)).ok());
  }
  return r;
}

TEST(SchemaTest, Lookups) {
  Schema s({"T1", "T2"}, {"who", "what"}, {DataType::kString, DataType::kInt});
  EXPECT_EQ(s.temporal_arity(), 2);
  EXPECT_EQ(s.data_arity(), 2);
  EXPECT_EQ(s.FindTemporal("T2"), 1);
  EXPECT_EQ(s.FindTemporal("who"), std::nullopt);
  EXPECT_EQ(s.FindData("what"), 1);
  EXPECT_EQ(s.FindData("T1"), std::nullopt);
  EXPECT_EQ(s.data_type(0), DataType::kString);
}

TEST(SchemaTest, TemporalFactory) {
  Schema s = Schema::Temporal(3);
  EXPECT_EQ(s.temporal_names(),
            (std::vector<std::string>{"T1", "T2", "T3"}));
  EXPECT_EQ(s.data_arity(), 0);
}

TEST(SchemaTest, ToString) {
  Schema s({"T"}, {"who"}, {DataType::kString});
  EXPECT_EQ(s.ToString(), "(T: time, who: string)");
}

TEST(RelationTest, AddTupleChecksArity) {
  GeneralizedRelation r(Schema::Temporal(2));
  EXPECT_TRUE(
      r.AddTuple(GeneralizedTuple({Lrp::Make(0, 1), Lrp::Make(0, 1)})).ok());
  EXPECT_FALSE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 1)})).ok());
  GeneralizedTuple with_data({Lrp::Make(0, 1), Lrp::Make(0, 1)},
                             {Value("x")});
  EXPECT_FALSE(r.AddTuple(std::move(with_data)).ok());
}

TEST(RelationTest, Table1Membership) {
  GeneralizedRelation r = RobotsRelation();
  // robot1 performs during [2, 4], [4, 6], [0, 2], ... (x1 even, x1 >= -1
  // hence x1 >= 0, x2 = x1 + 2).
  EXPECT_TRUE(r.Contains({{2, 4}, {Value("robot1")}}));
  EXPECT_TRUE(r.Contains({{0, 2}, {Value("robot1")}}));
  EXPECT_TRUE(r.Contains({{100, 102}, {Value("robot1")}}));
  EXPECT_FALSE(r.Contains({{-2, 0}, {Value("robot1")}}));  // X1 >= -1.
  EXPECT_FALSE(r.Contains({{2, 6}, {Value("robot1")}}));   // Not X2 - 2.
  EXPECT_FALSE(r.Contains({{2, 4}, {Value("robot3")}}));
  // robot2, first pattern: (16, 17), (26, 27), ... with X1 >= 10.
  EXPECT_TRUE(r.Contains({{16, 17}, {Value("robot2")}}));
  EXPECT_FALSE(r.Contains({{6, 7}, {Value("robot2")}}));  // X1 >= 10 fails.
  // robot2, second pattern: (0, 3), (10, 13), (-10, -7), ...
  EXPECT_TRUE(r.Contains({{0, 3}, {Value("robot2")}}));
  EXPECT_TRUE(r.Contains({{-10, -7}, {Value("robot2")}}));
}

TEST(RelationTest, Table1Enumerate) {
  GeneralizedRelation r = RobotsRelation();
  std::vector<ConcreteRow> rows = r.Enumerate(0, 20);
  // robot1: x1 in {0,2,...,18}, x2 = x1+2 <= 20: 10 rows.
  // robot2 first: (16,17) only in [0,20] with x1 >= 10: 1 row.
  // robot2 second: (0,3), (10,13), (20,23->out): 2 rows.
  EXPECT_EQ(rows.size(), 10u + 1u + 2u);
  // Sorted and unique.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1], rows[i]);
  }
}

TEST(RelationTest, EnumerateDeduplicatesOverlappingTuples) {
  GeneralizedRelation r(Schema::Temporal(1));
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 4)})).ok());
  std::vector<ConcreteRow> rows = r.Enumerate(0, 8);
  EXPECT_EQ(rows.size(), 5u);  // 0 2 4 6 8, not double-counted.
}

TEST(ConcreteRowTest, OrderingAndPrinting) {
  ConcreteRow a{{1, 2}, {Value("x")}};
  ConcreteRow b{{1, 3}, {Value("x")}};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.ToString(), "(1, 2, \"x\")");
}

TEST(RelationTest, ToStringContainsTuples) {
  GeneralizedRelation r = RobotsRelation();
  std::string s = r.ToString();
  EXPECT_NE(s.find("0+2n"), std::string::npos) << s;
  EXPECT_NE(s.find("robot2"), std::string::npos) << s;
}

}  // namespace
}  // namespace itdb
