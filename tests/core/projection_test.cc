// Projection tests, centered on the paper's Figure 2 / Example 3.2: the
// case where naive real-arithmetic variable elimination is unsound and
// normalization fixes it (Theorem 3.1).

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/algebra.h"
#include "core/relation.h"

namespace itdb {
namespace {

using Point = std::vector<std::int64_t>;

std::set<std::int64_t> UnaryEnum(const GeneralizedRelation& r, std::int64_t lo,
                                 std::int64_t hi) {
  std::set<std::int64_t> out;
  for (const ConcreteRow& row : r.Enumerate(lo, hi)) {
    out.insert(row.temporal[0]);
  }
  return out;
}

GeneralizedRelation Figure2Relation() {
  GeneralizedRelation r(Schema::Temporal(2));
  GeneralizedTuple t({Lrp::Make(3, 4), Lrp::Make(1, 8)});
  Dbm& c = t.mutable_constraints();
  c.AddDifferenceUpperBound(1, 0, 0);  // X1 >= X2.
  c.AddDifferenceUpperBound(0, 1, 5);  // X1 <= X2 + 5.
  c.AddLowerBound(1, 2);               // X2 >= 2.
  EXPECT_TRUE(r.AddTuple(std::move(t)).ok());
  return r;
}

TEST(ProjectionTest, PaperExample32ProjectionOnX1) {
  // The paper's worked result: Pi_{X1} = [8n+3] with X1 >= 11, i.e. the set
  // {11, 19, 27, ...}.  The naive real projection would wrongly include
  // 3, 7, 15, 23, ...
  GeneralizedRelation r = Figure2Relation();
  Result<GeneralizedRelation> p = Project(r, {"T1"});
  ASSERT_TRUE(p.ok());
  std::set<std::int64_t> got = UnaryEnum(p.value(), -10, 60);
  std::set<std::int64_t> expect;
  for (std::int64_t x = 11; x <= 60; x += 8) expect.insert(x);
  EXPECT_EQ(got, expect);
  // The real-projection artifacts of Figure 2 are absent.
  for (std::int64_t bogus : {3, 7, 15, 23}) {
    EXPECT_EQ(got.count(bogus), 0u) << bogus;
  }
}

TEST(ProjectionTest, PaperExample32ProjectionIsSingleTupleWithBound) {
  GeneralizedRelation r = Figure2Relation();
  Result<GeneralizedRelation> p = Project(r, {"T1"});
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p.value().size(), 1);
  const GeneralizedTuple& t = p.value().tuples()[0];
  EXPECT_EQ(t.lrp(0), Lrp::Make(3, 8));
  EXPECT_FALSE(t.ContainsTemporal({3}));
  EXPECT_TRUE(t.ContainsTemporal({11}));
  EXPECT_TRUE(t.ContainsTemporal({19}));
}

TEST(ProjectionTest, ProjectionMatchesEnumerationSemantics) {
  // Enumerate-then-project == project-then-enumerate on a window wide enough
  // to contain all projection witnesses.
  GeneralizedRelation r(Schema::Temporal(2));
  GeneralizedTuple t({Lrp::Make(1, 3), Lrp::Make(0, 2)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, 1);
  t.mutable_constraints().AddDifferenceUpperBound(1, 0, 4);
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  Result<GeneralizedRelation> p = Project(r, {"T1"});
  ASSERT_TRUE(p.ok());
  std::set<std::int64_t> direct;
  for (const ConcreteRow& row : r.Enumerate(-40, 40)) {
    if (row.temporal[0] >= -20 && row.temporal[0] <= 20) {
      direct.insert(row.temporal[0]);
    }
  }
  EXPECT_EQ(UnaryEnum(p.value(), -20, 20), direct);
}

TEST(ProjectionTest, DropsDataColumns) {
  Schema schema({"T1"}, {"who"}, {DataType::kString});
  GeneralizedRelation r(schema);
  GeneralizedTuple t({Lrp::Make(0, 5)}, {Value("robot")});
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  Result<GeneralizedRelation> p = Project(r, {"T1"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().schema().data_arity(), 0);
  EXPECT_EQ(p.value().schema().temporal_arity(), 1);
}

TEST(ProjectionTest, KeepsDataDropsTemporal) {
  Schema schema({"T1", "T2"}, {"who"}, {DataType::kString});
  GeneralizedRelation r(schema);
  GeneralizedTuple t({Lrp::Make(0, 5), Lrp::Make(1, 5)}, {Value("robot")});
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  Result<GeneralizedRelation> p = Project(r, {"T2", "who"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().schema().temporal_names(),
            std::vector<std::string>{"T2"});
  EXPECT_EQ(p.value().schema().data_names(), std::vector<std::string>{"who"});
  ASSERT_EQ(p.value().size(), 1);
  EXPECT_EQ(p.value().tuples()[0].lrp(0), Lrp::Make(1, 5));
  EXPECT_EQ(p.value().tuples()[0].value(0).AsString(), "robot");
}

TEST(ProjectionTest, ReordersTemporalColumns) {
  GeneralizedRelation r(Schema::Temporal(2));
  GeneralizedTuple t({Lrp::Make(0, 2), Lrp::Make(1, 2)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, -1);  // X1 < X2.
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  Result<GeneralizedRelation> p = Project(r, {"T2", "T1"});
  ASSERT_TRUE(p.ok());
  for (const ConcreteRow& row : p.value().Enumerate(-10, 10)) {
    EXPECT_GT(row.temporal[0], row.temporal[1]);
  }
  EXPECT_FALSE(p.value().Enumerate(-10, 10).empty());
}

TEST(ProjectionTest, UnknownAttributeFails) {
  GeneralizedRelation r = Figure2Relation();
  Result<GeneralizedRelation> p = Project(r, {"nope"});
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST(ProjectionTest, InfeasibleTuplesVanish) {
  GeneralizedRelation r(Schema::Temporal(2));
  GeneralizedTuple t({Lrp::Make(0, 8), Lrp::Make(1, 8)});
  t.mutable_constraints().AddDifferenceEquality(0, 1, 3);  // Lattice-empty.
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  Result<GeneralizedRelation> p = Project(r, {"T1"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().size(), 0);
}

TEST(ProjectionTest, PartialAndFullNormalizationAgree) {
  // A dropped column disconnected from a large-period pair: the partial
  // path avoids their split; both paths must yield the same set.
  GeneralizedRelation r(Schema({"T1", "T2", "T3"}, {}, {}));
  GeneralizedTuple t({Lrp::Make(2, 6), Lrp::Make(1, 10), Lrp::Make(0, 4)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, 3);
  t.mutable_constraints().AddLowerBound(2, -8);
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  AlgebraOptions partial;
  partial.partial_normalization = true;
  AlgebraOptions full;
  full.partial_normalization = false;
  for (const std::vector<std::string>& attrs :
       std::vector<std::vector<std::string>>{
           {"T1", "T2"}, {"T3"}, {"T2"}, {"T2", "T1", "T3"}, {}}) {
    Result<GeneralizedRelation> a = Project(r, attrs, partial);
    Result<GeneralizedRelation> b = Project(r, attrs, full);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a.value().Enumerate(-30, 30), b.value().Enumerate(-30, 30));
  }
}

TEST(ProjectionTest, PartialNormalizationAvoidsUnrelatedSplit) {
  // Dropping the lone period-4 column must not multiply the coprime pair:
  // the result should be a single tuple, not lcm-many.
  GeneralizedRelation r(Schema({"T1", "T2", "T3"}, {}, {}));
  GeneralizedTuple t({Lrp::Make(0, 35), Lrp::Make(0, 33), Lrp::Make(1, 4)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, 5);
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  AlgebraOptions partial;
  partial.partial_normalization = true;
  Result<GeneralizedRelation> p = Project(r, {"T1", "T2"}, partial);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p.value().size(), 1);
  EXPECT_EQ(p.value().tuples()[0].lrp(0), Lrp::Make(0, 35));
  EXPECT_EQ(p.value().tuples()[0].lrp(1), Lrp::Make(0, 33));
}

TEST(ProjectionTest, EmptyAttributeListYieldsZeroArity) {
  GeneralizedRelation r = Figure2Relation();
  Result<GeneralizedRelation> p = Project(r, {});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().schema().temporal_arity(), 0);
  // Nonempty input: the zero-arity projection contains the empty point.
  EXPECT_EQ(p.value().size(), 1);
}

}  // namespace
}  // namespace itdb
