#include "core/dbm.h"

#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace itdb {
namespace {

TEST(AtomicConstraintTest, Negation) {
  // not(X0 - X1 <= 3)  ==  X1 - X0 <= -4.
  AtomicConstraint a{0, 1, 3};
  AtomicConstraint n = a.Negated();
  EXPECT_EQ(n.lhs, 1);
  EXPECT_EQ(n.rhs, 0);
  EXPECT_EQ(n.bound, -4);
  // Double negation is the strict complement boundary again.
  AtomicConstraint nn = n.Negated();
  EXPECT_EQ(nn.lhs, 0);
  EXPECT_EQ(nn.rhs, 1);
  EXPECT_EQ(nn.bound, 3);
}

TEST(AtomicConstraintTest, ToString) {
  EXPECT_EQ((AtomicConstraint{0, 1, 3}.ToString()), "X0 - X1 <= 3");
  EXPECT_EQ((AtomicConstraint{0, kZeroVar, 3}.ToString()), "X0 <= 3");
  EXPECT_EQ((AtomicConstraint{kZeroVar, 1, -3}.ToString()), "X1 >= 3");
}

TEST(DbmTest, UnconstrainedIsFeasible) {
  Dbm d(3);
  ASSERT_TRUE(d.Close().ok());
  EXPECT_TRUE(d.feasible());
  EXPECT_TRUE(d.IsSatisfiedBy({100, -100, 0}));
}

TEST(DbmTest, SimpleChainIsFeasible) {
  Dbm d(2);
  d.AddDifferenceUpperBound(0, 1, -1);  // X0 <= X1 - 1
  d.AddUpperBound(1, 10);
  d.AddLowerBound(0, 5);
  ASSERT_TRUE(d.Close().ok());
  EXPECT_TRUE(d.feasible());
  EXPECT_TRUE(d.IsSatisfiedBy({5, 10}));
  EXPECT_FALSE(d.IsSatisfiedBy({10, 10}));
  EXPECT_FALSE(d.IsSatisfiedBy({4, 10}));
}

TEST(DbmTest, NegativeCycleIsInfeasible) {
  Dbm d(2);
  d.AddDifferenceUpperBound(0, 1, -1);  // X0 < X1
  d.AddDifferenceUpperBound(1, 0, -1);  // X1 < X0
  ASSERT_TRUE(d.Close().ok());
  EXPECT_FALSE(d.feasible());
}

TEST(DbmTest, BoundsInfeasible) {
  Dbm d(1);
  d.AddUpperBound(0, 3);
  d.AddLowerBound(0, 4);
  ASSERT_TRUE(d.Close().ok());
  EXPECT_FALSE(d.feasible());
}

TEST(DbmTest, EqualityPropagatesThroughClosure) {
  Dbm d(3);
  d.AddDifferenceEquality(0, 1, 2);  // X0 = X1 + 2
  d.AddDifferenceEquality(1, 2, 3);  // X1 = X2 + 3
  ASSERT_TRUE(d.Close().ok());
  EXPECT_TRUE(d.feasible());
  // Derived: X0 = X2 + 5.
  EXPECT_EQ(d.bound_node(1, 3), 5);
  EXPECT_EQ(d.bound_node(3, 1), -5);
}

TEST(DbmTest, ClosureTightensTransitively) {
  Dbm d(3);
  d.AddDifferenceUpperBound(0, 1, 2);
  d.AddDifferenceUpperBound(1, 2, 3);
  ASSERT_TRUE(d.Close().ok());
  EXPECT_EQ(d.bound_node(1, 3), 5);  // X0 - X2 <= 5 derived.
}

TEST(DbmTest, EliminateVariableKeepsProjection) {
  // X0 <= X1 - 1, X1 <= X2 - 1  =>  after eliminating X1: X0 <= X2 - 2.
  Dbm d(3);
  d.AddDifferenceUpperBound(0, 1, -1);
  d.AddDifferenceUpperBound(1, 2, -1);
  ASSERT_TRUE(d.Close().ok());
  Dbm p = d.EliminateVariable(1);
  EXPECT_EQ(p.num_vars(), 2);
  EXPECT_TRUE(p.feasible());
  // In the reduced system the old X2 is now variable 1.
  EXPECT_EQ(p.bound_node(1, 2), -2);
}

TEST(DbmTest, EliminationDropsUnrelatedConstraintsCorrectly) {
  Dbm d(2);
  d.AddUpperBound(0, 7);
  d.AddEquality(1, 3);
  ASSERT_TRUE(d.Close().ok());
  Dbm p = d.EliminateVariable(1);
  EXPECT_EQ(p.num_vars(), 1);
  EXPECT_EQ(p.bound_node(1, 0), 7);
  EXPECT_EQ(p.bound_node(0, 1), Dbm::kInf);
}

TEST(DbmTest, AppendVariables) {
  Dbm d(1);
  d.AddEquality(0, 5);
  Dbm e = d.AppendVariables(2);
  EXPECT_EQ(e.num_vars(), 3);
  ASSERT_TRUE(e.Close().ok());
  EXPECT_TRUE(e.feasible());
  EXPECT_TRUE(e.IsSatisfiedBy({5, 123, -9}));
  EXPECT_FALSE(e.IsSatisfiedBy({4, 0, 0}));
}

TEST(DbmTest, MapVariables) {
  Dbm d(2);
  d.AddDifferenceUpperBound(0, 1, -2);  // X0 <= X1 - 2
  // Map old 0 -> new 2, old 1 -> new 0, in a 3-var system.
  Dbm e = d.MapVariables({2, 0}, 3);
  ASSERT_TRUE(e.Close().ok());
  EXPECT_TRUE(e.IsSatisfiedBy({10, 999, 8}));   // X2 <= X0 - 2
  EXPECT_FALSE(e.IsSatisfiedBy({10, 999, 9}));
}

TEST(DbmTest, Conjoin) {
  Dbm a(1);
  a.AddUpperBound(0, 10);
  Dbm b(1);
  b.AddLowerBound(0, 5);
  Dbm c = Dbm::Conjoin(a, b);
  ASSERT_TRUE(c.Close().ok());
  EXPECT_TRUE(c.IsSatisfiedBy({7}));
  EXPECT_FALSE(c.IsSatisfiedBy({11}));
  EXPECT_FALSE(c.IsSatisfiedBy({4}));
}

TEST(DbmTest, ImpliesBasics) {
  Dbm narrow(1);
  narrow.AddUpperBound(0, 5);
  narrow.AddLowerBound(0, 0);
  ASSERT_TRUE(narrow.Close().ok());
  Dbm wide(1);
  wide.AddUpperBound(0, 10);
  EXPECT_TRUE(narrow.Implies(wide));
  Dbm other(1);
  other.AddLowerBound(0, 3);
  EXPECT_FALSE(narrow.Implies(other));
}

TEST(DbmTest, MinimalAtomicsDropRedundant) {
  Dbm d(3);
  d.AddDifferenceUpperBound(0, 1, 1);
  d.AddDifferenceUpperBound(1, 2, 1);
  d.AddDifferenceUpperBound(0, 2, 5);  // Implied by the two above (<= 2).
  ASSERT_TRUE(d.Close().ok());
  std::vector<AtomicConstraint> min = d.MinimalAtomics();
  // Reconstructed system must be equivalent to the closure.
  Dbm rebuilt(3);
  for (const AtomicConstraint& a : min) rebuilt.AddAtomic(a);
  ASSERT_TRUE(rebuilt.Close().ok());
  EXPECT_TRUE(rebuilt == d);
  // And it must not contain the slack X0 - X2 bound as a separate atom
  // beyond the implied value.
  EXPECT_LE(min.size(), 2u);
}

TEST(DbmTest, MinimalAtomicsHandleEqualities) {
  Dbm d(2);
  d.AddDifferenceEquality(0, 1, 0);  // X0 == X1
  d.AddEquality(0, 4);               // X0 == 4  =>  X1 == 4 too.
  ASSERT_TRUE(d.Close().ok());
  std::vector<AtomicConstraint> min = d.MinimalAtomics();
  Dbm rebuilt(2);
  for (const AtomicConstraint& a : min) rebuilt.AddAtomic(a);
  ASSERT_TRUE(rebuilt.Close().ok());
  EXPECT_TRUE(rebuilt == d);
}

TEST(DbmTest, PaperReductionExample) {
  // Appendix A footnote: X1 <= X2 + 4 && X1 <= X2 - 5  ==  X1 <= X2 - 5.
  Dbm d(2);
  d.AddDifferenceUpperBound(0, 1, 4);
  d.AddDifferenceUpperBound(0, 1, -5);
  ASSERT_TRUE(d.Close().ok());
  EXPECT_EQ(d.bound_node(1, 2), -5);
  std::vector<AtomicConstraint> min = d.MinimalAtomics();
  ASSERT_EQ(min.size(), 1u);
  EXPECT_EQ(min[0], (AtomicConstraint{0, 1, -5}));
}

TEST(DbmTest, OverflowDetected) {
  Dbm d(2);
  constexpr std::int64_t kHuge = std::int64_t{1} << 61;
  d.AddDifferenceUpperBound(0, 1, kHuge - 1);
  d.AddDifferenceUpperBound(1, 0, kHuge - 1);
  d.AddUpperBound(0, kHuge - 1);
  Status s = d.Close();
  // Either closure succeeds within range or reports overflow; bounds at the
  // limit must not wrap silently.
  if (!s.ok()) {
    EXPECT_EQ(s.code(), StatusCode::kOverflow);
  }
}

TEST(DbmTest, ZeroVariableSystem) {
  Dbm d(0);
  ASSERT_TRUE(d.Close().ok());
  EXPECT_TRUE(d.feasible());
  EXPECT_TRUE(d.IsSatisfiedBy({}));
}

// ---------------------------------------------------------------------------
// TightenAndClose: the O(n^2) incremental closure must agree with
// AddAtomic + Close on every outcome, and must leave the matrix untouched
// when it punts (kFallbackNeeded).

TEST(TightenAndCloseTest, AgreesWithFullClosureOnRandomSystems) {
  std::mt19937 rng(1234);
  std::uniform_int_distribution<std::int64_t> bound_pick(-20, 20);
  std::uniform_int_distribution<int> var_pick(0, 2);
  for (int trial = 0; trial < 200; ++trial) {
    Dbm d(3);
    for (int c = 0; c < 3; ++c) {
      int i = var_pick(rng);
      int j = var_pick(rng);
      if (i != j) d.AddDifferenceUpperBound(i, j, bound_pick(rng));
      d.AddUpperBound(var_pick(rng), bound_pick(rng));
    }
    if (!d.Close().ok() || !d.feasible()) continue;
    AtomicConstraint extra{var_pick(rng), var_pick(rng), bound_pick(rng)};
    Dbm incremental = d;
    Dbm::TightenResult tr = incremental.TightenAndClose(extra);
    Dbm naive = d;
    naive.AddAtomic(extra);
    Status s = naive.Close();
    ASSERT_TRUE(s.ok()) << "trial " << trial;  // Bounds are tiny.
    switch (tr) {
      case Dbm::TightenResult::kClosed:
        EXPECT_TRUE(naive.feasible()) << "trial " << trial;
        EXPECT_EQ(incremental, naive) << "trial " << trial;
        break;
      case Dbm::TightenResult::kInfeasible:
        EXPECT_FALSE(naive.feasible()) << "trial " << trial;
        EXPECT_FALSE(incremental.feasible()) << "trial " << trial;
        break;
      case Dbm::TightenResult::kFallbackNeeded:
        // Only degenerate i == i contradictions can punt at these magnitudes.
        EXPECT_EQ(extra.lhs, extra.rhs) << "trial " << trial;
        break;
    }
  }
}

TEST(TightenAndCloseTest, VacuousAndContradictorySelfEdges) {
  Dbm d(2);
  d.AddUpperBound(0, 5);
  ASSERT_TRUE(d.Close().ok());
  Dbm copy = d;
  // x0 - x0 <= 3 is vacuous: no change, still closed.
  EXPECT_EQ(copy.TightenAndClose({0, 0, 3}), Dbm::TightenResult::kClosed);
  EXPECT_EQ(copy, d);
  // x0 - x0 <= -1 is the AddAtomic contradiction encoding: punt untouched.
  EXPECT_EQ(copy.TightenAndClose({0, 0, -1}),
            Dbm::TightenResult::kFallbackNeeded);
  EXPECT_EQ(copy, d);
}

TEST(TightenAndCloseTest, FallbackOnOverflowAdjacentBoundsLeavesMatrixAlone) {
  // An improving path through bounds near the overflow guard: the
  // incremental step must refuse (the naive closure's overflow check is
  // global) and must not leave a half-updated matrix behind.
  const std::int64_t kHuge = (std::int64_t{1} << 61) - 1;
  Dbm d(2);
  d.AddUpperBound(0, kHuge);
  ASSERT_TRUE(d.Close().ok());
  ASSERT_TRUE(d.feasible());
  Dbm copy = d;
  // x1 - x0 <= kHuge makes the closure derive x1 <= 2 * kHuge > kBoundLimit.
  EXPECT_EQ(copy.TightenAndClose({1, 0, kHuge}),
            Dbm::TightenResult::kFallbackNeeded);
  EXPECT_EQ(copy, d);
  Dbm naive = d;
  naive.AddAtomic({1, 0, kHuge});
  EXPECT_FALSE(naive.Close().ok());  // The full path overflows too.
}

TEST(TightenAndCloseTest, DetectsInfeasibilityIncrementally) {
  Dbm d(2);
  d.AddDifferenceUpperBound(0, 1, -5);  // x0 - x1 <= -5.
  ASSERT_TRUE(d.Close().ok());
  EXPECT_EQ(d.TightenAndClose({1, 0, 4}),  // x1 - x0 <= 4: cycle -1.
            Dbm::TightenResult::kInfeasible);
  EXPECT_FALSE(d.feasible());
}

TEST(AppendVariablesClosedTest, StaysClosedAndMatchesAppendPlusClose) {
  Dbm d(2);
  d.AddDifferenceUpperBound(0, 1, 3);
  d.AddLowerBound(0, -7);
  ASSERT_TRUE(d.Close().ok());
  Dbm fast = d.AppendVariablesClosed(2);
  Dbm naive = d.AppendVariables(2);
  ASSERT_TRUE(naive.Close().ok());
  EXPECT_TRUE(naive.feasible());
  EXPECT_EQ(fast, naive);
}

// Property sweep: closure preserves the solution set on a grid.
class DbmClosurePropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(DbmClosurePropertyTest, ClosurePreservesSolutions) {
  auto [a, b, c] = GetParam();
  Dbm raw(2);
  raw.AddDifferenceUpperBound(0, 1, a);
  raw.AddUpperBound(0, b);
  raw.AddLowerBound(1, c);
  Dbm closed = raw;
  ASSERT_TRUE(closed.Close().ok());
  for (std::int64_t x = -6; x <= 6; ++x) {
    for (std::int64_t y = -6; y <= 6; ++y) {
      EXPECT_EQ(raw.IsSatisfiedBy({x, y}), closed.IsSatisfiedBy({x, y}))
          << "x=" << x << " y=" << y << " a=" << a << " b=" << b << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DbmClosurePropertyTest,
                         ::testing::Combine(::testing::Values(-3, 0, 2, 5),
                                            ::testing::Values(-4, 0, 3),
                                            ::testing::Values(-5, 0, 2)));

}  // namespace
}  // namespace itdb
