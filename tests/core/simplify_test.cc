#include "core/simplify.h"

#include <gtest/gtest.h>

#include "core/algebra.h"

namespace itdb {
namespace {

TEST(TupleSubsumesTest, LrpInclusionAndConstraintImplication) {
  GeneralizedTuple big({Lrp::Make(0, 2)});
  GeneralizedTuple small({Lrp::Make(0, 4)});
  EXPECT_TRUE(TupleSubsumes(big, small).value());
  EXPECT_FALSE(TupleSubsumes(small, big).value());
}

TEST(TupleSubsumesTest, ConstraintsMatter) {
  GeneralizedTuple big({Lrp::Make(0, 2)});
  big.mutable_constraints().AddLowerBound(0, 0);
  GeneralizedTuple small({Lrp::Make(0, 4)});
  small.mutable_constraints().AddLowerBound(0, 10);
  EXPECT_TRUE(TupleSubsumes(big, small).value());
  GeneralizedTuple unconstrained({Lrp::Make(0, 4)});
  EXPECT_FALSE(TupleSubsumes(big, unconstrained).value());
}

TEST(TupleSubsumesTest, DataMustMatch) {
  GeneralizedTuple big({Lrp::Make(0, 1)}, {Value("a")});
  GeneralizedTuple small({Lrp::Make(0, 2)}, {Value("b")});
  EXPECT_FALSE(TupleSubsumes(big, small).value());
}

TEST(TupleSubsumesTest, EmptyTupleSubsumedByAnything) {
  GeneralizedTuple big({Lrp::Make(0, 2)});
  GeneralizedTuple empty({Lrp::Make(1, 2)});
  empty.mutable_constraints().AddUpperBound(0, 0);
  empty.mutable_constraints().AddLowerBound(0, 1);
  EXPECT_TRUE(TupleSubsumes(big, empty).value());
}

TEST(SimplifyTest, DropsEmptyTuples) {
  GeneralizedRelation r(Schema::Temporal(2));
  GeneralizedTuple dead({Lrp::Make(0, 8), Lrp::Make(1, 8)});
  dead.mutable_constraints().AddDifferenceEquality(0, 1, 3);  // Lattice-empty.
  ASSERT_TRUE(r.AddTuple(std::move(dead)).ok());
  ASSERT_TRUE(
      r.AddTuple(GeneralizedTuple({Lrp::Make(0, 2), Lrp::Make(0, 2)})).ok());
  Result<GeneralizedRelation> s = Simplify(r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().size(), 1);
}

TEST(SimplifyTest, DropsSubsumedTuples) {
  GeneralizedRelation r(Schema::Temporal(1));
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 4)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(2, 4)})).ok());
  Result<GeneralizedRelation> s = Simplify(r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().size(), 1);
  EXPECT_EQ(s.value().tuples()[0].lrp(0), Lrp::Make(0, 2));
}

TEST(SimplifyTest, KeepsExactlyOneOfDuplicates) {
  GeneralizedRelation r(Schema::Temporal(1));
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(1, 3)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(1, 3)})).ok());
  Result<GeneralizedRelation> s = Simplify(r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().size(), 1);
}

TEST(SimplifyTest, PreservesSemantics) {
  GeneralizedRelation r(Schema::Temporal(1));
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 6)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(1, 6)})).ok());
  Result<GeneralizedRelation> s = Simplify(r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().Enumerate(-30, 30), r.Enumerate(-30, 30));
  EXPECT_LT(s.value().size(), r.size());
}

TEST(SimplifyTest, ViaAlgebraOptionsFlag) {
  GeneralizedRelation a(Schema::Temporal(1));
  ASSERT_TRUE(a.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)})).ok());
  GeneralizedRelation b(Schema::Temporal(1));
  ASSERT_TRUE(b.AddTuple(GeneralizedTuple({Lrp::Make(0, 4)})).ok());
  AlgebraOptions options;
  options.simplify = true;
  Result<GeneralizedRelation> u = Union(a, b, options);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().size(), 1);  // 0+4n subsumed by 0+2n.
}

}  // namespace
}  // namespace itdb
