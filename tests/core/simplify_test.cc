#include "core/simplify.h"

#include <gtest/gtest.h>

#include "core/algebra.h"
#include "core/index.h"

namespace itdb {
namespace {

TEST(TupleSubsumesTest, LrpInclusionAndConstraintImplication) {
  GeneralizedTuple big({Lrp::Make(0, 2)});
  GeneralizedTuple small({Lrp::Make(0, 4)});
  EXPECT_TRUE(TupleSubsumes(big, small).value());
  EXPECT_FALSE(TupleSubsumes(small, big).value());
}

TEST(TupleSubsumesTest, ConstraintsMatter) {
  GeneralizedTuple big({Lrp::Make(0, 2)});
  big.mutable_constraints().AddLowerBound(0, 0);
  GeneralizedTuple small({Lrp::Make(0, 4)});
  small.mutable_constraints().AddLowerBound(0, 10);
  EXPECT_TRUE(TupleSubsumes(big, small).value());
  GeneralizedTuple unconstrained({Lrp::Make(0, 4)});
  EXPECT_FALSE(TupleSubsumes(big, unconstrained).value());
}

TEST(TupleSubsumesTest, DataMustMatch) {
  GeneralizedTuple big({Lrp::Make(0, 1)}, {Value("a")});
  GeneralizedTuple small({Lrp::Make(0, 2)}, {Value("b")});
  EXPECT_FALSE(TupleSubsumes(big, small).value());
}

TEST(TupleSubsumesTest, EmptyTupleSubsumedByAnything) {
  GeneralizedTuple big({Lrp::Make(0, 2)});
  GeneralizedTuple empty({Lrp::Make(1, 2)});
  empty.mutable_constraints().AddUpperBound(0, 0);
  empty.mutable_constraints().AddLowerBound(0, 1);
  EXPECT_TRUE(TupleSubsumes(big, empty).value());
}

TEST(SimplifyTest, DropsEmptyTuples) {
  GeneralizedRelation r(Schema::Temporal(2));
  GeneralizedTuple dead({Lrp::Make(0, 8), Lrp::Make(1, 8)});
  dead.mutable_constraints().AddDifferenceEquality(0, 1, 3);  // Lattice-empty.
  ASSERT_TRUE(r.AddTuple(std::move(dead)).ok());
  ASSERT_TRUE(
      r.AddTuple(GeneralizedTuple({Lrp::Make(0, 2), Lrp::Make(0, 2)})).ok());
  Result<GeneralizedRelation> s = Simplify(r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().size(), 1);
}

TEST(SimplifyTest, DropsSubsumedTuples) {
  GeneralizedRelation r(Schema::Temporal(1));
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 4)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(2, 4)})).ok());
  Result<GeneralizedRelation> s = Simplify(r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().size(), 1);
  EXPECT_EQ(s.value().tuples()[0].lrp(0), Lrp::Make(0, 2));
}

TEST(SimplifyTest, KeepsExactlyOneOfDuplicates) {
  GeneralizedRelation r(Schema::Temporal(1));
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(1, 3)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(1, 3)})).ok());
  Result<GeneralizedRelation> s = Simplify(r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().size(), 1);
}

TEST(SimplifyTest, PreservesSemantics) {
  GeneralizedRelation r(Schema::Temporal(1));
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 6)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(1, 6)})).ok());
  Result<GeneralizedRelation> s = Simplify(r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().Enumerate(-30, 30), r.Enumerate(-30, 30));
  EXPECT_LT(s.value().size(), r.size());
}

TEST(SimplifyTest, ViaAlgebraOptionsFlag) {
  GeneralizedRelation a(Schema::Temporal(1));
  ASSERT_TRUE(a.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)})).ok());
  GeneralizedRelation b(Schema::Temporal(1));
  ASSERT_TRUE(b.AddTuple(GeneralizedTuple({Lrp::Make(0, 4)})).ok());
  AlgebraOptions options;
  options.simplify = true;
  Result<GeneralizedRelation> u = Union(a, b, options);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().size(), 1);  // 0+4n subsumed by 0+2n.
}

// ---------------------------------------------------------------------------
// TupleSubsumes on lrp-period mismatches: Includes is exact on residue
// classes, so coprime or shifted periods never subsume even when their
// extensions overlap heavily.

TEST(TupleSubsumesTest, PeriodMismatchesDoNotSubsume) {
  // 0+2n vs 0+3n: neither residue class contains the other.
  GeneralizedTuple evens({Lrp::Make(0, 2)});
  GeneralizedTuple thirds({Lrp::Make(0, 3)});
  EXPECT_FALSE(TupleSubsumes(evens, thirds).value());
  EXPECT_FALSE(TupleSubsumes(thirds, evens).value());
  // 0+2n vs 1+4n: same period family, wrong coset.
  GeneralizedTuple odd4({Lrp::Make(1, 4)});
  EXPECT_FALSE(TupleSubsumes(evens, odd4).value());
  // 0+2n does include the singleton {6} but not {7}.
  EXPECT_TRUE(TupleSubsumes(evens, GeneralizedTuple({Lrp::Singleton(6)}))
                  .value());
  EXPECT_FALSE(TupleSubsumes(evens, GeneralizedTuple({Lrp::Singleton(7)}))
                   .value());
}

TEST(TupleSubsumesTest, PuncturedComplementIsSoundNotComplete) {
  // The complement of {4} within 0+2n comes back as bound-constrained
  // pieces (T <= 2, T >= 6).  Each piece IS a subset of the full lrp, and
  // the subsumption test proves it (lrp equal, constraints imply "true").
  GeneralizedTuple full({Lrp::Make(0, 2)});
  GeneralizedTuple below({Lrp::Make(0, 2)});
  below.mutable_constraints().AddUpperBound(0, 2);
  GeneralizedTuple above({Lrp::Make(0, 2)});
  above.mutable_constraints().AddLowerBound(0, 6);
  EXPECT_TRUE(TupleSubsumes(full, below).value());
  EXPECT_TRUE(TupleSubsumes(full, above).value());
  // But the union of the pieces does not subsume the full lrp pairwise --
  // the test is sound, not complete: it cannot stitch pieces together.
  EXPECT_FALSE(TupleSubsumes(below, full).value());
  EXPECT_FALSE(TupleSubsumes(above, full).value());
  EXPECT_FALSE(TupleSubsumes(below, above).value());
}

// ---------------------------------------------------------------------------
// SimplifyRelation: the cheap sweep used on query intermediates.

TEST(SimplifyRelationTest, DropsInfeasibleSubsumedAndDuplicateTuples) {
  GeneralizedRelation r(Schema::Temporal(1));
  GeneralizedTuple infeasible({Lrp::Make(0, 2)});
  infeasible.mutable_constraints().AddUpperBound(0, 0);
  infeasible.mutable_constraints().AddLowerBound(0, 1);
  ASSERT_TRUE(r.AddTuple(std::move(infeasible)).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 4)})).ok());
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)})).ok());
  KernelCounters counters;
  Result<GeneralizedRelation> s = SimplifyRelation(r, &counters);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().size(), 1);
  EXPECT_EQ(s.value().tuples()[0].lrp(0), Lrp::Make(0, 2));
  EXPECT_EQ(counters.tuples_subsumed.load(), 3);
}

TEST(SimplifyRelationTest, KeepsLatticeEmptyTuplesFullSimplifyDrops) {
  // 0+8n with T1 - T2 = 3 has an empty lattice extension (8 | difference
  // of equal-period columns) but a feasible real relaxation: the cheap
  // sweep must keep it, the exact Simplify must drop it.
  GeneralizedRelation r(Schema::Temporal(2));
  GeneralizedTuple dead({Lrp::Make(0, 8), Lrp::Make(1, 8)});
  dead.mutable_constraints().AddDifferenceEquality(0, 1, 3);
  ASSERT_TRUE(r.AddTuple(std::move(dead)).ok());
  Result<GeneralizedRelation> cheap = SimplifyRelation(r);
  ASSERT_TRUE(cheap.ok());
  EXPECT_EQ(cheap.value().size(), 1);  // Sound, not complete.
  Result<GeneralizedRelation> exact = Simplify(r);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value().size(), 0);
}

}  // namespace
}  // namespace itdb
