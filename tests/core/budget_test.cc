// Failure-injection tests: every resource budget must surface
// kResourceExhausted (never crash, never silently truncate), and overflow
// paths must surface kOverflow.

#include <gtest/gtest.h>

#include "core/algebra.h"
#include "core/normalize.h"

namespace itdb {
namespace {

GeneralizedRelation Unary(std::initializer_list<Lrp> lrps) {
  GeneralizedRelation r(Schema::Temporal(1));
  for (const Lrp& l : lrps) {
    EXPECT_TRUE(r.AddTuple(GeneralizedTuple({l})).ok());
  }
  return r;
}

TEST(BudgetTest, IntersectTupleBudget) {
  GeneralizedRelation a = Unary({Lrp::Make(0, 2), Lrp::Make(1, 2)});
  AlgebraOptions options;
  options.max_tuples = 3;  // 2 x 2 pairings exceed it.
  Result<GeneralizedRelation> r = Intersect(a, a, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, CrossProductTupleBudget) {
  GeneralizedRelation a(Schema({"A"}, {}, {}));
  GeneralizedRelation b(Schema({"B"}, {}, {}));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(a.AddTuple(GeneralizedTuple({Lrp::Make(i, 5)})).ok());
    ASSERT_TRUE(b.AddTuple(GeneralizedTuple({Lrp::Make(i, 5)})).ok());
  }
  AlgebraOptions options;
  options.max_tuples = 8;  // 9 > 8.
  Result<GeneralizedRelation> r = CrossProduct(a, b, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, SubtractionChainBudget) {
  // Each subtracted singleton splits tuples; a tiny budget trips quickly.
  GeneralizedRelation a = Unary({Lrp::Make(0, 1)});
  GeneralizedRelation b =
      Unary({Lrp::Singleton(0), Lrp::Singleton(10), Lrp::Singleton(20)});
  AlgebraOptions options;
  options.max_tuples = 2;
  Result<GeneralizedRelation> r = Subtract(a, b, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, NormalizationSplitBudget) {
  GeneralizedTuple t({Lrp::Make(0, 4), Lrp::Make(0, 9), Lrp::Make(0, 25)});
  NormalizeOptions options;
  options.max_split_product = 100;  // (900/4)*(900/9)*(900/25) >> 100.
  Result<std::vector<GeneralizedTuple>> r = NormalizeTuple(t, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, ComplementUniverseBudget) {
  GeneralizedRelation r = Unary({Lrp::Make(0, 1000)});
  AlgebraOptions options;
  options.max_complement_universe = 100;
  Result<GeneralizedRelation> c = Complement(r, options);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, ComplementDnfBudget) {
  // Many constrained tuples on one residue: the incremental DNF grows and
  // hits max_tuples.
  GeneralizedRelation r(Schema::Temporal(2));
  for (int i = 0; i < 12; ++i) {
    GeneralizedTuple t({Lrp::Make(0, 1), Lrp::Make(0, 1)});
    t.mutable_constraints().AddDifferenceUpperBound(0, 1, i);
    t.mutable_constraints().AddUpperBound(0, 100 - i);
    t.mutable_constraints().AddLowerBound(1, i - 100);
    ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  }
  AlgebraOptions options;
  options.max_tuples = 2;
  Result<GeneralizedRelation> c = Complement(r, options);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, LcmOverflowSurfacesAsOverflow) {
  // Two huge coprime periods: the common period overflows int64.
  constexpr std::int64_t kBig = (std::int64_t{1} << 31) - 1;   // Prime.
  constexpr std::int64_t kBig2 = std::int64_t{1} << 33;
  GeneralizedTuple t({Lrp::Make(0, kBig), Lrp::Make(0, kBig2)});
  Result<std::int64_t> k = CommonPeriod(t);
  // lcm = kBig * kBig2 ~ 2^64: must overflow, not wrap.
  ASSERT_FALSE(k.ok());
  EXPECT_EQ(k.status().code(), StatusCode::kOverflow);
}

TEST(BudgetTest, ErrorsCarryOperationNames) {
  GeneralizedRelation a = Unary({Lrp::Make(0, 2), Lrp::Make(1, 2)});
  AlgebraOptions options;
  options.max_tuples = 1;
  Result<GeneralizedRelation> r = Union(a, a, options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Union"), std::string::npos)
      << r.status();
}

}  // namespace
}  // namespace itdb
