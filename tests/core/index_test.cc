// The indexed-kernel support layer (core/index.h): the gcd residue-class
// prefilter must agree with Lrp::Intersect emptiness decision for decision,
// the data-key partition must enumerate exactly the naive matching pairs in
// the naive order, hull disjointness must imply an empty tuple intersection,
// and the indexed Join / Intersect / Subtract must be bit-identical to the
// naive kernels while charging budgets on candidate pairs only.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/random_relations.h"
#include "core/algebra.h"
#include "core/index.h"
#include "core/lrp.h"
#include "core/relation.h"
#include "core/tuple.h"

namespace itdb {
namespace {

using testing_util::MakeRandomRelation;
using testing_util::RandomRelationConfig;

// ---------------------------------------------------------------------------
// LrpIntersectionEmpty.

TEST(LrpIntersectionEmptyTest, AgreesWithIntersectOnGrid) {
  // Offsets include negatives and overflow-adjacent magnitudes (|c| = 2^61;
  // large enough that sloppy prefilter arithmetic would diverge, small
  // enough that Lrp::Contains' subtraction stays in range).  k = 1 rows pin
  // the "gcd is 1, never prune" edge.
  const std::int64_t kBig = std::int64_t{1} << 61;
  const std::int64_t offsets[] = {-kBig, -1000000007, -7, -3, -1, 0,
                                  1,     2,           5,  97, kBig};
  const std::int64_t periods[] = {0, 1, 2, 3, 4, 6, 97};
  for (std::int64_t c1 : offsets) {
    for (std::int64_t k1 : periods) {
      for (std::int64_t c2 : offsets) {
        for (std::int64_t k2 : periods) {
          Lrp a = Lrp::Make(c1, k1);
          Lrp b = Lrp::Make(c2, k2);
          auto meet = Lrp::Intersect(a, b);
          ASSERT_TRUE(meet.ok())
              << a.ToString() << " ^ " << b.ToString() << ": "
              << meet.status();
          EXPECT_EQ(LrpIntersectionEmpty(a, b), !meet.value().has_value())
              << a.ToString() << " ^ " << b.ToString();
        }
      }
    }
  }
}

TEST(LrpIntersectionEmptyTest, PeriodOneNeverPrunesAgainstAnything) {
  Lrp z = Lrp::Make(0, 1);  // All of Z.
  for (std::int64_t c : {std::int64_t{-9}, std::int64_t{0}, std::int64_t{7}}) {
    for (std::int64_t k : {std::int64_t{0}, std::int64_t{1}, std::int64_t{6}}) {
      EXPECT_FALSE(LrpIntersectionEmpty(z, Lrp::Make(c, k)));
      EXPECT_FALSE(LrpIntersectionEmpty(Lrp::Make(c, k), z));
    }
  }
}

TEST(LrpIntersectionEmptyTest, NegativeOffsetCanonicalization) {
  // [-3+2n] canonicalizes to [1+2n]: disjoint from [0+2n], meets [5].
  Lrp odd = Lrp::Make(-3, 2);
  EXPECT_TRUE(LrpIntersectionEmpty(odd, Lrp::Make(0, 2)));
  EXPECT_FALSE(LrpIntersectionEmpty(odd, Lrp::Singleton(5)));
  EXPECT_TRUE(LrpIntersectionEmpty(odd, Lrp::Singleton(-4)));
  EXPECT_FALSE(LrpIntersectionEmpty(odd, Lrp::Singleton(-7)));
}

// ---------------------------------------------------------------------------
// DataKeyIndex.

GeneralizedRelation KeyedRelation(const std::vector<std::int64_t>& keys) {
  GeneralizedRelation r(Schema({"T1"}, {"K"}, {DataType::kInt}));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    Status s = r.AddTuple(GeneralizedTuple(
        {Lrp::Singleton(static_cast<std::int64_t>(i))},
        {Value(keys[i])}));
    EXPECT_TRUE(s.ok());
  }
  return r;
}

GeneralizedTuple Probe(std::int64_t key) {
  return GeneralizedTuple({Lrp::Singleton(0)}, {Value(key)});
}

std::vector<std::size_t> ToVec(std::span<const std::size_t> s) {
  return {s.begin(), s.end()};
}

TEST(DataKeyIndexTest, GroupsListIndicesAscending) {
  GeneralizedRelation r = KeyedRelation({1, 2, 1, 3, 1});
  DataKeyIndex index(r, {0});
  EXPECT_EQ(ToVec(index.Candidates(Probe(1), {0})),
            (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(ToVec(index.Candidates(Probe(3), {0})),
            (std::vector<std::size_t>{3}));
  EXPECT_TRUE(index.Candidates(Probe(9), {0}).empty());
}

TEST(DataKeyIndexTest, EmptyKeyDegeneratesToRawProduct) {
  GeneralizedRelation r = KeyedRelation({1, 2, 3});
  DataKeyIndex index(r, {});
  EXPECT_EQ(ToVec(index.Candidates(Probe(99), {})),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(index.CountCandidatePairs(r, {}), 9);
}

TEST(DataKeyIndexTest, EmptyRelationHasNoCandidates) {
  GeneralizedRelation r = KeyedRelation({});
  DataKeyIndex index(r, {0});
  EXPECT_TRUE(index.Candidates(Probe(1), {0}).empty());
  GeneralizedRelation unkeyed = KeyedRelation({});
  DataKeyIndex index2(unkeyed, {});
  EXPECT_TRUE(index2.Candidates(Probe(1), {}).empty());
}

TEST(DataKeyIndexTest, CountCandidatePairsMatchesBucketSizes) {
  GeneralizedRelation r = KeyedRelation({1, 2, 1, 3, 1});
  GeneralizedRelation probes = KeyedRelation({1, 3, 7});
  DataKeyIndex index(r, {0});
  // Probe 1 hits 3 tuples, probe 3 hits 1, probe 7 hits 0.
  EXPECT_EQ(index.CountCandidatePairs(probes, {0}), 4);
}

// ---------------------------------------------------------------------------
// TemporalHull / HullsDisjoint.

TEST(TemporalHullTest, ReadsBoundsOffClosedDbm) {
  GeneralizedTuple t({Lrp::Make(0, 2), Lrp::Make(1, 3)});
  t.mutable_constraints().AddLowerBound(0, -4);
  t.mutable_constraints().AddUpperBound(0, 9);
  TemporalHull h = TemporalHull::Of(t);
  ASSERT_TRUE(h.usable());
  EXPECT_FALSE(h.infeasible);
  EXPECT_EQ(h.lo[0], -4);
  EXPECT_EQ(h.hi[0], 9);
  EXPECT_EQ(h.lo[1], -Dbm::kInf);
  EXPECT_EQ(h.hi[1], Dbm::kInf);
}

TEST(TemporalHullTest, InfeasibleConstraintsAreFlagged) {
  GeneralizedTuple t({Lrp::Make(0, 2)});
  t.mutable_constraints().AddLowerBound(0, 3);
  t.mutable_constraints().AddUpperBound(0, 1);
  TemporalHull h = TemporalHull::Of(t);
  EXPECT_FALSE(h.usable());
  EXPECT_TRUE(h.infeasible);
  EXPECT_FALSE(h.close_failed);
}

TEST(TemporalHullTest, DisjointHullsImplyEmptyIntersection) {
  GeneralizedTuple a({Lrp::Make(0, 1)});
  a.mutable_constraints().AddLowerBound(0, 0);
  a.mutable_constraints().AddUpperBound(0, 5);
  GeneralizedTuple b({Lrp::Make(0, 1)});
  b.mutable_constraints().AddLowerBound(0, 10);
  b.mutable_constraints().AddUpperBound(0, 20);
  TemporalHull ha = TemporalHull::Of(a);
  TemporalHull hb = TemporalHull::Of(b);
  ASSERT_TRUE(ha.usable());
  ASSERT_TRUE(hb.usable());
  EXPECT_TRUE(HullsDisjoint(ha, hb, {{0, 0}}));
  auto meet = GeneralizedTuple::Intersect(a, b);
  ASSERT_TRUE(meet.ok());
  EXPECT_FALSE(meet.value().has_value());
}

TEST(TemporalHullTest, UnboundedHullsNeverPrune) {
  GeneralizedTuple a({Lrp::Make(0, 2)});
  GeneralizedTuple b({Lrp::Make(1, 2)});
  TemporalHull ha = TemporalHull::Of(a);
  TemporalHull hb = TemporalHull::Of(b);
  EXPECT_FALSE(HullsDisjoint(ha, hb, {{0, 0}}));
}

// ---------------------------------------------------------------------------
// Indexed kernels vs naive: bit-identical on relations with data columns.

void ExpectSame(const GeneralizedRelation& want,
                const GeneralizedRelation& got, const char* what) {
  EXPECT_EQ(want.schema(), got.schema()) << what;
  EXPECT_EQ(want.tuples(), got.tuples()) << what;
}

TEST(IndexedKernelsTest, BitIdenticalToNaiveOnRandomKeyedRelations) {
  RandomRelationConfig cfg;
  cfg.temporal_arity = 2;
  cfg.num_tuples = 12;
  cfg.data_values = {Value(std::int64_t{0}), Value(std::int64_t{1}),
                     Value(std::int64_t{2})};
  AlgebraOptions naive;
  naive.use_index = false;
  AlgebraOptions indexed;
  indexed.use_index = true;
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    GeneralizedRelation a = MakeRandomRelation(seed, cfg);
    GeneralizedRelation b = MakeRandomRelation(seed + 1000, cfg);
    auto i0 = Intersect(a, b, naive);
    auto i1 = Intersect(a, b, indexed);
    ASSERT_EQ(i0.ok(), i1.ok()) << "Intersect seed " << seed;
    if (i0.ok()) ExpectSame(*i0, *i1, "Intersect");
    auto j0 = Join(a, b, naive);
    auto j1 = Join(a, b, indexed);
    ASSERT_EQ(j0.ok(), j1.ok()) << "Join seed " << seed;
    if (j0.ok()) ExpectSame(*j0, *j1, "Join");
    auto s0 = Subtract(a, b, naive);
    auto s1 = Subtract(a, b, indexed);
    ASSERT_EQ(s0.ok(), s1.ok()) << "Subtract seed " << seed;
    if (s0.ok()) ExpectSame(*s0, *s1, "Subtract");
  }
}

// ---------------------------------------------------------------------------
// Budgets charge candidate pairs after partitioning; counters fill in.

TEST(IndexedKernelsTest, BudgetChargesCandidatePairsNotRawProduct) {
  // 100 x 100 tuples, every key distinct within each relation and shared
  // one-to-one across them: 10000 raw pairs but only 100 candidates.
  std::vector<std::int64_t> keys(100);
  for (int i = 0; i < 100; ++i) keys[static_cast<std::size_t>(i)] = i;
  GeneralizedRelation a = KeyedRelation(keys);
  GeneralizedRelation b = KeyedRelation(keys);
  AlgebraOptions options;
  options.max_tuples = 500;

  options.use_index = false;
  auto naive = Intersect(a, b, options);
  ASSERT_FALSE(naive.ok());
  EXPECT_EQ(naive.status().code(), StatusCode::kResourceExhausted);

  options.use_index = true;
  KernelCounters counters;
  options.counters = &counters;
  auto indexed = Intersect(a, b, options);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  EXPECT_EQ(indexed.value().size(), 100u);
  EXPECT_EQ(counters.pairs_total.load(), 10000);
  EXPECT_EQ(counters.pairs_candidate.load(), 100);
}

TEST(IndexedKernelsTest, CountersRecordPrefilterPrunes) {
  // Same key everywhere, but disjoint residue classes: every candidate pair
  // must be pruned by the gcd prefilter, none by the hull.
  GeneralizedRelation a(Schema({"T1"}, {"K"}, {DataType::kInt}));
  GeneralizedRelation b(Schema({"T1"}, {"K"}, {DataType::kInt}));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        a.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)}, {Value(std::int64_t{7})}))
            .ok());
    ASSERT_TRUE(
        b.AddTuple(GeneralizedTuple({Lrp::Make(1, 2)}, {Value(std::int64_t{7})}))
            .ok());
  }
  AlgebraOptions options;
  KernelCounters counters;
  options.counters = &counters;
  auto meet = Intersect(a, b, options);
  ASSERT_TRUE(meet.ok());
  EXPECT_EQ(meet.value().size(), 0u);
  EXPECT_EQ(counters.pairs_candidate.load(), 16);
  EXPECT_EQ(counters.pairs_pruned_residue.load(), 16);
  EXPECT_EQ(counters.pairs_pruned_hull.load(), 0);
}

// ---------------------------------------------------------------------------
// ConjoinOntoClosed.

TEST(ConjoinOntoClosedTest, MatchesNaiveConjoinPlusClose) {
  RandomRelationConfig cfg;
  cfg.temporal_arity = 3;
  cfg.num_tuples = 24;
  cfg.max_constraints = 4;
  GeneralizedRelation r = MakeRandomRelation(77, cfg);
  KernelCounters counters;
  for (std::size_t i = 0; i + 1 < static_cast<std::size_t>(r.size());
       i += 2) {
    const GeneralizedTuple& t1 = r.tuples()[i];
    const GeneralizedTuple& t2 = r.tuples()[i + 1];
    Dbm base = t1.constraints();
    ASSERT_TRUE(base.Close().ok());
    if (!base.feasible()) continue;
    Dbm naive = Dbm::Conjoin(base, t2.constraints());
    Status naive_status = naive.Close();
    auto fast = ConjoinOntoClosed(base, t2.constraints(), &counters);
    ASSERT_EQ(naive_status.ok(), fast.ok()) << "pair " << i;
    if (!naive_status.ok()) continue;
    EXPECT_EQ(fast.value().feasible(), naive.feasible()) << "pair " << i;
    if (naive.feasible()) {
      EXPECT_EQ(fast.value(), naive) << "pair " << i;
    }
  }
  EXPECT_GT(counters.closures_incremental.load() +
                counters.closures_full.load(),
            0);
}

}  // namespace
}  // namespace itdb
