#include "core/algebra.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "finite/finite_relation.h"

namespace itdb {
namespace {

GeneralizedRelation Unary(std::initializer_list<Lrp> lrps) {
  GeneralizedRelation r(Schema::Temporal(1));
  for (const Lrp& l : lrps) {
    EXPECT_TRUE(r.AddTuple(GeneralizedTuple({l})).ok());
  }
  return r;
}

std::set<std::int64_t> UnarySet(const GeneralizedRelation& r, std::int64_t lo,
                                std::int64_t hi) {
  std::set<std::int64_t> out;
  for (const ConcreteRow& row : r.Enumerate(lo, hi)) {
    out.insert(row.temporal[0]);
  }
  return out;
}

std::set<std::int64_t> Evens(std::int64_t lo, std::int64_t hi) {
  std::set<std::int64_t> out;
  for (std::int64_t x = lo; x <= hi; ++x) {
    if (((x % 2) + 2) % 2 == 0) out.insert(x);
  }
  return out;
}

TEST(UnionTest, MergesTuples) {
  GeneralizedRelation a = Unary({Lrp::Make(0, 4)});
  GeneralizedRelation b = Unary({Lrp::Make(2, 4)});
  Result<GeneralizedRelation> u = Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().size(), 2);
  EXPECT_EQ(UnarySet(u.value(), -10, 10), Evens(-10, 10));
}

TEST(UnionTest, SchemaMismatchRejected) {
  GeneralizedRelation a = Unary({Lrp::Make(0, 4)});
  GeneralizedRelation b(Schema::Temporal(2));
  EXPECT_FALSE(Union(a, b).ok());
}

TEST(IntersectTest, ResidueIntersection) {
  // (0+2n) ^ (0+3n) == 0+6n.
  GeneralizedRelation a = Unary({Lrp::Make(0, 2)});
  GeneralizedRelation b = Unary({Lrp::Make(0, 3)});
  Result<GeneralizedRelation> i = Intersect(a, b);
  ASSERT_TRUE(i.ok());
  ASSERT_EQ(i.value().size(), 1);
  EXPECT_EQ(i.value().tuples()[0].lrp(0), Lrp::Make(0, 6));
}

TEST(SubtractTest, ResidueSubtraction) {
  // (0+2n) - (0+6n) = {2+6n, 4+6n}.
  GeneralizedRelation a = Unary({Lrp::Make(0, 2)});
  GeneralizedRelation b = Unary({Lrp::Make(0, 6)});
  Result<GeneralizedRelation> d = Subtract(a, b);
  ASSERT_TRUE(d.ok());
  std::set<std::int64_t> expect;
  for (std::int64_t x = -30; x <= 30; ++x) {
    if (((x % 2) + 2) % 2 == 0 && ((x % 6) + 6) % 6 != 0) expect.insert(x);
  }
  EXPECT_EQ(UnarySet(d.value(), -30, 30), expect);
}

TEST(SubtractTest, ConstrainedSubtrahendLeavesComplementPiece) {
  // Z - (Z with X >= 5) == X <= 4.
  GeneralizedRelation a = Unary({Lrp::Make(0, 1)});
  GeneralizedRelation b(Schema::Temporal(1));
  GeneralizedTuple t({Lrp::Make(0, 1)});
  t.mutable_constraints().AddLowerBound(0, 5);
  ASSERT_TRUE(b.AddTuple(std::move(t)).ok());
  Result<GeneralizedRelation> d = Subtract(a, b);
  ASSERT_TRUE(d.ok());
  std::set<std::int64_t> expect;
  for (std::int64_t x = -20; x <= 4; ++x) expect.insert(x);
  EXPECT_EQ(UnarySet(d.value(), -20, 20), expect);
}

TEST(SubtractTest, PuncturedPointViaSingleton) {
  // (0+5n) - {10} == 0+5n without 10, via bound-constraint splitting.
  GeneralizedRelation a = Unary({Lrp::Make(0, 5)});
  GeneralizedRelation b = Unary({Lrp::Singleton(10)});
  Result<GeneralizedRelation> d = Subtract(a, b);
  ASSERT_TRUE(d.ok());
  std::set<std::int64_t> expect;
  for (std::int64_t x = -20; x <= 20; x += 5) {
    if (x != 10) expect.insert(x);
  }
  EXPECT_EQ(UnarySet(d.value(), -20, 20), expect);
}

TEST(SubtractTest, SelfSubtractionIsEmpty) {
  GeneralizedRelation a = Unary({Lrp::Make(3, 7)});
  Result<GeneralizedRelation> d = Subtract(a, a);
  ASSERT_TRUE(d.ok());
  Result<bool> empty = IsEmpty(d.value());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value());
}

TEST(ComplementTest, ComplementOfEvens) {
  GeneralizedRelation a = Unary({Lrp::Make(0, 2)});
  Result<GeneralizedRelation> c = Complement(a);
  ASSERT_TRUE(c.ok());
  std::set<std::int64_t> expect;
  for (std::int64_t x = -15; x <= 15; ++x) {
    if (((x % 2) + 2) % 2 == 1) expect.insert(x);
  }
  EXPECT_EQ(UnarySet(c.value(), -15, 15), expect);
}

TEST(ComplementTest, ComplementOfEmptyIsUniverse) {
  GeneralizedRelation a(Schema::Temporal(2));
  Result<GeneralizedRelation> c = Complement(a);
  ASSERT_TRUE(c.ok());
  FiniteRelation f = FiniteRelation::Materialize(c.value(), -3, 3);
  EXPECT_EQ(f.size(), 49);  // Everything.
}

TEST(ComplementTest, DoubleComplementRoundTrips) {
  GeneralizedRelation a(Schema::Temporal(1));
  GeneralizedTuple t({Lrp::Make(1, 3)});
  t.mutable_constraints().AddLowerBound(0, 0);
  ASSERT_TRUE(a.AddTuple(std::move(t)).ok());
  Result<GeneralizedRelation> c = Complement(a);
  ASSERT_TRUE(c.ok());
  Result<GeneralizedRelation> cc = Complement(c.value());
  ASSERT_TRUE(cc.ok());
  EXPECT_EQ(UnarySet(cc.value(), -20, 20), UnarySet(a, -20, 20));
}

TEST(ComplementTest, RejectsDataColumns) {
  Schema schema({"T"}, {"who"}, {DataType::kString});
  GeneralizedRelation r(schema);
  EXPECT_FALSE(Complement(r).ok());
}

TEST(ComplementTest, WithDataDomains) {
  Schema schema({"T"}, {"who"}, {DataType::kString});
  GeneralizedRelation r(schema);
  GeneralizedTuple t({Lrp::Make(0, 2)}, {Value("a")});
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  std::vector<std::vector<Value>> domains = {{Value("a"), Value("b")}};
  Result<GeneralizedRelation> c = ComplementWithDataDomains(r, domains);
  ASSERT_TRUE(c.ok());
  // ("a", odd) and ("b", anything) are in the complement.
  EXPECT_TRUE(c.value().Contains({{1}, {Value("a")}}));
  EXPECT_FALSE(c.value().Contains({{0}, {Value("a")}}));
  EXPECT_TRUE(c.value().Contains({{0}, {Value("b")}}));
  EXPECT_TRUE(c.value().Contains({{1}, {Value("b")}}));
}

TEST(ComplementTest, UniverseBudgetEnforced) {
  GeneralizedRelation r(Schema::Temporal(3));
  ASSERT_TRUE(r.AddTuple(GeneralizedTuple({Lrp::Make(0, 101), Lrp::Make(0, 101),
                                           Lrp::Make(0, 101)}))
                  .ok());
  AlgebraOptions options;
  options.max_complement_universe = 1000;  // 101^3 >> 1000.
  Result<GeneralizedRelation> c = Complement(r, options);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
}

TEST(SelectTemporalTest, AddsConstraint) {
  GeneralizedRelation r = Unary({Lrp::Make(0, 2)});
  Result<GeneralizedRelation> s =
      SelectTemporal(r, TemporalCondition{0, kZeroVar, CmpOp::kGe, 6});
  ASSERT_TRUE(s.ok());
  std::set<std::int64_t> expect;
  for (std::int64_t x = 6; x <= 20; x += 2) expect.insert(x);
  EXPECT_EQ(UnarySet(s.value(), -20, 20), expect);
}

TEST(SelectTemporalTest, NotEqualSplitsTuples) {
  GeneralizedRelation r(Schema::Temporal(2));
  ASSERT_TRUE(
      r.AddTuple(GeneralizedTuple({Lrp::Make(0, 1), Lrp::Make(0, 1)})).ok());
  Result<GeneralizedRelation> s =
      SelectTemporal(r, TemporalCondition{0, 1, CmpOp::kNe, 0});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().size(), 2);
  for (const ConcreteRow& row : s.value().Enumerate(-5, 5)) {
    EXPECT_NE(row.temporal[0], row.temporal[1]);
  }
  EXPECT_EQ(s.value().Enumerate(-5, 5).size(), 11u * 11u - 11u);
}

TEST(SelectTemporalTest, BetweenColumnsWithOffset) {
  GeneralizedRelation r(Schema::Temporal(2));
  ASSERT_TRUE(
      r.AddTuple(GeneralizedTuple({Lrp::Make(0, 1), Lrp::Make(0, 1)})).ok());
  // X1 < X2 + (-2), i.e. X1 <= X2 - 3.
  Result<GeneralizedRelation> s =
      SelectTemporal(r, TemporalCondition{0, 1, CmpOp::kLt, -2});
  ASSERT_TRUE(s.ok());
  for (const ConcreteRow& row : s.value().Enumerate(-5, 5)) {
    EXPECT_LE(row.temporal[0], row.temporal[1] - 3);
  }
  EXPECT_FALSE(s.value().Enumerate(-5, 5).empty());
}

TEST(SelectDataTest, FiltersOnValues) {
  Schema schema({"T"}, {"who"}, {DataType::kString});
  GeneralizedRelation r(schema);
  GeneralizedTuple t1({Lrp::Make(0, 2)}, {Value("a")});
  GeneralizedTuple t2({Lrp::Make(1, 2)}, {Value("b")});
  ASSERT_TRUE(r.AddTuple(std::move(t1)).ok());
  ASSERT_TRUE(r.AddTuple(std::move(t2)).ok());
  Result<GeneralizedRelation> s = SelectData(r, 0, CmpOp::kEq, Value("b"));
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s.value().size(), 1);
  EXPECT_EQ(s.value().tuples()[0].value(0).AsString(), "b");
  s = SelectData(r, 0, CmpOp::kNe, Value("b"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().size(), 1);
}

TEST(CrossProductTest, CombinesColumnsAndConstraints) {
  GeneralizedRelation a(Schema({"A"}, {}, {}));
  GeneralizedTuple ta({Lrp::Make(0, 2)});
  ta.mutable_constraints().AddLowerBound(0, 0);
  ASSERT_TRUE(a.AddTuple(std::move(ta)).ok());
  GeneralizedRelation b(Schema({"B"}, {}, {}));
  GeneralizedTuple tb({Lrp::Make(1, 2)});
  tb.mutable_constraints().AddUpperBound(0, 9);
  ASSERT_TRUE(b.AddTuple(std::move(tb)).ok());
  Result<GeneralizedRelation> x = CrossProduct(a, b);
  ASSERT_TRUE(x.ok());
  ASSERT_EQ(x.value().size(), 1);
  EXPECT_EQ(x.value().schema().temporal_names(),
            (std::vector<std::string>{"A", "B"}));
  for (const ConcreteRow& row : x.value().Enumerate(-10, 10)) {
    EXPECT_GE(row.temporal[0], 0);
    EXPECT_LE(row.temporal[1], 9);
  }
  EXPECT_EQ(x.value().Enumerate(-10, 10).size(), 6u * 10u);
}

TEST(CrossProductTest, DuplicateNamesRejected) {
  GeneralizedRelation a(Schema::Temporal(1));
  GeneralizedRelation b(Schema::Temporal(1));
  EXPECT_FALSE(CrossProduct(a, b).ok());  // Both have "T1".
}

TEST(JoinTest, SharedTemporalAttribute) {
  // Join on shared attribute "T": evens ^ multiples-of-3 = multiples of 6.
  GeneralizedRelation a(Schema({"T", "A"}, {}, {}));
  ASSERT_TRUE(
      a.AddTuple(GeneralizedTuple({Lrp::Make(0, 2), Lrp::Make(0, 1)})).ok());
  GeneralizedRelation b(Schema({"T", "B"}, {}, {}));
  ASSERT_TRUE(
      b.AddTuple(GeneralizedTuple({Lrp::Make(0, 3), Lrp::Make(0, 1)})).ok());
  Result<GeneralizedRelation> j = Join(a, b);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value().schema().temporal_names(),
            (std::vector<std::string>{"T", "A", "B"}));
  ASSERT_EQ(j.value().size(), 1);
  EXPECT_EQ(j.value().tuples()[0].lrp(0), Lrp::Make(0, 6));
}

TEST(JoinTest, ConstraintsCarryAcross) {
  // a: T <= A - 1;  b: T >= 5.  Join on T: both constraints hold.
  GeneralizedRelation a(Schema({"T", "A"}, {}, {}));
  GeneralizedTuple ta({Lrp::Make(0, 1), Lrp::Make(0, 1)});
  ta.mutable_constraints().AddDifferenceUpperBound(0, 1, -1);
  ASSERT_TRUE(a.AddTuple(std::move(ta)).ok());
  GeneralizedRelation b(Schema({"T"}, {}, {}));
  GeneralizedTuple tb({Lrp::Make(0, 1)});
  tb.mutable_constraints().AddLowerBound(0, 5);
  ASSERT_TRUE(b.AddTuple(std::move(tb)).ok());
  Result<GeneralizedRelation> j = Join(a, b);
  ASSERT_TRUE(j.ok());
  for (const ConcreteRow& row : j.value().Enumerate(-10, 10)) {
    EXPECT_GE(row.temporal[0], 5);
    EXPECT_LT(row.temporal[0], row.temporal[1]);
  }
  EXPECT_FALSE(j.value().Enumerate(-10, 10).empty());
}

TEST(JoinTest, SharedDataAttribute) {
  Schema sa({"T1"}, {"who"}, {DataType::kString});
  Schema sb({"T2"}, {"who"}, {DataType::kString});
  GeneralizedRelation a(sa);
  ASSERT_TRUE(
      a.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)}, {Value("x")})).ok());
  ASSERT_TRUE(
      a.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)}, {Value("y")})).ok());
  GeneralizedRelation b(sb);
  ASSERT_TRUE(
      b.AddTuple(GeneralizedTuple({Lrp::Make(1, 2)}, {Value("x")})).ok());
  Result<GeneralizedRelation> j = Join(a, b);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j.value().size(), 1);
  EXPECT_EQ(j.value().tuples()[0].value(0).AsString(), "x");
  EXPECT_EQ(j.value().schema().temporal_arity(), 2);
}

TEST(JoinTest, DisjointSchemasDegenerateToCrossProduct) {
  GeneralizedRelation a(Schema({"A"}, {}, {}));
  ASSERT_TRUE(a.AddTuple(GeneralizedTuple({Lrp::Make(0, 2)})).ok());
  GeneralizedRelation b(Schema({"B"}, {}, {}));
  ASSERT_TRUE(b.AddTuple(GeneralizedTuple({Lrp::Make(0, 3)})).ok());
  Result<GeneralizedRelation> j = Join(a, b);
  ASSERT_TRUE(j.ok());
  Result<GeneralizedRelation> x = CrossProduct(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(FiniteRelation::Materialize(j.value(), -6, 6),
            FiniteRelation::Materialize(x.value(), -6, 6));
}

TEST(RenameTest, RenamesAndValidates) {
  Schema schema({"T1"}, {"who"}, {DataType::kString});
  GeneralizedRelation r(schema);
  Result<GeneralizedRelation> renamed = Rename(r, {{"T1", "Start"}});
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(renamed.value().schema().temporal_name(0), "Start");
  EXPECT_FALSE(Rename(r, {{"nope", "x"}}).ok());
  Schema two({"T1", "T2"}, {}, {});
  GeneralizedRelation r2(two);
  EXPECT_FALSE(Rename(r2, {{"T1", "T2"}}).ok());  // Duplicate.
}

TEST(IsEmptyTest, LatticeExactEmptiness) {
  // Real-feasible but lattice-empty (Figure 2 style).
  GeneralizedRelation r(Schema::Temporal(2));
  GeneralizedTuple t({Lrp::Make(0, 8), Lrp::Make(1, 8)});
  t.mutable_constraints().AddDifferenceEquality(0, 1, 3);
  ASSERT_TRUE(r.AddTuple(std::move(t)).ok());
  Result<bool> empty = IsEmpty(r);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value());
}

TEST(IsEmptyTest, NonEmptyDetected) {
  GeneralizedRelation r = Unary({Lrp::Make(0, 5)});
  Result<bool> empty = IsEmpty(r);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty.value());
}

TEST(IsEmptyTest, EmptyRelationIsEmpty) {
  GeneralizedRelation r(Schema::Temporal(1));
  EXPECT_TRUE(IsEmpty(r).value());
}

}  // namespace
}  // namespace itdb
