#include "core/dbm_batch.h"

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/dbm.h"
#include "util/arena.h"

namespace itdb {
namespace {

// A random constraint system over `num_vars` variables.  `wild` mixes in
// huge bounds so some systems brush the kBoundLimit overflow guard.
Dbm RandomDbm(std::mt19937_64& rng, int num_vars, bool wild) {
  Dbm d(num_vars);
  std::uniform_int_distribution<int> count_dist(0, 2 * num_vars + 2);
  std::uniform_int_distribution<int> var_dist(-1, num_vars - 1);
  std::uniform_int_distribution<std::int64_t> bound_dist(-50, 50);
  std::uniform_int_distribution<std::int64_t> wild_dist(
      Dbm::kBoundLimit - 100, Dbm::kBoundLimit + 100);
  int count = count_dist(rng);
  for (int c = 0; c < count; ++c) {
    int lhs = var_dist(rng);
    int rhs = var_dist(rng);
    if (lhs == rhs) continue;
    std::int64_t bound = bound_dist(rng);
    if (wild && rng() % 4 == 0) bound = wild_dist(rng);
    if (wild && rng() % 8 == 0) bound = -bound;
    d.AddAtomic({lhs, rhs, bound});
  }
  return d;
}

// CloseAll over a slab of random systems must reproduce the scalar Close()
// per system: same feasibility, same overflow report, same closed matrix.
TEST(DbmBatchTest, CloseAllMatchesScalarClose) {
  std::mt19937_64 rng(20260807);
  Arena arena;
  for (int num_vars = 0; num_vars <= 5; ++num_vars) {
    for (bool wild : {false, true}) {
      constexpr std::int64_t kCount = 64;
      std::vector<Dbm> originals;
      originals.reserve(kCount);
      for (std::int64_t t = 0; t < kCount; ++t) {
        originals.push_back(RandomDbm(rng, num_vars, wild));
      }
      ArenaScope scope(arena);
      DbmSlab slab(&arena, num_vars, kCount);
      for (std::int64_t t = 0; t < kCount; ++t) {
        slab.Load(t, originals[static_cast<std::size_t>(t)]);
      }
      bool* feasible = arena.AllocateArray<bool>(kCount);
      bool* overflow = arena.AllocateArray<bool>(kCount);
      slab.CloseAll(feasible, overflow);
      for (std::int64_t t = 0; t < kCount; ++t) {
        Dbm scalar = originals[static_cast<std::size_t>(t)];
        Status st = scalar.Close();
        SCOPED_TRACE("vars=" + std::to_string(num_vars) +
                     " wild=" + std::to_string(wild) +
                     " t=" + std::to_string(t));
        EXPECT_EQ(overflow[t], !st.ok());
        EXPECT_EQ(feasible[t], scalar.feasible());
        if (st.ok() && scalar.feasible()) {
          Dbm extracted = slab.Extract(t);
          EXPECT_TRUE(extracted == scalar);
          EXPECT_TRUE(extracted.closed());
          EXPECT_TRUE(extracted.feasible());
        }
      }
    }
  }
}

// TightenAndCloseBatch must reproduce the scalar TightenAndClose per
// system: same TightenResult, and -- on kClosed / kInfeasible -- the same
// matrix.  kFallbackNeeded must leave the batch system untouched, exactly
// like the scalar kernel.
TEST(DbmBatchTest, TightenAndCloseBatchMatchesScalar) {
  std::mt19937_64 rng(987654321);
  Arena arena;
  std::uniform_int_distribution<int> var_dist_any(-1, 3);
  for (int round = 0; round < 40; ++round) {
    const int num_vars = 4;
    constexpr std::int64_t kCount = 32;
    const bool wild = round % 2 == 1;
    // Build closed feasible bases (the kernel's precondition).
    std::vector<Dbm> bases;
    while (static_cast<std::int64_t>(bases.size()) < kCount) {
      Dbm d = RandomDbm(rng, num_vars, wild);
      if (!d.Close().ok() || !d.feasible()) continue;
      bases.push_back(std::move(d));
    }
    int lhs = var_dist_any(rng);
    int rhs = var_dist_any(rng);
    std::int64_t bound =
        std::uniform_int_distribution<std::int64_t>(-80, 80)(rng);
    if (wild && rng() % 3 == 0) bound = -(Dbm::kBoundLimit - 10);
    AtomicConstraint c{lhs, rhs, bound};

    ArenaScope scope(arena);
    DbmSlab slab(&arena, num_vars, kCount);
    for (std::int64_t t = 0; t < kCount; ++t) {
      slab.Load(t, bases[static_cast<std::size_t>(t)]);
    }
    std::vector<Dbm::TightenResult> results(kCount);
    TightenAndCloseBatch(slab, c, results.data());
    for (std::int64_t t = 0; t < kCount; ++t) {
      Dbm scalar = bases[static_cast<std::size_t>(t)];
      Dbm::TightenResult want = scalar.TightenAndClose(c);
      SCOPED_TRACE("round=" + std::to_string(round) +
                   " t=" + std::to_string(t) + " c=" + c.ToString());
      EXPECT_EQ(results[static_cast<std::size_t>(t)], want);
      const Dbm& compare = want == Dbm::TightenResult::kFallbackNeeded
                               ? bases[static_cast<std::size_t>(t)]
                               : scalar;
      for (int p = 0; p <= num_vars; ++p) {
        for (int q = 0; q <= num_vars; ++q) {
          EXPECT_EQ(slab.at(p, q, t), compare.bound_node(p, q));
        }
      }
    }
  }
}

// The self-edge degenerate forms (p == q) short-circuit for the whole
// batch, mirroring the scalar kernel's special case.
TEST(DbmBatchTest, SelfEdgeConstraint) {
  Arena arena;
  ArenaScope scope(arena);
  DbmSlab slab(&arena, 2, 3);
  slab.InitUnconstrained();
  std::vector<Dbm::TightenResult> results(3);
  TightenAndCloseBatch(slab, {1, 1, 5}, results.data());
  for (const Dbm::TightenResult r : results) {
    EXPECT_EQ(r, Dbm::TightenResult::kClosed);
  }
  TightenAndCloseBatch(slab, {1, 1, -5}, results.data());
  for (const Dbm::TightenResult r : results) {
    EXPECT_EQ(r, Dbm::TightenResult::kFallbackNeeded);
  }
}

// InitUnconstrained produces exactly the unconstrained scalar matrices.
TEST(DbmBatchTest, InitUnconstrainedMatchesScalar) {
  Arena arena;
  ArenaScope scope(arena);
  DbmSlab slab(&arena, 3, 5);
  slab.InitUnconstrained();
  Dbm fresh(3);
  for (std::int64_t t = 0; t < 5; ++t) {
    for (int p = 0; p <= 3; ++p) {
      for (int q = 0; q <= 3; ++q) {
        EXPECT_EQ(slab.at(p, q, t), fresh.bound_node(p, q));
      }
    }
  }
}

}  // namespace
}  // namespace itdb
