// The tentpole guarantee of the parallel execution engine: every algebra
// operation produces BYTE-IDENTICAL results at every thread count, and the
// normalization memo-cache is transparent (cached == uncached, tuple for
// tuple).  Also covers NormalizeTupleToPeriod edge cases: split-budget
// exhaustion and all-constant tuples.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random_relations.h"
#include "core/algebra.h"
#include "core/normalize.h"
#include "core/normalize_cache.h"

namespace itdb {
namespace {

using testing_util::MakeRandomRelation;
using testing_util::RandomRelationConfig;

// ---------------------------------------------------------------------------
// NormalizeTupleToPeriod edge cases.

TEST(NormalizeEdgeTest, SplitBudgetExhaustionAtEveryThreadCount) {
  // Periods {6, 10, 15}: lcm 30, split product (30/6)*(30/10)*(30/15) = 30.
  GeneralizedTuple t(
      {Lrp::Make(1, 6), Lrp::Make(3, 10), Lrp::Make(7, 15)});
  for (int threads : {1, 4}) {
    NormalizeOptions options;
    options.max_split_product = 29;
    options.threads = threads;
    auto result = NormalizeTupleToPeriod(t, 30, options);
    ASSERT_FALSE(result.ok()) << threads << " threads";
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    options.max_split_product = 30;
    auto fits = NormalizeTupleToPeriod(t, 30, options);
    ASSERT_TRUE(fits.ok()) << threads << " threads";
    EXPECT_EQ(fits.value().size(), 30u);
  }
}

TEST(NormalizeEdgeTest, AllConstantTupleIsItsOwnNormalForm) {
  GeneralizedTuple t({Lrp::Singleton(5), Lrp::Singleton(-3)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, 10);
  for (int threads : {1, 4}) {
    NormalizeOptions options;
    options.threads = threads;
    auto result = NormalizeTuple(t, options);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().size(), 1u);
    EXPECT_EQ(result.value().front().ToString(), t.ToString());
  }
}

TEST(NormalizeEdgeTest, AllConstantContradictionPrunesToNothing) {
  GeneralizedTuple t({Lrp::Singleton(5), Lrp::Singleton(-3)});
  t.mutable_constraints().AddDifferenceUpperBound(0, 1, 0);  // 5 - -3 <= 0.
  for (int threads : {1, 4}) {
    NormalizeOptions options;
    options.threads = threads;
    auto result = NormalizeTuple(t, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().empty());
  }
}

// ---------------------------------------------------------------------------
// Parallel == sequential on randomized inputs.

std::string Render(const Result<GeneralizedRelation>& r) {
  return r.ok() ? r.value().ToString() : r.status().ToString();
}

AlgebraOptions WithThreads(int threads) {
  AlgebraOptions options;
  options.threads = threads;
  options.normalize.threads = threads;
  return options;
}

TEST(ParallelAlgebraTest, BinaryOpsMatchSequentialOnRandomInputs) {
  RandomRelationConfig cfg;
  cfg.temporal_arity = 2;
  cfg.num_tuples = 6;
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    GeneralizedRelation a = MakeRandomRelation(2 * seed + 1, cfg);
    GeneralizedRelation b = MakeRandomRelation(2 * seed + 2, cfg);
    const AlgebraOptions seq = WithThreads(1);
    for (int threads : {2, 4, 8}) {
      const AlgebraOptions par = WithThreads(threads);
      EXPECT_EQ(Render(Intersect(a, b, seq)), Render(Intersect(a, b, par)))
          << "Intersect seed " << seed << " threads " << threads;
      EXPECT_EQ(Render(Join(a, b, seq)), Render(Join(a, b, par)))
          << "Join seed " << seed << " threads " << threads;
      EXPECT_EQ(Render(Subtract(a, b, seq)), Render(Subtract(a, b, par)))
          << "Subtract seed " << seed << " threads " << threads;
      EXPECT_EQ(Render(Project(a, {"T1"}, seq)),
                Render(Project(a, {"T1"}, par)))
          << "Project seed " << seed << " threads " << threads;
    }
  }
}

TEST(ParallelAlgebraTest, CoalescedComplementMatchesSequential) {
  RandomRelationConfig cfg;
  cfg.temporal_arity = 2;
  cfg.num_tuples = 4;
  cfg.periods = {0, 2, 4};  // Keep the residue universe small (k <= 4).
  for (std::uint32_t seed = 100; seed < 108; ++seed) {
    GeneralizedRelation r = MakeRandomRelation(seed, cfg);
    AlgebraOptions seq = WithThreads(1);
    seq.coalesce = true;
    AlgebraOptions par = WithThreads(4);
    par.coalesce = true;
    EXPECT_EQ(Render(Complement(r, seq)), Render(Complement(r, par)))
        << "Complement seed " << seed;
  }
}

TEST(ParallelAlgebraTest, EmptinessAndWitnessAgreeAcrossThreadCounts) {
  RandomRelationConfig cfg;
  cfg.temporal_arity = 2;
  cfg.num_tuples = 3;
  for (std::uint32_t seed = 200; seed < 210; ++seed) {
    GeneralizedRelation r = MakeRandomRelation(seed, cfg);
    auto e1 = IsEmpty(r, WithThreads(1));
    auto e4 = IsEmpty(r, WithThreads(4));
    ASSERT_TRUE(e1.ok() && e4.ok()) << seed;
    EXPECT_EQ(e1.value(), e4.value()) << seed;
    auto w1 = FindWitness(r, WithThreads(1));
    auto w4 = FindWitness(r, WithThreads(4));
    ASSERT_TRUE(w1.ok() && w4.ok()) << seed;
    ASSERT_EQ(w1.value().has_value(), w4.value().has_value()) << seed;
    if (w1.value().has_value()) {
      EXPECT_EQ(w1.value()->temporal, w4.value()->temporal) << seed;
      EXPECT_EQ(w1.value()->data, w4.value()->data) << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Normalization memo-cache.

TEST(NormalizeCacheTest, CachedResultsMatchUncachedTupleForTuple) {
  RandomRelationConfig cfg;
  cfg.temporal_arity = 2;
  cfg.num_tuples = 8;
  NormalizeCache cache;
  NormalizeOptions options;
  for (std::uint32_t seed = 300; seed < 305; ++seed) {
    GeneralizedRelation r = MakeRandomRelation(seed, cfg);
    // Two passes so the second one hits.
    for (int pass = 0; pass < 2; ++pass) {
      for (const GeneralizedTuple& t : r.tuples()) {
        auto plain = NormalizeTuple(t, options);
        auto cached = CachedNormalizeTuple(&cache, t, options);
        ASSERT_EQ(plain.ok(), cached.ok());
        if (!plain.ok()) continue;
        ASSERT_EQ(plain.value().size(), cached.value().size());
        for (std::size_t i = 0; i < plain.value().size(); ++i) {
          EXPECT_EQ(plain.value()[i], cached.value()[i])
              << "seed " << seed << " tuple " << t.ToString();
        }
      }
    }
  }
  NormalizeCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(NormalizeCacheTest, RepeatedShapeHitsOncePerDistinctShape) {
  NormalizeCache cache;
  NormalizeOptions options;
  GeneralizedTuple t({Lrp::Make(1, 2), Lrp::Make(0, 3)});
  for (int i = 0; i < 5; ++i) {
    auto result = cache.Normalize(t, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().size(), 6u);  // Splits 3 * 2 to period 6.
  }
  NormalizeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(NormalizeCacheTest, DataValuesShareOneShapeEntry) {
  // Same lrps and constraints, different data: one cache entry serves both,
  // and each result carries its own data back.
  NormalizeCache cache;
  NormalizeOptions options;
  GeneralizedTuple t1({Lrp::Make(0, 2)}, {Value(std::int64_t{1})});
  GeneralizedTuple t2({Lrp::Make(0, 2)}, {Value(std::int64_t{2})});
  auto r1 = cache.NormalizeToPeriod(t1, 4, options);
  auto r2 = cache.NormalizeToPeriod(t2, 4, options);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1.value().size(), 2u);
  ASSERT_EQ(r2.value().size(), 2u);
  EXPECT_EQ(r1.value()[0].value(0), Value(std::int64_t{1}));
  EXPECT_EQ(r2.value()[0].value(0), Value(std::int64_t{2}));
  NormalizeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(NormalizeCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  NormalizeCache cache(/*capacity=*/2);
  NormalizeOptions options;
  GeneralizedTuple a({Lrp::Make(0, 2)});
  GeneralizedTuple b({Lrp::Make(0, 3)});
  GeneralizedTuple c({Lrp::Make(0, 5)});
  ASSERT_TRUE(cache.NormalizeToPeriod(a, 4, options).ok());   // miss {a}
  ASSERT_TRUE(cache.NormalizeToPeriod(b, 6, options).ok());   // miss {a,b}
  ASSERT_TRUE(cache.NormalizeToPeriod(a, 4, options).ok());   // hit  {b,a}
  ASSERT_TRUE(cache.NormalizeToPeriod(c, 10, options).ok());  // miss evicts b
  ASSERT_TRUE(cache.NormalizeToPeriod(b, 6, options).ok());   // miss again
  NormalizeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 2u);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(NormalizeCacheTest, InfeasibleClosedConstraintsShortCircuit) {
  NormalizeCache cache;
  NormalizeOptions options;
  GeneralizedTuple t({Lrp::Make(0, 2)});
  t.mutable_constraints().AddUpperBound(0, -1);
  t.mutable_constraints().AddLowerBound(0, 1);  // x <= -1 and x >= 1.
  auto result = cache.NormalizeToPeriod(t, 4, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
  // The fast path answers from the closure alone; nothing is cached.
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(NormalizeCacheTest, NullCacheFallsThroughToPlainFunctions) {
  GeneralizedTuple t({Lrp::Make(1, 2), Lrp::Make(0, 3)});
  NormalizeOptions options;
  auto plain = NormalizeTuple(t, options);
  auto through = CachedNormalizeTuple(nullptr, t, options);
  ASSERT_TRUE(plain.ok() && through.ok());
  EXPECT_EQ(plain.value(), through.value());
}

TEST(ParallelAlgebraTest, AlgebraSharesOneCacheAcrossOperations) {
  // The same relation complemented twice through one options struct: the
  // second run's normalizations should all hit.
  RandomRelationConfig cfg;
  cfg.temporal_arity = 2;
  cfg.num_tuples = 4;
  cfg.periods = {0, 2, 4};
  GeneralizedRelation r = MakeRandomRelation(400, cfg);
  NormalizeCache cache;
  AlgebraOptions options;
  options.normalize_cache = &cache;
  auto first = Complement(r, options);
  ASSERT_TRUE(first.ok());
  NormalizeCache::Stats after_first = cache.stats();
  auto second = Complement(r, options);
  ASSERT_TRUE(second.ok());
  NormalizeCache::Stats after_second = cache.stats();
  EXPECT_EQ(first.value().ToString(), second.value().ToString());
  EXPECT_EQ(after_second.misses, after_first.misses);  // No new misses.
  EXPECT_GE(after_second.hits, after_first.hits);
  // And the cache is semantically inert: same output as no cache at all.
  auto plain = Complement(r, AlgebraOptions{});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().ToString(), first.value().ToString());
}

}  // namespace
}  // namespace itdb
