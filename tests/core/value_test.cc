#include "core/value.h"

#include <gtest/gtest.h>

#include "core/schema.h"

namespace itdb {
namespace {

TEST(ValueTest, IntValues) {
  Value v(std::int64_t{42});
  EXPECT_TRUE(v.IsInt());
  EXPECT_FALSE(v.IsString());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_EQ(v.ToString(), "42");
  EXPECT_EQ(Value(std::int64_t{-7}).ToString(), "-7");
}

TEST(ValueTest, StringValues) {
  Value v("robot1");
  EXPECT_TRUE(v.IsString());
  EXPECT_FALSE(v.IsInt());
  EXPECT_EQ(v.AsString(), "robot1");
  EXPECT_EQ(v.ToString(), "\"robot1\"");
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.IsInt());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(std::int64_t{1}), Value(std::int64_t{1}));
  EXPECT_NE(Value(std::int64_t{1}), Value(std::int64_t{2}));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value("a"), Value("a"));
  // Cross-type: never equal; ordering is by variant index (ints first).
  EXPECT_NE(Value(std::int64_t{1}), Value("1"));
  EXPECT_LT(Value(std::int64_t{5}), Value("a"));
  EXPECT_LT(Value(std::int64_t{1}), Value(std::int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(SchemaTest, EqualityCoversAllParts) {
  Schema a({"T"}, {"d"}, {DataType::kInt});
  Schema b({"T"}, {"d"}, {DataType::kInt});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Schema({"U"}, {"d"}, {DataType::kInt}));
  EXPECT_NE(a, Schema({"T"}, {"e"}, {DataType::kInt}));
  EXPECT_NE(a, Schema({"T"}, {"d"}, {DataType::kString}));
  EXPECT_NE(a, Schema({"T", "U"}, {"d"}, {DataType::kInt}));
}

TEST(SchemaTest, EmptySchema) {
  Schema s;
  EXPECT_EQ(s.temporal_arity(), 0);
  EXPECT_EQ(s.data_arity(), 0);
  EXPECT_EQ(s.ToString(), "()");
  EXPECT_EQ(s.FindTemporal("x"), std::nullopt);
}

}  // namespace
}  // namespace itdb
