#include "sat/solver.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace itdb {
namespace sat {
namespace {

// Brute-force satisfiability for cross-checking (num_vars <= 20).
bool BruteForceSat(const CnfFormula& f) {
  int n = f.num_vars();
  for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
    std::vector<bool> assignment;
    assignment.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) assignment.push_back((bits >> i) & 1);
    if (f.IsSatisfiedBy(assignment)) return true;
  }
  return false;
}

TEST(DpllTest, TrivialSat) {
  CnfFormula f(1);
  f.AddClause(Clause{{Literal{0, false}}});
  Result<SolveResult> r = SolveDpll(f);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().satisfiable);
  EXPECT_TRUE(f.IsSatisfiedBy(r.value().assignment));
}

TEST(DpllTest, TrivialUnsat) {
  CnfFormula f(1);
  f.AddClause(Clause{{Literal{0, false}}});
  f.AddClause(Clause{{Literal{0, true}}});
  Result<SolveResult> r = SolveDpll(f);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().satisfiable);
}

TEST(DpllTest, EmptyFormulaSat) {
  CnfFormula f(3);
  Result<SolveResult> r = SolveDpll(f);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().satisfiable);
}

TEST(DpllTest, PigeonholeStyleUnsat) {
  // x0..x2: (x0|x1) & (x0|!x1) & (!x0|x2) & (!x0|!x2) is unsat.
  CnfFormula f(3);
  f.AddClause(Clause{{Literal{0, false}, Literal{1, false}}});
  f.AddClause(Clause{{Literal{0, false}, Literal{1, true}}});
  f.AddClause(Clause{{Literal{0, true}, Literal{2, false}}});
  f.AddClause(Clause{{Literal{0, true}, Literal{2, true}}});
  Result<SolveResult> r = SolveDpll(f);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().satisfiable);
}

class DpllRandomTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DpllRandomTest, AgreesWithBruteForce) {
  // Sweep under- and over-constrained regions around the phase transition.
  for (int num_clauses : {10, 20, 34, 45, 60}) {
    CnfFormula f = RandomThreeSat(GetParam() * 100 + num_clauses, 8,
                                  num_clauses);
    Result<SolveResult> r = SolveDpll(f);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().satisfiable, BruteForceSat(f)) << f.ToString();
    if (r.value().satisfiable) {
      EXPECT_TRUE(f.IsSatisfiedBy(r.value().assignment));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpllRandomTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{15}));

TEST(DpllTest, DecisionBudgetEnforced) {
  CnfFormula f = RandomThreeSat(3, 30, 128);
  Result<SolveResult> r = SolveDpll(f, /*max_decisions=*/1);
  // Either it solves within one decision (unlikely but possible via
  // propagation) or reports exhaustion.
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

}  // namespace
}  // namespace sat
}  // namespace itdb
