#include "sat/reduction.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "sat/solver.h"

namespace itdb {
namespace sat {
namespace {

TEST(ReductionTest, RelationShapeMatchesTheorem36) {
  // One column per variable, one tuple per clause, free extensions Z^m.
  CnfFormula f(4);
  f.AddClause(Clause{{Literal{0, false}, Literal{1, true}, Literal{2, false}}});
  f.AddClause(Clause{{Literal{1, false}, Literal{2, true}, Literal{3, true}}});
  Result<GeneralizedRelation> r = ReductionToRelation(f);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().temporal_arity(), 4);
  EXPECT_EQ(r.value().size(), 2);
  for (const GeneralizedTuple& t : r.value().tuples()) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(t.lrp(i), Lrp::Make(0, 1));
    }
  }
}

TEST(ReductionTest, PointsEncodeFalsifyingAssignments) {
  // Clause (x0 | !x1): falsified by x0=false, x1=true, i.e. X0 < 0, X1 >= 0.
  CnfFormula f(2);
  f.AddClause(Clause{{Literal{0, false}, Literal{1, true}}});
  Result<GeneralizedRelation> r = ReductionToRelation(f);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().Contains({{-1, 0}, {}}));
  EXPECT_TRUE(r.value().Contains({{-5, 7}, {}}));
  EXPECT_FALSE(r.value().Contains({{0, 0}, {}}));   // x0 true: clause holds.
  EXPECT_FALSE(r.value().Contains({{-1, -1}, {}}));  // x1 false: clause holds.
}

TEST(SolveViaComplementTest, SatisfiableInstance) {
  // (x0 | x1) & (!x0 | x1): satisfiable with x1 = true.
  CnfFormula f(2);
  f.AddClause(Clause{{Literal{0, false}, Literal{1, false}}});
  f.AddClause(Clause{{Literal{0, true}, Literal{1, false}}});
  Result<ComplementSatResult> r = SolveViaComplement(f);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.value().satisfiable);
  EXPECT_TRUE(f.IsSatisfiedBy(r.value().assignment));
}

TEST(SolveViaComplementTest, UnsatisfiableInstance) {
  // (x0) & (!x0).
  CnfFormula f(1);
  f.AddClause(Clause{{Literal{0, false}}});
  f.AddClause(Clause{{Literal{0, true}}});
  Result<ComplementSatResult> r = SolveViaComplement(f);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r.value().satisfiable);
}

TEST(SolveViaComplementTest, EmptyFormulaSatisfiable) {
  CnfFormula f(2);
  Result<ComplementSatResult> r = SolveViaComplement(f);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().satisfiable);
}

class ReductionAgreementTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ReductionAgreementTest, ComplementPipelineAgreesWithDpll) {
  // The reduction pipeline and the classical solver must give the same
  // verdict on every instance, spanning satisfiable and unsatisfiable
  // densities.
  for (int num_clauses : {5, 15, 25, 35}) {
    CnfFormula f =
        RandomThreeSat(GetParam() * 1000 + num_clauses, 6, num_clauses);
    Result<SolveResult> dpll = SolveDpll(f);
    ASSERT_TRUE(dpll.ok());
    Result<ComplementSatResult> pipeline = SolveViaComplement(f);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status() << " on " << f.ToString();
    EXPECT_EQ(pipeline.value().satisfiable, dpll.value().satisfiable)
        << f.ToString();
    if (pipeline.value().satisfiable) {
      EXPECT_TRUE(f.IsSatisfiedBy(pipeline.value().assignment))
          << f.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionAgreementTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{10}));

}  // namespace
}  // namespace sat
}  // namespace itdb
