#include "sat/cnf.h"

#include <gtest/gtest.h>

namespace itdb {
namespace sat {
namespace {

CnfFormula TinyFormula() {
  // (x0 | !x1) & (!x0 | x2).
  CnfFormula f(3);
  f.AddClause(Clause{{Literal{0, false}, Literal{1, true}}});
  f.AddClause(Clause{{Literal{0, true}, Literal{2, false}}});
  return f;
}

TEST(CnfTest, EvaluationBasics) {
  CnfFormula f = TinyFormula();
  EXPECT_TRUE(f.IsSatisfiedBy({true, true, true}));
  EXPECT_TRUE(f.IsSatisfiedBy({false, false, false}));
  EXPECT_FALSE(f.IsSatisfiedBy({false, true, true}));   // First clause fails.
  EXPECT_FALSE(f.IsSatisfiedBy({true, false, false}));  // Second fails.
}

TEST(CnfTest, EmptyFormulaIsTrue) {
  CnfFormula f(2);
  EXPECT_TRUE(f.IsSatisfiedBy({false, false}));
}

TEST(CnfTest, ToString) {
  EXPECT_EQ(TinyFormula().ToString(), "(x0 | !x1) & (!x0 | x2)");
}

TEST(RandomThreeSatTest, ShapeAndDeterminism) {
  CnfFormula a = RandomThreeSat(7, 5, 12);
  EXPECT_EQ(a.num_vars(), 5);
  EXPECT_EQ(a.num_clauses(), 12);
  for (const Clause& c : a.clauses()) {
    ASSERT_EQ(c.literals.size(), 3u);
    // Distinct variables within a clause.
    EXPECT_NE(c.literals[0].var, c.literals[1].var);
    EXPECT_NE(c.literals[0].var, c.literals[2].var);
    EXPECT_NE(c.literals[1].var, c.literals[2].var);
    for (const Literal& l : c.literals) {
      EXPECT_GE(l.var, 0);
      EXPECT_LT(l.var, 5);
    }
  }
  CnfFormula b = RandomThreeSat(7, 5, 12);
  EXPECT_EQ(a.ToString(), b.ToString());  // Same seed, same formula.
  CnfFormula c = RandomThreeSat(8, 5, 12);
  EXPECT_NE(a.ToString(), c.ToString());  // (Overwhelmingly likely.)
}

}  // namespace
}  // namespace sat
}  // namespace itdb
