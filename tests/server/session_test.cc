#include "server/session.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "server/shared_database.h"
#include "storage/database.h"

namespace itdb {
namespace server {
namespace {

constexpr const char* kCatalog = R"(
relation P(T: time) {
  [3+10n] : T >= 3;
}
relation Q(T: time) {
  [4n];
}
)";

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Database> db = Database::FromText(kCatalog);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
    shared_.emplace(&db_);
  }

  std::string Run(Session& session, const std::string& statement,
                  Status* status = nullptr) {
    std::ostringstream out;
    Status s = session.Execute(statement, out);
    if (status != nullptr) *status = s;
    return out.str();
  }

  Database db_;
  std::optional<SharedDatabase> shared_;
};

TEST_F(SessionTest, FeedAssemblesExecutesAndQuits) {
  Session session(&*shared_);
  std::ostringstream out;
  using Disposition = Session::FeedResult::Disposition;
  EXPECT_EQ(session.Feed("define relation R(T: time) {", out).disposition,
            Disposition::kNeedMore);
  EXPECT_TRUE(session.has_pending());
  EXPECT_EQ(session.Feed("  [2n];", out).disposition, Disposition::kNeedMore);
  Session::FeedResult done = session.Feed("}", out);
  EXPECT_EQ(done.disposition, Disposition::kDone);
  EXPECT_TRUE(done.status.ok()) << done.status;
  EXPECT_TRUE(db_.Has("R"));
  EXPECT_EQ(session.Feed("quit", out).disposition, Disposition::kQuit);
}

TEST_F(SessionTest, AbortPendingLeavesCatalogUntouched) {
  Session session(&*shared_);
  std::ostringstream out;
  session.Feed("define relation Half(T: time) {", out);
  session.Feed("  [5n];", out);
  EXPECT_TRUE(session.has_pending());
  EXPECT_TRUE(session.AbortPending());
  EXPECT_FALSE(session.has_pending());
  EXPECT_FALSE(db_.Has("Half"));
  EXPECT_FALSE(session.AbortPending());
  // The session still works after the abort.
  Status status;
  Run(session, "list", &status);
  EXPECT_TRUE(status.ok());
}

TEST_F(SessionTest, CommentsApplyToFirstLineOnly) {
  Session session(&*shared_);
  // '#' on a statement-initial line is a comment ...
  EXPECT_EQ(session.AppendLine("list # trailing"),
            std::optional<std::string>("list "));
  // ... but inside a define block it reaches the parser untouched.
  EXPECT_EQ(session.AppendLine("define relation C(T: time) {"), std::nullopt);
  EXPECT_EQ(session.AppendLine("  [2n]; # kept"), std::nullopt);
  std::optional<std::string> statement = session.AppendLine("}");
  ASSERT_TRUE(statement.has_value());
  EXPECT_NE(statement->find("# kept"), std::string::npos);
}

TEST_F(SessionTest, FetchPaginatesTheLastQueryResult) {
  Session session(&*shared_);
  Status status;
  Run(session, "query Q(t) OR P(t)", &status);
  ASSERT_TRUE(status.ok()) << status;
  std::string page = Run(session, "fetch 1", &status);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(page.find("relation fetch"), std::string::npos) << page;
  EXPECT_NE(page.find("1 tuple(s), 1 remaining"), std::string::npos) << page;
  page = Run(session, "fetch", &status);
  ASSERT_TRUE(status.ok());
  EXPECT_NE(page.find("0 remaining"), std::string::npos) << page;
  // Drained: further fetches return empty pages, not errors.
  page = Run(session, "fetch 5", &status);
  EXPECT_TRUE(status.ok());
  EXPECT_NE(page.find("0 tuple(s), 0 remaining"), std::string::npos) << page;
}

TEST_F(SessionTest, FetchWithoutQueryFails) {
  Session session(&*shared_);
  Status status;
  Run(session, "fetch", &status);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, SetListsAndUpdatesOptions) {
  Session session(&*shared_);
  Status status;
  std::string listing = Run(session, "set", &status);
  ASSERT_TRUE(status.ok());
  EXPECT_NE(listing.find("analyze      on"), std::string::npos) << listing;
  EXPECT_NE(listing.find("deadline_ms  0"), std::string::npos) << listing;
  Run(session, "set analyze off", &status);
  ASSERT_TRUE(status.ok());
  Run(session, "set deadline_ms 250", &status);
  ASSERT_TRUE(status.ok());
  EXPECT_FALSE(session.options().query.analyze);
  EXPECT_EQ(session.options().deadline_ms, 250);
  Run(session, "set bogus 1", &status);
  EXPECT_FALSE(status.ok());
  Run(session, "set threads lots", &status);
  EXPECT_FALSE(status.ok());
}

TEST_F(SessionTest, ReadOnlySessionRejectsMutation) {
  SessionOptions options;
  options.read_only = true;
  Session session(&*shared_, options);
  Status status;
  for (const char* statement :
       {"define relation X(T: time) { [2n]; }", "drop P", "coalesce P",
        "simplify P", "load /nonexistent", "save /nonexistent"}) {
    std::string out = Run(session, statement, &status);
    EXPECT_FALSE(status.ok()) << statement;
    EXPECT_NE(out.find("read-only session"), std::string::npos) << statement;
  }
  EXPECT_TRUE(db_.Has("P"));
  // Reads still work.
  Run(session, "ask EXISTS t . P(t)", &status);
  EXPECT_TRUE(status.ok());
}

TEST_F(SessionTest, DeadlineAbortsExpensiveQueries) {
  SessionOptions options;
  options.deadline_ms = 1;
  Session session(&*shared_, options);
  // Two complements joined on nothing: ~half a million candidate pairs --
  // far past a 1 ms budget, aborted by the cooperative checks.
  Status status;
  Run(session,
      "define relation Wide(T: time) { [720n]; }", &status);
  ASSERT_TRUE(status.ok());
  Run(session,
      "define relation Tall(T: time) { [1+720n]; }", &status);
  ASSERT_TRUE(status.ok());
  Run(session, "set analyze off", &status);
  ASSERT_TRUE(status.ok());
  Run(session, "query NOT Wide(t) AND NOT Tall(u)", &status);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << status;
  // The failed query seats no cursor.
  Run(session, "fetch", &status);
  EXPECT_FALSE(status.ok());
  // Clearing the deadline restores normal service for cheap queries.
  Run(session, "set deadline_ms 0", &status);
  ASSERT_TRUE(status.ok());
  std::string answer = Run(session, "ask EXISTS t . P(t)", &status);
  EXPECT_TRUE(status.ok());
  EXPECT_NE(answer.find("true"), std::string::npos);
}

TEST_F(SessionTest, StatsCountCommandsQueriesAndErrors) {
  Session session(&*shared_);
  Status status;
  Run(session, "list", &status);
  Run(session, "ask EXISTS t . P(t)", &status);
  Run(session, "show nope", &status);
  EXPECT_EQ(session.stats().commands, 3);
  EXPECT_EQ(session.stats().queries, 1);
  EXPECT_EQ(session.stats().errors, 1);
}

TEST_F(SessionTest, ExecuteMatchesShellOutputShapes) {
  // The session IS the shell's engine; spot-check the classic outputs.
  Session session(&*shared_);
  Status status;
  EXPECT_NE(Run(session, "help", &status).find("commands:"),
            std::string::npos);
  EXPECT_NE(Run(session, "ask P(3)", &status).find("true"),
            std::string::npos);
  EXPECT_NE(Run(session, "query P(t) AND t <= 23", &status)
                .find("relation result"),
            std::string::npos);
  std::string unknown = Run(session, "frobnicate", &status);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(unknown.find("unknown command \"frobnicate\" (try: help)"),
            std::string::npos);
}

TEST_F(SessionTest, IsQuitStatement) {
  EXPECT_TRUE(Session::IsQuitStatement("quit"));
  EXPECT_TRUE(Session::IsQuitStatement("  exit  "));
  EXPECT_FALSE(Session::IsQuitStatement("quitter"));
  EXPECT_FALSE(Session::IsQuitStatement(""));
}

}  // namespace
}  // namespace server
}  // namespace itdb
