#include "server/batcher.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace itdb {
namespace server {
namespace {

TEST(QueryBatcherTest, ConcurrentIdenticalRequestsShareOneEvaluation) {
  QueryBatcher batcher;
  std::atomic<int> computes{0};

  // The leader's compute blocks on `release` so the followers provably
  // arrive while it is in flight.
  std::mutex mu;
  std::condition_variable cv;
  bool leader_entered = false;
  bool release = false;

  auto compute = [&]() -> QueryBatcher::Outcome {
    computes.fetch_add(1);
    {
      std::unique_lock<std::mutex> lock(mu);
      leader_entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    return {Status::Ok(), "shared result", nullptr};
  };

  std::vector<std::thread> threads;
  std::vector<QueryBatcher::Outcome> outcomes(3);
  std::vector<char> shared(3, 0);
  threads.emplace_back([&] {
    bool s = false;
    outcomes[0] = batcher.Run("plan", 7, compute, &s);
    shared[0] = s ? 1 : 0;
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return leader_entered; });
  }
  for (int i = 1; i < 3; ++i) {
    threads.emplace_back([&, i] {
      bool s = false;
      outcomes[static_cast<std::size_t>(i)] =
          batcher.Run("plan", 7, compute, &s);
      shared[static_cast<std::size_t>(i)] = s ? 1 : 0;
    });
  }
  // Followers register themselves (the coalesced stat) before blocking.
  while (batcher.stats().coalesced < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  for (const QueryBatcher::Outcome& o : outcomes) {
    EXPECT_TRUE(o.status.ok());
    EXPECT_EQ(o.text, "shared result");
  }
  EXPECT_EQ(shared[0], 0);  // The leader computed for itself.
  EXPECT_EQ(shared[1] + shared[2], 2);
  EXPECT_EQ(batcher.stats().leads, 1);
  EXPECT_EQ(batcher.stats().coalesced, 2);
}

TEST(QueryBatcherTest, SequentialRequestsNeverShareResults) {
  // Only *concurrent* duplicates coalesce -- the batcher must never act as
  // a cache, or a write between the runs would be invisible.
  QueryBatcher batcher;
  std::atomic<int> computes{0};
  auto compute = [&]() -> QueryBatcher::Outcome {
    computes.fetch_add(1);
    return {Status::Ok(), "r" + std::to_string(computes.load()), nullptr};
  };
  QueryBatcher::Outcome first = batcher.Run("plan", 1, compute);
  QueryBatcher::Outcome second = batcher.Run("plan", 1, compute);
  EXPECT_EQ(computes.load(), 2);
  EXPECT_EQ(first.text, "r1");
  EXPECT_EQ(second.text, "r2");
  EXPECT_EQ(batcher.stats().leads, 2);
  EXPECT_EQ(batcher.stats().coalesced, 0);
}

TEST(QueryBatcherTest, DifferentKeysOrVersionsRunIndependently) {
  QueryBatcher batcher;
  std::atomic<int> computes{0};
  auto compute = [&]() -> QueryBatcher::Outcome {
    computes.fetch_add(1);
    return {Status::Ok(), "x", nullptr};
  };
  batcher.Run("a", 1, compute);
  batcher.Run("a", 2, compute);  // Same plan, later database version.
  batcher.Run("b", 1, compute);
  EXPECT_EQ(computes.load(), 3);
  EXPECT_EQ(batcher.stats().leads, 3);
}

TEST(QueryBatcherTest, FailuresAreSharedVerbatim) {
  QueryBatcher batcher;
  auto compute = []() -> QueryBatcher::Outcome {
    return {Status::ResourceExhausted("deadline exceeded"), "", nullptr};
  };
  QueryBatcher::Outcome outcome = batcher.Run("plan", 1, compute);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace server
}  // namespace itdb
