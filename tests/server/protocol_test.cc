#include "server/protocol.h"

#include <string>

#include <gtest/gtest.h>

namespace itdb {
namespace server {
namespace {

TEST(ProtocolTest, StatusNamesRoundTrip) {
  for (ResponseStatus status :
       {ResponseStatus::kOk, ResponseStatus::kError, ResponseStatus::kRetry,
        ResponseStatus::kBye}) {
    Result<ResponseStatus> parsed =
        ParseResponseStatus(ResponseStatusName(status));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), status);
  }
  EXPECT_FALSE(ParseResponseStatus("nope").ok());
}

TEST(ProtocolTest, EncodeFramesPayloadWithLength) {
  EXPECT_EQ(EncodeResponse(ResponseStatus::kOk, "hello\n"),
            "itdb ok 6\nhello\n");
  EXPECT_EQ(EncodeResponse(ResponseStatus::kBye, ""), "itdb bye 0\n");
}

TEST(ProtocolTest, DecoderHandlesArbitraryChunking) {
  const std::string stream =
      EncodeResponse(ResponseStatus::kOk, "line one\nline two\n") +
      EncodeResponse(ResponseStatus::kError, "boom") +
      EncodeResponse(ResponseStatus::kBye, "");
  ResponseDecoder decoder;
  std::vector<ResponseFrame> frames;
  // Worst-case chunking: one byte at a time.
  for (char c : stream) {
    decoder.Feed(std::string_view(&c, 1));
    while (true) {
      Result<std::optional<ResponseFrame>> next = decoder.Next();
      ASSERT_TRUE(next.ok());
      if (!next.value().has_value()) break;
      frames.push_back(*next.value());
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].status, ResponseStatus::kOk);
  EXPECT_EQ(frames[0].payload, "line one\nline two\n");
  EXPECT_EQ(frames[1].status, ResponseStatus::kError);
  EXPECT_EQ(frames[1].payload, "boom");
  EXPECT_EQ(frames[2].status, ResponseStatus::kBye);
  EXPECT_EQ(frames[2].payload, "");
}

TEST(ProtocolTest, DecoderPoisonsOnMalformedHeader) {
  ResponseDecoder decoder;
  decoder.Feed("not a frame\n");
  Result<std::optional<ResponseFrame>> first = decoder.Next();
  EXPECT_FALSE(first.ok());
  // Poisoned: even after feeding a valid frame the error persists.
  decoder.Feed(EncodeResponse(ResponseStatus::kOk, "x"));
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(ProtocolTest, DecoderWaitsForFullPayload) {
  ResponseDecoder decoder;
  decoder.Feed("itdb ok 10\nhalf");
  Result<std::optional<ResponseFrame>> partial = decoder.Next();
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(partial.value().has_value());
  decoder.Feed("+other");
  Result<std::optional<ResponseFrame>> full = decoder.Next();
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full.value().has_value());
  EXPECT_EQ(full.value()->payload, "half+other");
}

TEST(ProtocolTest, LineBufferSplitsAndStripsTerminators) {
  LineBuffer lines;
  lines.Feed("one\r\ntw");
  EXPECT_EQ(lines.NextLine(), std::optional<std::string>("one"));
  EXPECT_EQ(lines.NextLine(), std::nullopt);
  lines.Feed("o\nthree");
  EXPECT_EQ(lines.NextLine(), std::optional<std::string>("two"));
  EXPECT_EQ(lines.NextLine(), std::nullopt);
  EXPECT_EQ(lines.pending(), "three");
}

TEST(ProtocolTest, StatementVerbTakesFirstWord) {
  EXPECT_EQ(StatementVerb("  query P(t) AND Q(t)"), "query");
  EXPECT_EQ(StatementVerb("define relation R(T: time) {\n  [2n];\n}"),
            "define");
  EXPECT_EQ(StatementVerb("   "), "");
  EXPECT_EQ(StatementVerb(""), "");
}

}  // namespace
}  // namespace server
}  // namespace itdb
