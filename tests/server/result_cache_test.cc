#include "server/result_cache.h"

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/session.h"
#include "server/shared_database.h"
#include "storage/database.h"

namespace itdb {
namespace server {
namespace {

constexpr const char* kCatalog = R"(
relation P(T: time) {
  [3+10n] : T >= 3;
}
relation Q(T: time) {
  [4n];
}
)";

CachedResult TextResult(const std::string& text) {
  return CachedResult{text, nullptr};
}

TEST(ResultCacheTest, HitReturnsTheInsertedResult) {
  ResultCache cache(1 << 20);
  EXPECT_FALSE(cache.Lookup("k", 1).has_value());
  cache.Insert("k", 1, TextResult("hello\n"));
  std::optional<CachedResult> hit = cache.Lookup("k", 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->text, "hello\n");
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, VersionBumpInvalidatesWholesale) {
  ResultCache cache(1 << 20);
  cache.Insert("a", 1, TextResult("a"));
  cache.Insert("b", 1, TextResult("b"));
  EXPECT_EQ(cache.stats().entries, 2u);
  // A lookup at a newer version clears everything first.
  EXPECT_FALSE(cache.Lookup("a", 2).has_value());
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.invalidations, 1u);
  // Stale inserts (computed against the old catalog) are dropped.
  cache.Insert("a", 1, TextResult("a"));
  EXPECT_FALSE(cache.Lookup("a", 2).has_value());
  EXPECT_FALSE(cache.Lookup("a", 1).has_value());
}

TEST(ResultCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  // Each entry charges ~128 overhead + key + text; a 600-byte budget holds
  // about three 60-byte entries.
  ResultCache cache(600);
  const std::string payload(60, 'x');
  cache.Insert("a", 1, TextResult(payload));
  cache.Insert("b", 1, TextResult(payload));
  cache.Insert("c", 1, TextResult(payload));
  // Refresh "a" so "b" is the least recently used.
  EXPECT_TRUE(cache.Lookup("a", 1).has_value());
  cache.Insert("d", 1, TextResult(payload));
  ResultCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, 600u);
  EXPECT_TRUE(cache.Lookup("a", 1).has_value());
  EXPECT_FALSE(cache.Lookup("b", 1).has_value());
}

TEST(ResultCacheTest, OversizedEntriesAreNotCached) {
  ResultCache cache(64);
  cache.Insert("k", 1, TextResult(std::string(1024, 'x')));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.Lookup("k", 1).has_value());
}

class CachedSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Database> db = Database::FromText(kCatalog);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
    shared_.emplace(&db_);
  }

  SessionOptions Options() {
    SessionOptions options;
    options.result_cache = &cache_;
    return options;
  }

  std::string Run(Session& session, const std::string& statement) {
    std::ostringstream out;
    Status s = session.Execute(statement, out);
    EXPECT_TRUE(s.ok()) << s << " for " << statement;
    return out.str();
  }

  Database db_;
  std::optional<SharedDatabase> shared_;
  ResultCache cache_{std::size_t{1} << 20};
};

TEST_F(CachedSessionTest, WarmHitIsByteIdenticalAndSeatsTheCursor) {
  Session cold(&*shared_, Options());
  const std::string cold_text = Run(cold, "query P(t) AND t <= 33");
  EXPECT_EQ(cold.stats().cache_hits, 0);

  Session warm(&*shared_, Options());
  const std::string warm_text = Run(warm, "query P(t) AND t <= 33");
  EXPECT_EQ(warm_text, cold_text);
  EXPECT_EQ(warm.stats().cache_hits, 1);
  // The cached relation re-seats the fetch cursor.
  const std::string page = Run(warm, "fetch 100");
  EXPECT_NE(page.find("remaining"), std::string::npos) << page;
}

TEST_F(CachedSessionTest, CatalogWriteInvalidates) {
  Session session(&*shared_, Options());
  Run(session, "ask EXISTS t . Q(t) AND t = 8");
  Run(session, "define relation R(T: time) { [2n]; }");
  // Same query, new catalog version: recomputed, not served stale.
  Run(session, "ask EXISTS t . Q(t) AND t = 8");
  EXPECT_EQ(session.stats().cache_hits, 0);
  Run(session, "ask EXISTS t . Q(t) AND t = 8");
  EXPECT_EQ(session.stats().cache_hits, 1);
}

TEST_F(CachedSessionTest, AskResultsAreCachedToo) {
  Session session(&*shared_, Options());
  const std::string first = Run(session, "ask EXISTS t . P(t)");
  const std::string second = Run(session, "ask EXISTS t . P(t)");
  EXPECT_EQ(first, second);
  EXPECT_EQ(session.stats().cache_hits, 1);
}

TEST_F(CachedSessionTest, EightConcurrentClientsStayCoherent) {
  // TSan-checked in CI: concurrent sessions share one cache while a writer
  // bumps the catalog version.
  constexpr int kClients = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c]() {
      Session session(&*shared_, Options());
      for (int r = 0; r < kRounds; ++r) {
        std::ostringstream out;
        Status s = session.Execute("query P(t) AND t <= 33", out);
        EXPECT_TRUE(s.ok()) << s;
        if (c == 0 && r % 10 == 5) {
          std::ostringstream define;
          Status ds = session.Execute(
              "define relation W" + std::to_string(r) +
                  "(T: time) { [5n]; }",
              define);
          EXPECT_TRUE(ds.ok()) << ds;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ResultCache::Stats stats = cache_.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  // One more read must agree with a fresh evaluation.
  Session check(&*shared_, Options());
  std::string cached = Run(check, "query P(t) AND t <= 33");
  SessionOptions plain;
  Session fresh(&*shared_, plain);
  EXPECT_EQ(cached, Run(fresh, "query P(t) AND t <= 33"));
}

}  // namespace
}  // namespace server
}  // namespace itdb
