// Session behavior when backed by a durable storage engine: define / drop
// flow through the WAL, checkpoint / `as of` / history verbs work (and are
// gated correctly without an engine or in a read-only session), and a
// restarted session sees exactly the state the first one committed.

#include "server/session.h"

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "server/shared_database.h"
#include "storage/database.h"
#include "storage/wal/storage_engine.h"

namespace itdb {
namespace server {
namespace {

class DurableSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/durable_session_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    OpenEngine();
  }

  void OpenEngine() {
    db_ = std::make_unique<Database>();
    Result<std::unique_ptr<storage::StorageEngine>> engine =
        storage::StorageEngine::Open(dir_, db_.get());
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
    shared_ = std::make_unique<SharedDatabase>(db_.get(), engine_->version());
    options_ = SessionOptions{};
    options_.engine = engine_.get();
  }

  std::string Run(Session& session, const std::string& statement,
                  Status* status = nullptr) {
    std::ostringstream out;
    Status s = session.Execute(statement, out);
    if (status != nullptr) *status = s;
    return out.str();
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<storage::StorageEngine> engine_;
  std::unique_ptr<SharedDatabase> shared_;
  SessionOptions options_;
};

TEST_F(DurableSessionTest, DefineAndDropAreWalLogged) {
  Session session(shared_.get(), options_);
  Status status;
  Run(session, "define relation R(T: time) { [2n]; }", &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(engine_->version(), 1u);
  Run(session, "drop R", &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(engine_->version(), 2u);
  EXPECT_FALSE(db_->Has("R"));
  // Both mutations are on disk: a fresh engine replays them.
  OpenEngine();
  EXPECT_EQ(engine_->version(), 2u);
  EXPECT_FALSE(db_->Has("R"));
}

TEST_F(DurableSessionTest, RestartedSessionSeesCommittedState) {
  {
    Session session(shared_.get(), options_);
    Status status;
    Run(session, "define relation R(T: time) { [3+10n]; }", &status);
    ASSERT_TRUE(status.ok()) << status;
  }
  OpenEngine();
  Session session(shared_.get(), options_);
  Status status;
  std::string shown = Run(session, "show R", &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_NE(shown.find("3+10n"), std::string::npos) << shown;
}

TEST_F(DurableSessionTest, CheckpointCompactsAndPreservesHistory) {
  Session session(shared_.get(), options_);
  Status status;
  Run(session, "define relation R(T: time) { [2n]; }", &status);
  ASSERT_TRUE(status.ok());
  Run(session, "drop R", &status);
  ASSERT_TRUE(status.ok());
  Run(session, "checkpoint", &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(engine_->stats().wal_records, 0u);
  EXPECT_EQ(engine_->stats().snapshot_version, 2u);
  // The dropped relation's history survives the checkpoint and a restart.
  OpenEngine();
  Session fresh(shared_.get(), options_);
  std::string history = Run(fresh, "history R", &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_NE(history.find("[1, 2)"), std::string::npos) << history;
}

TEST_F(DurableSessionTest, AsOfReadsThePinnedPast) {
  Session session(shared_.get(), options_);
  Status status;
  Run(session, "define relation R(T: time) { [2n]; }", &status);
  ASSERT_TRUE(status.ok());
  Run(session, "drop R", &status);
  ASSERT_TRUE(status.ok());
  Run(session, "define relation R(T: time) { [5]; }", &status);
  ASSERT_TRUE(status.ok());

  std::string v1 = Run(session, "as of 1 R", &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_NE(v1.find("2n"), std::string::npos) << v1;
  std::string v2 = Run(session, "as of 2", &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_NE(v2.find("0 relation(s) as of version 2"), std::string::npos) << v2;
  std::string now = Run(session, "as of 3 R", &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_NE(now.find("[5]"), std::string::npos) << now;
  // The fused spelling works too.
  std::string fused = Run(session, "asof 1 R", &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(fused, v1);
  Run(session, "as from 1", &status);
  EXPECT_FALSE(status.ok());
}

TEST_F(DurableSessionTest, DurableVerbsRequireAnEngine) {
  Database db;
  SharedDatabase shared(&db);
  Session session(&shared);  // No engine wired.
  Status status;
  Run(session, "checkpoint", &status);
  EXPECT_FALSE(status.ok());
  Run(session, "as of 1", &status);
  EXPECT_FALSE(status.ok());
  Run(session, "history R", &status);
  EXPECT_FALSE(status.ok());
}

TEST_F(DurableSessionTest, ReadOnlySessionRejectsCheckpointButAllowsAsOf) {
  Session writer(shared_.get(), options_);
  Status status;
  Run(writer, "define relation R(T: time) { [2n]; }", &status);
  ASSERT_TRUE(status.ok());

  SessionOptions read_only = options_;
  read_only.read_only = true;
  Session session(shared_.get(), read_only);
  Run(session, "checkpoint", &status);
  EXPECT_FALSE(status.ok());
  Run(session, "drop R", &status);
  EXPECT_FALSE(status.ok());
  std::string v1 = Run(session, "as of 1 R", &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_NE(v1.find("2n"), std::string::npos);
  Run(session, "history R", &status);
  EXPECT_TRUE(status.ok()) << status;
}

TEST_F(DurableSessionTest, BinarySaveAndLoadRoundTripThroughTheSession) {
  Session session(shared_.get(), options_);
  Status status;
  Run(session, "define relation R(T: time) { [3+10n]; }", &status);
  ASSERT_TRUE(status.ok());
  std::string path = dir_ + "/export.itdbb";
  Run(session, "save " + path, &status);
  EXPECT_TRUE(status.ok()) << status;

  // Loading the binary file into a fresh durable catalog WAL-logs the
  // imported relation.
  dir_ += "_import";
  std::filesystem::remove_all(dir_);
  OpenEngine();
  Session importer(shared_.get(), options_);
  Run(importer, "load " + path, &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_TRUE(db_->Has("R"));
  EXPECT_EQ(engine_->version(), 1u);
}

}  // namespace
}  // namespace server
}  // namespace itdb
