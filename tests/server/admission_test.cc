#include "server/admission.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "query/parser.h"
#include "storage/database.h"

namespace itdb {
namespace server {
namespace {

TEST(AdmissionQueueTest, AdmitsUpToBoundThenSheds) {
  AdmissionOptions options;
  options.max_pending = 2;
  AdmissionQueue queue(options);
  EXPECT_TRUE(queue.TryAdmit());
  EXPECT_TRUE(queue.TryAdmit());
  EXPECT_EQ(queue.pending(), 2);
  EXPECT_FALSE(queue.TryAdmit());
  EXPECT_EQ(queue.shed_total(), 1);
  EXPECT_EQ(queue.pending(), 2);  // The shed request holds no slot.
  queue.Release();
  EXPECT_TRUE(queue.TryAdmit());
  EXPECT_EQ(queue.admitted_total(), 3);
}

TEST(AdmissionQueueTest, ZeroBoundShedsEverything) {
  AdmissionOptions options;
  options.max_pending = 0;
  AdmissionQueue queue(options);
  const std::int64_t shed_before =
      obs::MetricsRegistry::Global().snapshot().counters["server.shed"];
  EXPECT_FALSE(queue.TryAdmit());
  EXPECT_FALSE(queue.TryAdmit());
  EXPECT_EQ(queue.shed_total(), 2);
  EXPECT_EQ(queue.admitted_total(), 0);
  const std::int64_t shed_after =
      obs::MetricsRegistry::Global().snapshot().counters["server.shed"];
  EXPECT_EQ(shed_after - shed_before, 2);
}

class ClassifyCostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Coprime periods 97 and 101: their lcm (9797) is past the analyzer's
    // period-blowup threshold (720), so joining P and Q draws A012.
    Result<Database> db = Database::FromText(R"(
relation P(T: time) {
  [1+97n];
}
relation Q(T: time) {
  [2+101n];
}
)");
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
  }

  CostClass Classify(const std::string& text) {
    Result<query::QueryPtr> q = query::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status();
    return ClassifyQueryCost(db_, q.value());
  }

  Database db_;
};

TEST_F(ClassifyCostTest, SimpleQueriesAreNormal) {
  EXPECT_EQ(Classify("P(t)"), CostClass::kNormal);
  EXPECT_EQ(Classify("EXISTS t . P(t)"), CostClass::kNormal);
}

TEST_F(ClassifyCostTest, PeriodBlowupIsHeavy) {
  EXPECT_EQ(Classify("P(t) AND Q(t)"), CostClass::kHeavy);
}

TEST_F(ClassifyCostTest, WideComplementIsHeavy) {
  // NOT over two free temporal columns: A010 (NP-complete regime).
  EXPECT_EQ(Classify("NOT (P(t) AND P(u)) AND P(t) AND P(u)"),
            CostClass::kHeavy);
}

TEST_F(ClassifyCostTest, UnanalyzableQueriesGradeNormal) {
  // Unknown relation: analysis reports errors, not cost warnings; the
  // session's own evaluation will surface the real failure.
  EXPECT_EQ(Classify("Missing(t)"), CostClass::kNormal);
}

}  // namespace
}  // namespace server
}  // namespace itdb
