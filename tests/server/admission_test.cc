#include "server/admission.h"

#include <string>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "storage/database.h"
#include "util/diagnostic.h"

namespace itdb {
namespace server {
namespace {

TEST(AdmissionQueueTest, AdmitsUpToBoundThenSheds) {
  AdmissionOptions options;
  options.max_pending = 2;
  AdmissionQueue queue(options);
  EXPECT_TRUE(queue.TryAdmit());
  EXPECT_TRUE(queue.TryAdmit());
  EXPECT_EQ(queue.pending(), 2);
  EXPECT_FALSE(queue.TryAdmit());
  EXPECT_EQ(queue.shed_total(), 1);
  EXPECT_EQ(queue.pending(), 2);  // The shed request holds no slot.
  queue.Release();
  EXPECT_TRUE(queue.TryAdmit());
  EXPECT_EQ(queue.admitted_total(), 3);
}

TEST(AdmissionQueueTest, ZeroBoundShedsEverything) {
  AdmissionOptions options;
  options.max_pending = 0;
  AdmissionQueue queue(options);
  const std::int64_t shed_before =
      obs::MetricsRegistry::Global().snapshot().counters["server.shed"];
  EXPECT_FALSE(queue.TryAdmit());
  EXPECT_FALSE(queue.TryAdmit());
  EXPECT_EQ(queue.shed_total(), 2);
  EXPECT_EQ(queue.admitted_total(), 0);
  const std::int64_t shed_after =
      obs::MetricsRegistry::Global().snapshot().counters["server.shed"];
  EXPECT_EQ(shed_after - shed_before, 2);
}

class ClassifyCostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Coprime periods 97 and 101: their lcm (9797) is past the analyzer's
    // period-blowup threshold (720), so joining P and Q draws A012.
    Result<Database> db = Database::FromText(R"(
relation P(T: time) {
  [1+97n];
}
relation Q(T: time) {
  [2+101n];
}
)");
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
  }

  CostClass Classify(const std::string& text) {
    Result<query::QueryPtr> q = query::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status();
    return ClassifyQueryCost(db_, q.value());
  }

  Database db_;
};

TEST_F(ClassifyCostTest, SimpleQueriesAreNormal) {
  EXPECT_EQ(Classify("P(t)"), CostClass::kNormal);
  EXPECT_EQ(Classify("EXISTS t . P(t)"), CostClass::kNormal);
}

TEST_F(ClassifyCostTest, PeriodBlowupIsHeavy) {
  EXPECT_EQ(Classify("P(t) AND Q(t)"), CostClass::kHeavy);
}

TEST_F(ClassifyCostTest, WideComplementIsHeavy) {
  // NOT over two free temporal columns: A010 (NP-complete regime).
  EXPECT_EQ(Classify("NOT (P(t) AND P(u)) AND P(t) AND P(u)"),
            CostClass::kHeavy);
}

TEST(AdmissionQueueTest, HeavyAdmissionHasItsOwnBudget) {
  AdmissionOptions options;
  options.max_pending = 8;
  options.max_pending_heavy = 1;
  AdmissionQueue queue(options);
  EXPECT_TRUE(queue.TryAdmit(CostClass::kHeavy));
  EXPECT_EQ(queue.pending(), 1);
  EXPECT_EQ(queue.pending_heavy(), 1);
  // A second heavy query sheds on the heavy budget while light traffic
  // still flows.
  EXPECT_FALSE(queue.TryAdmit(CostClass::kHeavy));
  EXPECT_EQ(queue.shed_heavy_total(), 1);
  EXPECT_TRUE(queue.TryAdmit(CostClass::kNormal));
  EXPECT_EQ(queue.pending(), 2);
  // Releasing the heavy query frees both counters.
  queue.Release(CostClass::kHeavy);
  EXPECT_EQ(queue.pending(), 1);
  EXPECT_EQ(queue.pending_heavy(), 0);
  EXPECT_TRUE(queue.TryAdmit(CostClass::kHeavy));
  queue.Release(CostClass::kHeavy);
  queue.Release(CostClass::kNormal);
  EXPECT_EQ(queue.pending(), 0);
}

TEST(AdmissionQueueTest, PromotionFailureReleasesTheTotalSlot) {
  AdmissionOptions options;
  options.max_pending = 4;
  options.max_pending_heavy = 0;
  AdmissionQueue queue(options);
  EXPECT_FALSE(queue.TryAdmit(CostClass::kHeavy));
  // The failed heavy admission must not leak a total slot.
  EXPECT_EQ(queue.pending(), 0);
  EXPECT_EQ(queue.pending_heavy(), 0);
  EXPECT_EQ(queue.shed_heavy_total(), 1);
}

// The demonstrable improvement over the heuristic: a join of singleton
// relations has no A010 complement and no A012 period blowup (every
// period is 0), so the heuristic classifier admitted it as normal -- but
// its certified cardinality (the product of the stored tuple counts) is
// over the huge-query threshold, and certified grading sheds it at a
// zero-budget heavy gate where the heuristic would have let it through.
TEST(GradeQueryCostTest, CertifiedHugeJoinIsHeavyWhereHeuristicAdmitted) {
  // Three relations of 101 singleton tuples: 101^3 = 1,030,301 certified
  // join rows > the 1,000,000 threshold; lcm stays 1.
  std::string text;
  for (const char* name : {"P", "Q", "R"}) {
    text += std::string("relation ") + name + "(T: time) {\n";
    for (int i = 0; i < 101; ++i) {
      text += "  [" + std::to_string(i) + "];\n";
    }
    text += "}\n";
  }
  Result<Database> db = Database::FromText(text);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<query::QueryPtr> q = query::ParseQuery("P(t) AND Q(t) AND R(t)");
  ASSERT_TRUE(q.ok()) << q.status();

  // The heuristic signals are absent: no A010, no A012.
  analysis::AnalysisResult analyzed = analysis::Analyze(db.value(), q.value());
  for (const Diagnostic& d : analyzed.diagnostics) {
    EXPECT_NE(d.code, diag::kExpensiveComplement) << d.message;
    EXPECT_NE(d.code, diag::kPeriodBlowup) << d.message;
  }

  CostGrade grade = GradeQueryCost(db.value(), q.value());
  EXPECT_EQ(grade.cls, CostClass::kHeavy);
  ASSERT_TRUE(grade.root_certificate.rows.has_value());
  EXPECT_GT(*grade.root_certificate.rows, 1'000'000);

  // End to end at the queue: with no heavy budget, the certified grade
  // sheds the query where the heuristic's kNormal grade admitted it.
  AdmissionOptions options;
  options.max_pending = 8;
  options.max_pending_heavy = 0;
  AdmissionQueue queue(options);
  EXPECT_TRUE(queue.TryAdmit(CostClass::kNormal));  // Heuristic grade.
  queue.Release(CostClass::kNormal);
  EXPECT_FALSE(queue.TryAdmit(grade.cls));  // Certified grade.
  EXPECT_EQ(queue.shed_heavy_total(), 1);
}

TEST(GradeQueryCostTest, BoundedCertificateEnablesCaching) {
  Result<Database> db = Database::FromText("relation P(T: time) { [2n]; }\n");
  ASSERT_TRUE(db.ok()) << db.status();
  Result<query::QueryPtr> small = query::ParseQuery("P(t) AND t <= 10");
  ASSERT_TRUE(small.ok());
  CostGrade grade = GradeQueryCost(db.value(), small.value());
  EXPECT_EQ(grade.cls, CostClass::kNormal);
  EXPECT_TRUE(grade.root_certificate.bounded());
  // Complements are rows-unbounded: certified cacheability refuses them.
  Result<query::QueryPtr> neg = query::ParseQuery("NOT P(t)");
  ASSERT_TRUE(neg.ok());
  grade = GradeQueryCost(db.value(), neg.value());
  EXPECT_FALSE(grade.root_certificate.bounded());
}

TEST_F(ClassifyCostTest, UnanalyzableQueriesGradeNormal) {
  // Unknown relation: analysis reports errors, not cost warnings; the
  // session's own evaluation will surface the real failure.
  EXPECT_EQ(Classify("Missing(t)"), CostClass::kNormal);
}

}  // namespace
}  // namespace server
}  // namespace itdb
