// End-to-end tests of the socket server: a real Unix-domain socket, real
// client connections, concurrent statements.
//
// The marquee guarantee under test: N concurrent clients running read-only
// queries receive BYTE-IDENTICAL payloads to a serial Session run of the
// same statements -- the engine's bit-identity (work partitioned by input
// index, merged in input order) composed with the server's reader lock.

#include "server/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "server/protocol.h"
#include "server/session.h"
#include "server/shared_database.h"
#include "storage/database.h"

namespace itdb {
namespace server {
namespace {

constexpr const char* kCatalog = R"(
relation Service(T: time) {
  [3+10n] : T >= 3;
}
relation Window(T: time) {
  [4n];
}
relation Audit(T: time) {
  [1+6n];
}
)";

// A blocking protocol client over one Unix-socket connection.
class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    connected_ = connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0;
  }

  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  void SendStatement(const std::string& statement) {
    std::string wire = statement + "\n";
    ASSERT_EQ(send(fd_, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
  }

  ResponseFrame ReadFrame() {
    while (true) {
      Result<std::optional<ResponseFrame>> next = decoder_.Next();
      EXPECT_TRUE(next.ok()) << next.status();
      if (!next.ok()) return {};
      if (next.value().has_value()) return *next.value();
      char buf[4096];
      ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      EXPECT_GT(n, 0) << "server closed mid-frame";
      if (n <= 0) return {};
      decoder_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

  ResponseFrame Request(const std::string& statement) {
    SendStatement(statement);
    return ReadFrame();
  }

  // Drops the connection abruptly (a vanished client).
  void Drop() {
    close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  ResponseDecoder decoder_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Database> db = Database::FromText(kCatalog);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
    socket_path_ = "/tmp/itdb_srv_test_" + std::to_string(getpid()) + "_" +
                   std::to_string(++socket_serial_) + ".sock";
  }

  void TearDown() override {
    server_.reset();
    unlink(socket_path_.c_str());
  }

  void StartServer(ServerOptions options = {}) {
    options.unix_path = socket_path_;
    server_ = std::make_unique<Server>(&db_, options);
    Status status = server_->Start();
    ASSERT_TRUE(status.ok()) << status;
  }

  Database db_;
  std::string socket_path_;
  std::unique_ptr<Server> server_;
  static int socket_serial_;
};

int ServerTest::socket_serial_ = 0;

TEST_F(ServerTest, AnswersShellGrammarOverTheWire) {
  StartServer();
  TestClient client(socket_path_);
  ASSERT_TRUE(client.connected());

  ResponseFrame frame = client.Request("ask EXISTS t . Service(t)");
  EXPECT_EQ(frame.status, ResponseStatus::kOk);
  EXPECT_EQ(frame.payload, "true\n");

  frame = client.Request("show nope");
  EXPECT_EQ(frame.status, ResponseStatus::kError);
  EXPECT_NE(frame.payload.find("error:"), std::string::npos);

  frame = client.Request("query Window(t)");
  EXPECT_EQ(frame.status, ResponseStatus::kOk);
  EXPECT_NE(frame.payload.find("relation result"), std::string::npos);

  // The cursor lives in the connection's session.
  frame = client.Request("fetch 1");
  EXPECT_EQ(frame.status, ResponseStatus::kOk);
  EXPECT_NE(frame.payload.find("relation fetch"), std::string::npos);
}

TEST_F(ServerTest, MultiLineDefineAssemblesAcrossPackets) {
  StartServer();
  TestClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  client.SendStatement("define relation Fresh(T: time) {");
  client.SendStatement("  [2+8n];");
  ResponseFrame frame = client.Request("}");
  EXPECT_EQ(frame.status, ResponseStatus::kOk);
  frame = client.Request("ask Fresh(10)");
  EXPECT_EQ(frame.payload, "true\n");
  // The define went through the shared database: a second connection
  // observes it.
  TestClient other(socket_path_);
  ASSERT_TRUE(other.connected());
  EXPECT_EQ(other.Request("ask Fresh(10)").payload, "true\n");
}

TEST_F(ServerTest, StatusVerbReportsQueueAndVersion) {
  StartServer();
  TestClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  ResponseFrame frame = client.Request("status");
  EXPECT_EQ(frame.status, ResponseStatus::kOk);
  for (const char* field :
       {"connections_active ", "requests_total ", "queue_depth ",
        "queue_limit ", "shed_total ", "batch_leads ", "db_version "}) {
    EXPECT_NE(frame.payload.find(field), std::string::npos)
        << field << " missing from:\n"
        << frame.payload;
  }
  client.Request("drop Audit");
  frame = client.Request("status");
  EXPECT_NE(frame.payload.find("db_version 1"), std::string::npos)
      << frame.payload;
}

TEST_F(ServerTest, QuitAnswersByeAndCloses) {
  StartServer();
  TestClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  ResponseFrame frame = client.Request("quit");
  EXPECT_EQ(frame.status, ResponseStatus::kBye);
}

TEST_F(ServerTest, DroppedClientMidDefineLeavesNoPartialState) {
  StartServer();
  {
    TestClient client(socket_path_);
    ASSERT_TRUE(client.connected());
    client.SendStatement("define relation Orphan(T: time) {");
    client.SendStatement("  [3n];");
    client.Drop();  // Vanish mid-statement, braces unbalanced.
  }
  // The server keeps serving and the half-defined relation never landed.
  TestClient probe(socket_path_);
  ASSERT_TRUE(probe.connected());
  ResponseFrame frame = probe.Request("ask EXISTS t . Orphan(t)");
  EXPECT_EQ(frame.status, ResponseStatus::kError);
  frame = probe.Request("list");
  EXPECT_EQ(frame.status, ResponseStatus::kOk);
  EXPECT_EQ(frame.payload.find("Orphan"), std::string::npos);
}

TEST_F(ServerTest, EightConcurrentClientsMatchSerialExecutionBitForBit) {
  StartServer();
  // Read-only statements with nontrivial output, shaped differently per
  // client so sessions cannot accidentally share cursors.
  const std::vector<std::string> statements = {
      "query Service(t) AND t <= 123",
      "query Window(t) OR Audit(t)",
      "ask EXISTS t . Service(t) AND Window(t)",
      "query Service(t) AND Audit(t)",
      "enumerate Window 0 40",
      "query NOT Service(t) AND t >= 0 AND t <= 60",
      "ask EXISTS t . Audit(t) AND Window(t)",
      "query Audit(t) AND t <= 90",
  };
  constexpr int kClients = 8;
  constexpr int kRounds = 4;

  // Serial baseline through a plain Session on an identical catalog.
  Result<Database> baseline_db = Database::FromText(kCatalog);
  ASSERT_TRUE(baseline_db.ok());
  Database serial_db = std::move(baseline_db).value();
  SharedDatabase serial_shared(&serial_db);
  std::vector<std::string> expected(statements.size());
  for (std::size_t i = 0; i < statements.size(); ++i) {
    Session session(&serial_shared);
    std::ostringstream out;
    Status status = session.Execute(statements[i], out);
    ASSERT_TRUE(status.ok()) << statements[i] << ": " << status;
    expected[i] = out.str();
  }

  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(socket_path_);
      if (!client.connected()) {
        failures[static_cast<std::size_t>(c)] = "connect failed";
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        // Each client walks the statements from its own offset, so at any
        // instant different plans are in flight and identical plans can
        // coalesce in the batcher.
        for (std::size_t s = 0; s < statements.size(); ++s) {
          std::size_t idx =
              (s + static_cast<std::size_t>(c)) % statements.size();
          ResponseFrame frame = client.Request(statements[idx]);
          if (frame.status != ResponseStatus::kOk ||
              frame.payload != expected[idx]) {
            failures[static_cast<std::size_t>(c)] =
                "statement \"" + statements[idx] + "\" diverged:\n" +
                frame.payload;
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], "") << "client " << c;
  }
}

TEST_F(ServerTest, OverloadShedsWithRetriableStatus) {
  ServerOptions options;
  options.admission.max_pending = 0;  // Deterministic: shed every query.
  StartServer(options);
  const std::int64_t shed_metric_before =
      obs::MetricsRegistry::Global().snapshot().counters["server.shed"];

  TestClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  ResponseFrame frame = client.Request("ask EXISTS t . Service(t)");
  EXPECT_EQ(frame.status, ResponseStatus::kRetry);
  EXPECT_NE(frame.payload.find("retry"), std::string::npos);
  frame = client.Request("list");
  EXPECT_EQ(frame.status, ResponseStatus::kRetry);

  // `status` is exempt from admission and reports the sheds.
  frame = client.Request("status");
  EXPECT_EQ(frame.status, ResponseStatus::kOk);
  EXPECT_NE(frame.payload.find("shed_total 2"), std::string::npos)
      << frame.payload;
  EXPECT_EQ(server_->admission().shed_total(), 2);
  const std::int64_t shed_metric_after =
      obs::MetricsRegistry::Global().snapshot().counters["server.shed"];
  EXPECT_EQ(shed_metric_after - shed_metric_before, 2);
  // `quit` still works: overload never wedges a polite goodbye.
  EXPECT_EQ(client.Request("quit").status, ResponseStatus::kBye);
}

TEST_F(ServerTest, FloodedServerShedsButServesRetries) {
  ServerOptions options;
  options.admission.max_pending = 2;
  StartServer(options);
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<int> answered(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(socket_path_);
      if (!client.connected()) return;
      for (int i = 0; i < 6; ++i) {
        // Client-side retry loop: a shed request is retriable verbatim.
        for (int attempt = 0; attempt < 50; ++attempt) {
          ResponseFrame frame =
              client.Request("ask EXISTS t . Service(t) AND Audit(t)");
          if (frame.status == ResponseStatus::kOk) {
            if (frame.payload == "true\n") {
              ++answered[static_cast<std::size_t>(c)];
            }
            break;
          }
          if (frame.status != ResponseStatus::kRetry) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(answered[static_cast<std::size_t>(c)], 6) << "client " << c;
  }
}

TEST_F(ServerTest, ServerMetricsArePublished) {
  StartServer();
  TestClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  client.Request("ask EXISTS t . Service(t)");
  ResponseFrame frame = client.Request("metrics");
  EXPECT_EQ(frame.status, ResponseStatus::kOk);
  EXPECT_NE(frame.payload.find("server.commands"), std::string::npos)
      << frame.payload;
  EXPECT_NE(frame.payload.find("server.queries"), std::string::npos);
  EXPECT_NE(frame.payload.find("server.command_ns"), std::string::npos);
  EXPECT_NE(frame.payload.find("server.requests"), std::string::npos);
}

TEST_F(ServerTest, TcpEphemeralPortWorks) {
  ServerOptions options;
  options.port = 0;
  server_ = std::make_unique<Server>(&db_, options);
  Status status = server_->Start();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_GT(server_->port(), 0);
}

TEST_F(ServerTest, StopDrainsAndRestarts) {
  StartServer();
  {
    TestClient client(socket_path_);
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.Request("list").status, ResponseStatus::kOk);
  }
  server_->Stop();
  server_.reset();
  // A second server on the same path starts cleanly.
  StartServer();
  TestClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.Request("list").status, ResponseStatus::kOk);
}

}  // namespace
}  // namespace server
}  // namespace itdb
